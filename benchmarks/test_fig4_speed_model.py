"""Figure 4: modeled SMARTS simulation rate versus detailed warming W.

Paper shape: without functional warming the normalized simulation rate
decays from S_F toward S_D as W grows, and the decay starts earlier and
is sharper for a slower detailed simulator (S_D = 1/600); with
functional warming the rate stays pinned near S_FW ≈ 0.55 because W is
bounded to a few thousand instructions.
"""

from conftest import record_report

from repro.core.perf_model import PAPER_SFW
from repro.api import run_study


def test_figure4_modeled_simulation_rate(benchmark, ctx):
    data = benchmark.pedantic(
        lambda: run_study("fig4", ctx).data, rounds=1, iterations=1)
    record_report("fig4_speed_model", data["report"])

    curves = data["curves"]
    today = dict(curves["S_D=1/60"])
    future = dict(curves["S_D=1/600"])
    warmed = dict(curves["S_FW=0.55 (functional warming)"])
    warming_values = sorted(today)

    # Monotonic decay toward S_D without functional warming.
    rates_today = [today[w] for w in warming_values]
    assert rates_today == sorted(rates_today, reverse=True)
    assert rates_today[0] > 0.9               # near S_F at W = 0
    assert rates_today[-1] < 0.35             # collapsed at W = 10M

    # The slower detailed simulator collapses earlier and further: by the
    # largest W the S_D=1/600 curve sits an order of magnitude below the
    # S_D=1/60 curve.
    for w in warming_values:
        assert future[w] <= today[w] + 1e-9
    assert future[warming_values[-1]] < 0.5 * today[warming_values[-1]]

    # With functional warming the rate is flat and near S_FW.
    warmed_rates = [warmed[w] for w in warming_values]
    assert max(warmed_rates) - min(warmed_rates) < 0.05
    assert abs(warmed_rates[0] - PAPER_SFW) < 0.1

    # Our measured simulator rates are sane: detailed slower than
    # functional, warming between the two.
    measured = data["measured_rates"]
    assert measured.s_detailed < 1.0
    assert measured.detailed_ips < measured.functional_ips
