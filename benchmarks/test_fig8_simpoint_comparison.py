"""Figure 8: SMARTS versus SimPoint CPI error.

Paper shape: on the paper's 8-way configuration SimPoint's average CPI
error is 3.7% with a worst case of -14.3% (gcc-2), while SMARTS averages
0.6%; SimPoint offers no confidence bound, so such outliers cannot be
anticipated, whereas SMARTS' measured CV flags exactly the benchmarks
that need a larger sample.

Scaled expectation: SMARTS' mean absolute error is no worse than
SimPoint's, SimPoint produces a noticeably larger worst-case error, and
every SMARTS estimate carries a confidence interval.
"""

import numpy as np
from conftest import record_report

from repro.api import run_study


def test_figure8_smarts_vs_simpoint(benchmark, ctx):
    data = benchmark.pedantic(
        lambda: run_study("fig8", ctx).data, rounds=1, iterations=1)
    record_report("fig8_simpoint_comparison", data["report"])

    entries = data["entries"]
    assert len(entries) >= 6

    smarts_errors = [abs(e["smarts_error"]) for e in entries.values()]
    simpoint_errors = [abs(e["simpoint_error"]) for e in entries.values()]

    # SMARTS is at least as accurate on average.
    assert data["smarts_mean_abs_error"] <= data["simpoint_mean_abs_error"] + 0.01

    # SimPoint's worst case is larger than SMARTS' worst case (the
    # "arbitrarily high error" failure mode of representative sampling).
    assert max(simpoint_errors) + 0.01 >= max(smarts_errors)

    # SMARTS provides a quantified confidence interval for every
    # benchmark; SimPoint has no analogous quantity.
    assert all(e["smarts_ci"] > 0 for e in entries.values())

    # SimPoint used a handful of large regions, as designed.
    assert all(1 <= e["simpoint_clusters"] <= 10 for e in entries.values())

    # Both estimators produce positive, finite CPI estimates.
    assert all(np.isfinite(e["simpoint_cpi"]) and e["simpoint_cpi"] > 0
               for e in entries.values())
