"""Engine microbenchmark: functional-warming instruction throughput.

Functional warming is where a SMARTS experiment spends >99% of its
wall-clock (Table 6), so the trace-compiled engine's purpose is raw
single-process instructions/second on exactly that loop.  This benchmark
measures both engines on the same warming workload — cold caches and
predictors, full event stream — for a behaviourally diverse subset of
the suite, records the rates into ``results/perf_engine.txt``, and
asserts the fastpath's >= 3x speedup (the acceptance criterion of the
engine work).

The ratio is measured inside one process on one core, so it is
meaningful on the single-core CI box; the *absolute* rates are
host-dependent and recorded for context only.  The structural guarantee
behind the speedup (block-level dispatch, bulk warming) is guarded
count-based in ``tests/test_engine_fastpath.py``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
from conftest import record_report

from repro.config.machines import scaled_8way
from repro.detailed.state import MicroarchState
from repro.functional.engine import create_core
from repro.functional.warming import FunctionalWarmer
from repro.harness.reporting import format_table

#: Instructions measured per engine after warm-up (compile + hot caches).
MEASURE_INSTRUCTIONS = 150_000
WARMUP_INSTRUCTIONS = 10_000

#: Timing rounds per engine; the best round is reported.  The ratio is
#: measured in one process on one core, but a GC pause or transient
#: contention landing inside a single sub-second window would skew it —
#: taking the max over interleaved rounds removes that one-off noise.
MEASURE_ROUNDS = 2


def _warming_rate(program, machine, engine: str) -> tuple[float, int, object]:
    """(instructions/second, executed, final arch state) for one engine."""
    core = create_core(program, engine=engine)
    microarch = MicroarchState(machine)
    microarch.flush()
    warmer = FunctionalWarmer(microarch)
    core.run_warmed(WARMUP_INSTRUCTIONS, warmer)
    start = time.perf_counter()
    executed = core.run_warmed(MEASURE_INSTRUCTIONS, warmer)
    seconds = time.perf_counter() - start
    return executed / max(seconds, 1e-9), executed, core.state


def test_perf_engine_throughput(benchmark, ctx):
    machine = scaled_8way()
    names = ctx.subset(2 if ctx.fast else 3)

    def run():
        rows = []
        details = {}
        for name in names:
            program = ctx.benchmark(name).program
            interp_rate = fast_rate = 0.0
            for _ in range(MEASURE_ROUNDS):
                rate, interp_n, interp_state = _warming_rate(
                    program, machine, "interp")
                interp_rate = max(interp_rate, rate)
                rate, fast_n, fast_state = _warming_rate(
                    program, machine, "fastpath")
                fast_rate = max(fast_rate, rate)
            # The engines must execute the same stream to the same state;
            # otherwise the rate comparison is meaningless.
            assert interp_n == fast_n
            assert interp_state == fast_state
            speedup = fast_rate / interp_rate
            details[name] = {
                "instructions": fast_n,
                "interp_ips": interp_rate,
                "fastpath_ips": fast_rate,
                "speedup": speedup,
            }
            rows.append([
                name, f"{fast_n:,}",
                f"{interp_rate:,.0f}", f"{fast_rate:,.0f}",
                f"{speedup:.2f}x",
            ])
        geomean = float(np.exp(np.mean(
            [np.log(d["speedup"]) for d in details.values()])))
        report = format_table(
            ["benchmark", "instructions", "interp (instr/s)",
             "fastpath (instr/s)", "speedup"],
            rows,
            title="Functional-warming throughput by engine "
                  f"(single process, one core; geomean speedup "
                  f"{geomean:.2f}x)")
        return {"details": details, "geomean_speedup": geomean,
                "report": report}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report("perf_engine", data["report"])

    if os.environ.get("CI"):
        pytest.skip(
            "rates recorded, ratio not gated on CI: shared runners can "
            "sustain contention across rounds; CI perf guards are the "
            "count-based dispatch checks in tests/test_engine_fastpath.py")

    # The acceptance bar of the trace-compiled engine: >= 3x warming
    # throughput over the interpreter across the workload subset.
    assert data["geomean_speedup"] >= 3.0
    for name, detail in data["details"].items():
        assert detail["speedup"] >= 2.0, name
