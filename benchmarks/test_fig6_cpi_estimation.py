"""Figure 6: CPI estimation across the suite with n_init (and n_tuned).

Paper shape: one run with the generic initial sample size achieves a
99.7% confidence interval within the target for most benchmarks; the
actual error is generally much smaller than the predicted interval (the
residual being mostly warming bias, bounded to ~2%); the few benchmarks
with unacceptably wide intervals (ammp, vpr, gcc-2) are fixed by a
second run with n_tuned computed from the measured CV.  The overall
average error is well under 1%.
"""

import numpy as np
from conftest import record_report

from repro.api import run_study


def test_figure6_cpi_estimation(benchmark, ctx):
    data = benchmark.pedantic(
        lambda: run_study("fig6", ctx).data, rounds=1, iterations=1)
    record_report("fig6_cpi_estimation", data["report"])

    entries = data["entries"]
    assert len(entries) == 2 * len(ctx.suite_names)

    initial_errors = [abs(e["initial_error"]) for e in entries.values()]
    final_errors = [abs(e["final_error"]) for e in entries.values()]
    final_cis = [e["final_ci"] for e in entries.values()]

    # Actual error should be well inside the predicted confidence
    # interval for the overwhelming majority of benchmarks (the paper
    # allows a ~2% additional warming-bias uncertainty on top of the CI).
    inside = sum(
        1 for e in entries.values()
        if abs(e["final_error"]) <= e["final_ci"] + 0.02)
    assert inside >= 0.9 * len(entries)

    # Mean absolute error is small — the paper reports 0.64%; at our
    # scaled-down sample sizes we accept a few percent.
    assert float(np.mean(final_errors)) < 0.05

    # Tuning never leaves the estimate worse off on average.
    assert float(np.mean(final_errors)) <= float(np.mean(initial_errors)) + 0.01

    # At least one high-variability benchmark required a second (tuned)
    # round, mirroring ammp / vpr / gcc-2 in the paper.
    assert any(e["rounds"] > 1 for e in entries.values())

    # Confidence intervals are reported for every benchmark (the property
    # SimPoint lacks), and they are finite and positive.
    assert all(0 < ci < 10 for ci in final_cis)
