"""Figure 3: minimum measured instructions per confidence target.

Paper shape: even at the most stringent target (±1% with 99.7%
confidence) the worst-case benchmark needs no more than 0.1% of its
instruction stream measured; requirements grow by 9x when tightening the
interval from ±3% to ±1% and by ~2.3x when raising confidence from 95%
to 99.7% (both follow from n ∝ (z·V/ε)²).

Scaled expectation: every benchmark needs only a small fraction of its
(much shorter) stream; the ratios between confidence targets follow the
same quadratic law, softened only by the finite-population correction.
"""

from conftest import record_report

from repro.harness.cv_analysis import ConfidenceTarget
from repro.api import run_study


def test_figure3_minimum_measured_instructions(benchmark, ctx):
    data = benchmark.pedantic(
        lambda: run_study("fig3", ctx).data, rounds=1, iterations=1)
    record_report("fig3_min_instructions", data["report"])

    targets = data["targets"]
    loose = ConfidenceTarget(0.03, 0.95)
    tight = ConfidenceTarget(0.01, 0.997)
    headline = ConfidenceTarget(0.03, 0.997)

    for (machine, name), per_target in targets.items():
        frac_headline = per_target[headline]["fraction_of_benchmark"]
        # The headline ±3% @ 99.7% target never requires the whole stream,
        # and for most benchmarks it is a small fraction.
        assert 0 < frac_headline <= 1.0
        # Tighter targets always require at least as many instructions.
        assert per_target[tight]["measured_instructions"] >= \
            per_target[headline]["measured_instructions"]
        assert per_target[headline]["measured_instructions"] >= \
            per_target[loose]["measured_instructions"]

    # At our reduced population sizes the headline target can consume a
    # large share of a high-variability benchmark, but the least variable
    # benchmarks still need only a modest fraction.
    fractions = sorted(per_target[headline]["fraction_of_benchmark"]
                       for per_target in targets.values())
    assert fractions[0] < 0.5

    # The paper's actual claim — projected onto SPEC-length streams the
    # same coefficients of variation require well under 1% of the stream,
    # with the worst case still a tiny fraction (paper: <= 0.1% for
    # ±3% @ 99.7%, worst 0.0249%).
    paper_fractions = sorted(data["paper_scale_fractions"].values())
    median_paper = paper_fractions[len(paper_fractions) // 2]
    assert median_paper < 0.001
    assert paper_fractions[-1] < 0.01
