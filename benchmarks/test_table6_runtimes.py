"""Table 6: runtimes of functional, detailed, and SMARTS simulation.

Paper shape: full detailed simulation of a SPEC2K benchmark takes days
(average 7.2, worst 23), SMARTS takes hours (average 5.0, worst <16),
and SMARTS runs at roughly half the speed of functional-only simulation;
the headline speedups over full detailed simulation are ~35x (8-way) and
~60x (16-way), with effective simulation speeds above 9 MIPS.

Scaled expectation: with this repository's measured simulator rates the
same model shows SMARTS between functional and detailed runtimes and
faster than full detailed simulation; projecting the paper's rates and
canonical parameters onto SPEC-length streams reproduces the order of
magnitude of the paper's speedups.
"""

from conftest import record_report

from repro.api import run_study


def test_table6_runtimes_and_speedups(benchmark, ctx):
    data = benchmark.pedantic(
        lambda: run_study("table6", ctx).data, rounds=1, iterations=1)
    record_report("table6_runtimes", data["report"])

    details = data["details"]
    assert len(details) == len(ctx.suite_names)

    for name, row in details.items():
        # Ordering: functional <= SMARTS <= detailed (SMARTS pays the
        # warming overhead over functional but avoids most detailed work).
        assert row["functional_seconds"] <= row["smarts_seconds"] * 1.2
        assert row["smarts_seconds"] < row["detailed_seconds"]
        assert row["speedup"] > 1.0
        # Paper-scale projection gives the order of magnitude the paper
        # reports (tens of times faster than full detailed simulation).
        assert row["paper_scale_speedup"] > 10

    assert data["average_speedup"] > 1.0
    assert 10 < data["paper_scale_average_speedup"] < 200

    measured = data["measured_rates"]
    assert measured.s_detailed < 1.0
    assert measured.s_warming <= 1.0

    # Checkpointed column: restoring snapshots must remove a measurable
    # share of the functional-warming instructions (count-based metric —
    # the container is single-core, so wall-clock is never asserted)
    # while leaving every per-unit measurement bit-identical.
    checkpoint = data["checkpoint"]
    assert len(checkpoint["details"]) >= 2
    for name, row in checkpoint["details"].items():
        assert row["identical_units"], name
        assert row["checkpoint_restores"] > 0
        assert row["ff_checkpointed"] < row["ff_serial"]
    assert checkpoint["average_warming_reduction"] > 0.25
