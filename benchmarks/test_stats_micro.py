"""Micro-benchmarks of the SMARTS core primitives (Section 2 / 5.1 math).

These are conventional pytest-benchmark measurements (multiple rounds) of
the hot statistical and simulation primitives, so performance regressions
in the sampling machinery itself are visible alongside the reproduction
experiments.
"""

import numpy as np
import pytest

from repro.config import scaled_8way
from repro.core.sampling import SystematicSamplingPlan
from repro.core.stats import (
    intraclass_correlation,
    required_sample_size,
    sample_statistics,
)
from repro.detailed import DetailedSimulator, MicroarchState
from repro.functional import FunctionalCore, FunctionalWarmer
from repro.workloads import micro_benchmark


@pytest.fixture(scope="module")
def unit_values():
    rng = np.random.default_rng(0)
    return rng.lognormal(mean=0.3, sigma=0.6, size=10_000)


@pytest.fixture(scope="module")
def micro_program():
    return micro_benchmark().program


def test_bench_sample_statistics(benchmark, unit_values):
    stats = benchmark(sample_statistics, unit_values)
    assert stats.n == 10_000


def test_bench_required_sample_size(benchmark):
    n = benchmark(required_sample_size, 1.0, 0.03, 0.997, 1_000_000)
    assert n > 1_000


def test_bench_intraclass_correlation(benchmark, unit_values):
    delta = benchmark(intraclass_correlation, unit_values, 50)
    assert abs(delta) < 0.2


def test_bench_sampling_plan_enumeration(benchmark):
    plan = SystematicSamplingPlan(unit_size=1000, interval=300,
                                  detailed_warming=2000)

    def enumerate_units():
        return sum(1 for _ in plan.units(7_000_000_000))

    count = benchmark(enumerate_units)
    assert count == plan.sample_size(7_000_000_000)


def test_bench_functional_simulation_rate(benchmark, micro_program):
    def run_functional():
        core = FunctionalCore(micro_program)
        return core.run(5_000)

    executed = benchmark(run_functional)
    assert executed == 5_000


def test_bench_functional_warming_rate(benchmark, micro_program):
    machine = scaled_8way()

    def run_warming():
        core = FunctionalCore(micro_program)
        warmer = FunctionalWarmer(MicroarchState(machine))
        return core.run(5_000, warmer)

    executed = benchmark(run_warming)
    assert executed == 5_000


def test_bench_detailed_simulation_rate(benchmark, micro_program):
    machine = scaled_8way()

    def run_detailed():
        core = FunctionalCore(micro_program)
        sim = DetailedSimulator(machine, MicroarchState(machine))
        return sim.simulate(core, 5_000).instructions

    executed = benchmark(run_detailed)
    assert executed == 5_000
