"""Figure 7: energy-per-instruction estimation with n_init (8-way).

Paper shape: EPI confidence intervals are generally tighter than CPI
intervals for the same sample because EPI varies less across units; the
actual errors are small and, with one exception attributed to warming
bias (gap, 2.2%), inside the confidence interval.
"""

import numpy as np
from conftest import record_report

from repro.api import run_study


def test_figure7_epi_estimation(benchmark, ctx):
    data = benchmark.pedantic(
        lambda: run_study("fig7", ctx).data, rounds=1, iterations=1)
    record_report("fig7_epi_estimation", data["report"])

    entries = data["entries"]
    assert len(entries) == len(ctx.suite_names)

    errors = [abs(e["final_error"]) for e in entries.values()]
    assert float(np.mean(errors)) < 0.05

    # Errors are inside the confidence interval (+2% bias allowance) for
    # nearly every benchmark.
    inside = sum(1 for e in entries.values()
                 if abs(e["final_error"]) <= e["final_ci"] + 0.02)
    assert inside >= 0.9 * len(entries)

    # EPI is less variable than CPI: for the same benchmarks and sample
    # sizes, the initial-run EPI confidence interval should typically be
    # tighter than the CPI one (compare against the cached Figure 6 data
    # for the 8-way machine).
    cpi_data = run_study("fig6", ctx,
                         params={"machine_names": ("8-way",)}).data
    tighter = 0
    for name in ctx.suite_names:
        epi_ci = entries[("8-way", name)]["initial_ci"]
        cpi_ci = cpi_data["entries"][("8-way", name)]["initial_ci"]
        if epi_ci <= cpi_ci * 1.05:
            tighter += 1
    assert tighter >= 0.7 * len(ctx.suite_names)
