"""Table 4: detailed warming required without functional warming.

Paper shape: with only detailed warming, the W needed to keep bias below
±1.5% varies widely across benchmarks — a large group needs relatively
little warming, others need an order of magnitude more, and for some
even the largest tested W leaves unacceptable bias (mgrid shows up to
25% bias at W = 500k).  The unpredictability of W is the key argument
for functional warming.
"""

from conftest import record_report

from repro.api import run_study


def test_table4_detailed_warming_requirements(benchmark, ctx):
    data = benchmark.pedantic(
        lambda: run_study("table4", ctx).data, rounds=1, iterations=1)
    record_report("table4_detailed_warming", data["report"])

    requirements = data["requirements"]
    biases = data["biases"]
    warming_values = data["warming_values"]
    assert requirements

    # Zero warming is insufficient for at least one benchmark (stale /
    # cold short-term state biases the measurements).
    zero_warming_biases = [abs(curve.get(0, 0.0)) for curve in biases.values()
                           if 0 in curve]
    assert max(zero_warming_biases) > 0.015

    # Requirements vary across benchmarks: not every benchmark needs the
    # same W (the paper's central observation about unpredictability).
    distinct = {req for req in requirements.values()}
    assert len(distinct) >= 2

    # Every benchmark that did converge used one of the tested values and
    # its measured bias at that W is below the threshold.
    for name, required in requirements.items():
        if required is None:
            continue
        assert required in warming_values
        assert abs(biases[name][required]) < 0.015
