"""Table 5: residual CPI bias with functional warming and minimal W.

Paper shape: with functional warming plus a small, analytically bounded
amount of detailed warming, every benchmark's bias is within ±2% and
only a handful exceed ±1%; the average magnitude over the remaining
benchmarks is ~0.2%.  This is the result that justifies SMARTS' claim
that functional warming makes tiny sampling units unbiased.
"""

import numpy as np
from conftest import record_report

from repro.api import run_study


def test_table5_functional_warming_bias(benchmark, ctx):
    data = benchmark.pedantic(
        lambda: run_study("table5", ctx).data, rounds=1, iterations=1)
    record_report("table5_functional_warming_bias", data["report"])

    biases = data["biases"]
    assert biases

    magnitudes = [abs(b) for b in biases.values()]
    # Every benchmark/configuration is within the paper's ±2% bound
    # (allow a small margin for our much smaller phase-averaging budget).
    assert max(magnitudes) < 0.03

    # Most benchmarks are within ±1%, as in the paper.
    within_one_percent = sum(1 for m in magnitudes if m <= 0.01)
    assert within_one_percent >= len(magnitudes) // 2

    # The average magnitude is small.
    assert float(np.mean(magnitudes)) < 0.015
