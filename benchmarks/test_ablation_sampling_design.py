"""Ablation: systematic vs random sampling, and population homogeneity.

Section 2 of the paper argues that systematic sampling may be analyzed
with random-sampling mathematics because the benchmarks show negligible
homogeneity (intraclass correlation on the order of 1e-6) at sampling
periodicities.  This ablation checks both halves of that argument on the
reference traces:

* the intraclass correlation of per-unit CPI at the experiment's
  sampling interval is small for every benchmark, and
* systematic samples and simple random samples of the same size produce
  estimates of comparable quality (neither design is systematically
  biased, and their error distributions have similar spread).

This experiment runs entirely on cached reference traces (no additional
simulation), so it doubles as a fast design-choice ablation called out
in DESIGN.md.
"""

import numpy as np
from conftest import record_report

from repro.core.sampling import RandomSamplingPlan, SystematicSamplingPlan
from repro.core.stats import intraclass_correlation
from repro.harness.reference import unit_cpi_trace
from repro.harness.reporting import format_table, percent


def _systematic_errors(trace: np.ndarray, interval: int) -> list[float]:
    true_mean = trace.mean()
    errors = []
    for offset in range(min(interval, 10)):
        sample = trace[offset::interval]
        errors.append((sample.mean() - true_mean) / true_mean)
    return errors


def _random_errors(trace: np.ndarray, sample_size: int, trials: int = 10
                   ) -> list[float]:
    true_mean = trace.mean()
    errors = []
    for seed in range(trials):
        rng = np.random.default_rng(seed)
        sample = rng.choice(trace, size=min(sample_size, len(trace)),
                            replace=False)
        errors.append((sample.mean() - true_mean) / true_mean)
    return errors


def test_ablation_systematic_vs_random_sampling(benchmark, ctx):
    def run():
        rows = []
        details = {}
        for name in ctx.suite_names:
            reference = ctx.reference(name, "8-way")
            trace = unit_cpi_trace(reference, ctx.unit_size)
            population = len(trace)
            interval = max(2, population // max(1, ctx.n_init))
            sample_size = population // interval

            delta = intraclass_correlation(trace, interval, offset_stride=1)
            sys_errors = _systematic_errors(trace, interval)
            rand_errors = _random_errors(trace, sample_size)
            details[name] = {
                "delta": delta,
                "systematic_rmse": float(np.sqrt(np.mean(np.square(sys_errors)))),
                "random_rmse": float(np.sqrt(np.mean(np.square(rand_errors)))),
                "systematic_mean_error": float(np.mean(sys_errors)),
            }
            rows.append([
                name, f"{delta:+.4f}",
                percent(details[name]["systematic_mean_error"]),
                percent(details[name]["systematic_rmse"]),
                percent(details[name]["random_rmse"]),
            ])
        report = format_table(
            ["benchmark", "intraclass corr.", "systematic mean error",
             "systematic RMSE", "random RMSE"],
            rows,
            title="Ablation: systematic vs simple random sampling "
                  f"(U={ctx.unit_size}, 8-way)")
        return {"details": details, "report": report}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report("ablation_sampling_design", data["report"])

    details = data["details"]
    # Homogeneity is small for most benchmarks (the paper reports ~1e-6 at
    # SPEC scale; our synthetic kernels are far more regular than SPEC
    # code, so individual benchmarks can show noticeable periodicity at
    # some intervals — the report flags them).
    deltas = sorted(abs(d["delta"]) for d in details.values())
    assert deltas[len(deltas) // 2] < 0.2      # median
    assert all(delta < 0.8 for delta in deltas)

    # Averaged over all phases, systematic sampling is unbiased.
    mean_errors = [abs(d["systematic_mean_error"]) for d in details.values()]
    assert float(np.median(mean_errors)) < 0.05

    # Systematic sampling is competitive with random sampling: its RMSE is
    # within a small factor of the random-sampling RMSE for most
    # benchmarks (and often better, since it stratifies over time).
    competitive = sum(
        1 for d in details.values()
        if d["systematic_rmse"] <= 2.0 * d["random_rmse"] + 1e-3)
    assert competitive >= 0.7 * len(details)


def test_ablation_sampling_plan_work_accounting(benchmark, ctx):
    """Systematic and random plans of equal n cost the same detailed work."""
    def run():
        length = 1_000_000
        systematic = SystematicSamplingPlan.for_sample_size(
            benchmark_length=length, unit_size=ctx.unit_size,
            target_sample_size=ctx.n_init, detailed_warming=100)
        random_plan = RandomSamplingPlan(
            unit_size=ctx.unit_size,
            sample_size=systematic.sample_size(length),
            detailed_warming=100)
        return systematic, random_plan, length

    systematic, random_plan, length = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert systematic.detailed_instructions(length) == \
        random_plan.detailed_instructions(length)
    assert len(list(random_plan.units(length))) == \
        systematic.sample_size(length)
