"""Ablation: systematic vs random sampling, and population homogeneity.

Section 2 of the paper argues that systematic sampling may be analyzed
with random-sampling mathematics because the benchmarks show negligible
homogeneity (intraclass correlation on the order of 1e-6) at sampling
periodicities.  This ablation checks both halves of that argument on the
reference traces:

* the intraclass correlation of per-unit CPI at the experiment's
  sampling interval is small for every benchmark, and
* systematic samples and simple random samples of the same size produce
  estimates of comparable quality (neither design is systematically
  biased, and their error distributions have similar spread).

The analysis is the registered ``"ablation"`` study
(:mod:`repro.api.studies`) — non-grid analyses are first-class in the
Study registry, so this module only executes it through
``run_study`` and asserts on the payload.  It runs entirely on cached
reference traces (no additional simulation), so it doubles as a fast
design-choice ablation called out in DESIGN.md.
"""

import numpy as np
from conftest import record_report

from repro.api import run_study
from repro.core.sampling import RandomSamplingPlan, SystematicSamplingPlan


def test_ablation_systematic_vs_random_sampling(benchmark, ctx):
    data = benchmark.pedantic(
        lambda: run_study("ablation", ctx).data, rounds=1, iterations=1)
    record_report("ablation_sampling_design", data["report"])

    details = data["details"]
    # Homogeneity is small for most benchmarks (the paper reports ~1e-6 at
    # SPEC scale; our synthetic kernels are far more regular than SPEC
    # code, so individual benchmarks can show noticeable periodicity at
    # some intervals — the report flags them).
    deltas = sorted(abs(d["delta"]) for d in details.values())
    assert deltas[len(deltas) // 2] < 0.2      # median
    assert all(delta < 0.8 for delta in deltas)

    # Averaged over all phases, systematic sampling is unbiased.
    mean_errors = [abs(d["systematic_mean_error"]) for d in details.values()]
    assert float(np.median(mean_errors)) < 0.05

    # Systematic sampling is competitive with random sampling: its RMSE is
    # within a small factor of the random-sampling RMSE for most
    # benchmarks (and often better, since it stratifies over time).
    competitive = sum(
        1 for d in details.values()
        if d["systematic_rmse"] <= 2.0 * d["random_rmse"] + 1e-3)
    assert competitive >= 0.7 * len(details)


def test_ablation_sampling_plan_work_accounting(benchmark, ctx):
    """Systematic and random plans of equal n cost the same detailed work."""
    def run():
        length = 1_000_000
        systematic = SystematicSamplingPlan.for_sample_size(
            benchmark_length=length, unit_size=ctx.unit_size,
            target_sample_size=ctx.n_init, detailed_warming=100)
        random_plan = RandomSamplingPlan(
            unit_size=ctx.unit_size,
            sample_size=systematic.sample_size(length),
            detailed_warming=100)
        return systematic, random_plan, length

    systematic, random_plan, length = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert systematic.detailed_instructions(length) == \
        random_plan.detailed_instructions(length)
    assert len(list(random_plan.units(length))) == \
        systematic.sample_size(length)
