"""Figure 5: optimal sampling unit size as a function of detailed warming.

Paper shape: with W = 0 the smallest unit size minimizes the detailed
simulation budget (because V_CPI does not fall fast enough with U to
compensate for larger units); with non-zero W the optimum moves into the
hundreds-to-thousands range to amortize the per-unit warming cost; and
fixing U at the small canonical value costs little compared to the
per-benchmark optimum.
"""

from conftest import record_report

from repro.api import run_study


def test_figure5_optimal_unit_size(benchmark, ctx):
    data = benchmark.pedantic(
        lambda: run_study("fig5", ctx).data, rounds=1, iterations=1)
    record_report("fig5_optimal_unit_size", data["report"])

    optima = data["optima"]
    fractions = data["fractions"]
    assert optima

    non_decreasing = 0
    for name, per_warming in optima.items():
        warmings = sorted(per_warming)
        no_warming, largest_warming = warmings[0], warmings[-1]
        assert no_warming == 0
        if per_warming[largest_warming] >= per_warming[no_warming]:
            non_decreasing += 1

        # With no warming, the optimum is at (or adjacent to) the smallest
        # available unit size.
        available = sorted(fractions[name][no_warming])
        assert per_warming[no_warming] <= available[1]

        # Fixing U to the canonical experiment value costs at most 5x the
        # per-benchmark optimum's detailed-instruction budget (the paper's
        # "at most tens of minutes" claim, expressed as a ratio).  Skip
        # benchmarks whose variability saturates the budget at every U at
        # this reduced scale — the ratio is meaningless there.
        curve = fractions[name][largest_warming]
        best = min(curve.values())
        fixed = curve.get(ctx.unit_size)
        if fixed is not None and 0 < best < 1.0:
            assert fixed <= 5.0 * best

    # For most benchmarks, a larger W does not push the optimal U smaller
    # (at reduced scale the finite-population correction can perturb
    # individual benchmarks, but the trend matches the paper).
    assert non_decreasing >= len(optima) / 2
