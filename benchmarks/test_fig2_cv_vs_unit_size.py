"""Figure 2: coefficient of variation of CPI versus sampling unit size.

Paper shape: V_CPI falls steeply for unit sizes below ~1000 instructions
and levels off thereafter; even at unit sizes of a billion instructions
several benchmarks retain non-negligible variation, which is why
single-large-sample approaches cannot guarantee accuracy.

Scaled expectation here: V_CPI is non-increasing in U for every
benchmark, the small-U end shows clearly more variation than the large-U
end for most of the suite, and the suite spans a wide range of CV values
(the basis of per-benchmark differences in required sample size).
"""

import numpy as np
from conftest import record_report

from repro.api import run_study


def test_figure2_cv_versus_unit_size(benchmark, ctx):
    data = benchmark.pedantic(
        lambda: run_study("fig2", ctx,
                          params={"machine_name": "8-way"}).data,
        rounds=1, iterations=1)
    record_report("fig2_cv_vs_unit_size", data["report"])

    curves = data["curves"]
    assert len(curves) == len(ctx.suite_names)

    decreasing = 0
    for name, curve in curves.items():
        sizes = sorted(curve)
        values = [curve[u] for u in sizes]
        assert all(v >= 0 for v in values)
        # CV at the largest U never exceeds CV at the smallest U by more
        # than estimation noise.
        assert values[-1] <= values[0] * 1.10
        if values[-1] < values[0] * 0.9:
            decreasing += 1

    # Most benchmarks show the paper's "steep then flat" decline.
    assert decreasing >= len(curves) // 2

    # The suite spans a meaningful range of variability, as SPEC2K does.
    smallest_u_cvs = [curve[min(curve)] for curve in curves.values()]
    assert max(smallest_u_cvs) > 2.5 * min(smallest_u_cvs)
    assert float(np.median(smallest_u_cvs)) > 0.1
