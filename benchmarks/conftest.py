"""Shared infrastructure for the experiment benchmarks.

Each benchmark module reproduces one table or figure of the SMARTS paper
(see DESIGN.md for the experiment index).  Reports are written to
``results/`` and echoed into the pytest terminal summary so that
``pytest benchmarks/ --benchmark-only`` output contains every reproduced
table.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import default_context

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

_collected_reports: list[tuple[str, str]] = []


def record_report(name: str, text: str) -> Path:
    """Persist an experiment report and queue it for the terminal summary."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    _collected_reports.append((name, text))
    return path


@pytest.fixture(scope="session")
def ctx():
    """Process-wide experiment context (shared reference caches)."""
    return default_context()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Echo every recorded experiment report into the pytest output."""
    if not _collected_reports:
        return
    terminalreporter.section("SMARTS reproduction reports")
    for name, text in _collected_reports:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {name} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)
