"""Table 3: the 8-way baseline and 16-way aggressive machine configurations.

Paper reference (Table 3): RUU/LSQ 128/64 vs 256/128, 32KB vs 64KB L1,
1MB vs 2MB L2, 16 vs 32 entry store buffer, 4/2/2/1 vs 16/8/8/4
functional units, combined 2K vs 8K predictor tables.  Our scaled
configurations preserve every ratio (see DESIGN.md).
"""

from conftest import record_report

from repro.config import table3_16way, table3_8way
from repro.api import run_study
from repro.isa.opcodes import OpClass


def test_table3_machine_configurations(benchmark, ctx):
    data = benchmark.pedantic(
        lambda: run_study("table3", ctx).data, rounds=1, iterations=1)
    record_report("table3_configs", data["report"])

    rows = dict((row[0], (row[1], row[2])) for row in data["rows"])
    assert "RUU/LSQ" in rows and "Branch predictor" in rows

    # The literal Table 3 values are exposed alongside the scaled ones.
    eight, sixteen = table3_8way(), table3_16way()
    assert (eight.ruu_size, eight.lsq_size) == (128, 64)
    assert (sixteen.ruu_size, sixteen.lsq_size) == (256, 128)
    assert eight.l1d.size_bytes == 32 * 1024
    assert sixteen.l1d.size_bytes == 64 * 1024
    assert eight.l2.size_bytes == 1024 * 1024
    assert sixteen.l2.size_bytes == 2 * 1024 * 1024
    assert eight.store_buffer_entries == 16
    assert sixteen.store_buffer_entries == 32
    assert eight.fu_counts[OpClass.IALU] == 4
    assert sixteen.fu_counts[OpClass.IALU] == 16
    assert (eight.branch.mispredict_penalty,
            sixteen.branch.mispredict_penalty) == (7, 10)

    # Scaled machines preserve every 16-way/8-way ratio.
    scaled8, scaled16 = ctx.machine("8-way"), ctx.machine("16-way")
    assert scaled16.ruu_size == 2 * scaled8.ruu_size
    assert scaled16.l1d.size_bytes == 2 * scaled8.l1d.size_bytes
    assert scaled16.l2.size_bytes == 2 * scaled8.l2.size_bytes
    assert scaled16.store_buffer_entries == 2 * scaled8.store_buffer_entries
