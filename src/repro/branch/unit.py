"""The branch unit: direction predictor + BTB + RAS behind one interface.

The detailed simulator asks the unit whether a dynamic branch was
predicted correctly (direction *and* target); functional warming trains
the unit without asking for predictions.  Because the unit is shared
between modes, its state is continuously warm across fast-forwarding —
exactly the functional warming of Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.btb import BranchTargetBuffer, ReturnAddressStack
from repro.branch.predictors import CombinedPredictor
from repro.config.machines import BranchConfig
from repro.isa.instruction import DynInst
from repro.isa.opcodes import Opcode


@dataclass
class BranchOutcome:
    """Result of consulting the branch unit for one dynamic branch."""

    predicted_taken: bool
    predicted_target: int | None
    mispredicted: bool


class BranchUnit:
    """Combined predictor, BTB, and return address stack."""

    def __init__(self, config: BranchConfig) -> None:
        self.config = config
        self.predictor = CombinedPredictor(config.table_entries, config.history_bits)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_assoc)
        self.ras = ReturnAddressStack(config.ras_entries)
        self.branches = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------
    # Detailed-mode interface
    # ------------------------------------------------------------------
    def resolve(self, dyn: DynInst) -> BranchOutcome:
        """Predict the branch, compare to the actual outcome, and train.

        Mirrors SimpleScalar's per-branch flow: direction prediction for
        conditional branches, target prediction through the BTB (or RAS
        for returns), then training with the resolved outcome.
        """
        pc = dyn.pc
        op = dyn.op
        actual_taken = dyn.taken
        actual_target = dyn.next_pc

        if dyn.is_conditional:
            predicted_taken = self.predictor.predict(pc)
            predicted_target = self.btb.lookup(pc) if predicted_taken else pc + 1
            self.predictor.update(pc, actual_taken)
        elif op == Opcode.JAL:
            predicted_taken = True
            predicted_target = self.btb.lookup(pc)
            self.ras.push(pc + 1)
        elif op == Opcode.JR:
            predicted_taken = True
            predicted_target = self.ras.pop()
            if predicted_target is None:
                predicted_target = self.btb.lookup(pc)
        else:  # JUMP
            predicted_taken = True
            predicted_target = self.btb.lookup(pc)

        if actual_taken:
            self.btb.update(pc, actual_target)

        mispredicted = predicted_taken != actual_taken
        if not mispredicted and actual_taken:
            mispredicted = predicted_target != actual_target

        self.branches += 1
        if mispredicted:
            self.mispredictions += 1
        return BranchOutcome(predicted_taken, predicted_target, mispredicted)

    # ------------------------------------------------------------------
    # Functional-warming interface
    # ------------------------------------------------------------------
    def warm(self, dyn: DynInst) -> None:
        """Train predictor structures without recording predictions.

        Used during functional warming so the direction tables, global
        history, BTB and RAS track the full instruction stream between
        sampling units.

        Warming applies the exact state mutations :meth:`resolve` would:
        for a conditional branch the detailed path consults the BTB only
        when the direction predictor says "taken", and that lookup moves
        the entry to the MRU position of its set.  Mirroring the lookup
        here keeps the BTB's recency order identical whether a stretch of
        the stream was functionally warmed or simulated in detail — the
        property the checkpoint subsystem relies on to restore
        bit-identical warm state.  (Every other ``resolve`` lookup is
        immediately followed by an ``update`` of the same entry, which
        masks the recency effect, so no mirroring is needed there.)
        """
        pc = dyn.pc
        op = dyn.op
        if dyn.is_conditional:
            if self.predictor.predict(pc):
                self.btb.lookup(pc)
            self.predictor.update(pc, dyn.taken)
        elif op == Opcode.JAL:
            self.ras.push(pc + 1)
        elif op == Opcode.JR:
            self.ras.pop()
        if dyn.taken:
            self.btb.update(pc, dyn.next_pc)

    # ------------------------------------------------------------------
    # Statistics / state management
    # ------------------------------------------------------------------
    @property
    def misprediction_rate(self) -> float:
        if self.branches == 0:
            return 0.0
        return self.mispredictions / self.branches

    def reset(self) -> None:
        self.predictor.reset()
        self.btb.reset()
        self.ras.reset()
        self.branches = 0
        self.mispredictions = 0

    def reset_stats(self) -> None:
        self.predictor.reset_stats()
        self.branches = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def warm_state(self) -> dict:
        """Serializable copy of all prediction state (not statistics)."""
        return {
            "predictor": self.predictor.warm_state(),
            "btb": self.btb.warm_state(),
            "ras": self.ras.warm_state(),
        }

    def restore_warm_state(self, saved: dict) -> None:
        """Restore prediction state; accuracy counters are untouched."""
        self.predictor.restore_warm_state(saved["predictor"])
        self.btb.restore_warm_state(saved["btb"])
        self.ras.restore_warm_state(saved["ras"])
