"""The branch unit: direction predictor + BTB + RAS behind one interface.

The detailed simulator asks the unit whether a dynamic branch was
predicted correctly (direction *and* target); functional warming trains
the unit without asking for predictions.  Because the unit is shared
between modes, its state is continuously warm across fast-forwarding —
exactly the functional warming of Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.btb import BranchTargetBuffer, ReturnAddressStack
from repro.branch.predictors import CombinedPredictor
from repro.config.machines import BranchConfig
from repro.isa.instruction import DynInst
from repro.isa.opcodes import Opcode


@dataclass
class BranchOutcome:
    """Result of consulting the branch unit for one dynamic branch."""

    predicted_taken: bool
    predicted_target: int | None
    mispredicted: bool


class BranchUnit:
    """Combined predictor, BTB, and return address stack."""

    def __init__(self, config: BranchConfig) -> None:
        self.config = config
        self.predictor = CombinedPredictor(config.table_entries, config.history_bits)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_assoc)
        self.ras = ReturnAddressStack(config.ras_entries)
        self.branches = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------
    # Detailed-mode interface
    # ------------------------------------------------------------------
    def resolve(self, dyn: DynInst) -> BranchOutcome:
        """Predict the branch, compare to the actual outcome, and train.

        Mirrors SimpleScalar's per-branch flow: direction prediction for
        conditional branches, target prediction through the BTB (or RAS
        for returns), then training with the resolved outcome.
        """
        pc = dyn.pc
        op = dyn.op
        actual_taken = dyn.taken
        actual_target = dyn.next_pc

        if dyn.is_conditional:
            predicted_taken = self.predictor.predict(pc)
            predicted_target = self.btb.lookup(pc) if predicted_taken else pc + 1
            self.predictor.update(pc, actual_taken)
        elif op == Opcode.JAL:
            predicted_taken = True
            predicted_target = self.btb.lookup(pc)
            self.ras.push(pc + 1)
        elif op == Opcode.JR:
            predicted_taken = True
            predicted_target = self.ras.pop()
            if predicted_target is None:
                predicted_target = self.btb.lookup(pc)
        else:  # JUMP
            predicted_taken = True
            predicted_target = self.btb.lookup(pc)

        if actual_taken:
            self.btb.update(pc, actual_target)

        mispredicted = predicted_taken != actual_taken
        if not mispredicted and actual_taken:
            mispredicted = predicted_target != actual_target

        self.branches += 1
        if mispredicted:
            self.mispredictions += 1
        return BranchOutcome(predicted_taken, predicted_target, mispredicted)

    # ------------------------------------------------------------------
    # Functional-warming interface
    # ------------------------------------------------------------------
    def warm(self, dyn: DynInst) -> None:
        """Train predictor structures without recording predictions.

        Used during functional warming so the direction tables, global
        history, BTB and RAS track the full instruction stream between
        sampling units.

        Warming applies the exact state mutations :meth:`resolve` would:
        for a conditional branch the detailed path consults the BTB only
        when the direction predictor says "taken", and that lookup moves
        the entry to the MRU position of its set.  Mirroring the lookup
        here keeps the BTB's recency order identical whether a stretch of
        the stream was functionally warmed or simulated in detail — the
        property the checkpoint subsystem relies on to restore
        bit-identical warm state.  (Every other ``resolve`` lookup is
        immediately followed by an ``update`` of the same entry, which
        masks the recency effect, so no mirroring is needed there.)
        """
        pc = dyn.pc
        op = dyn.op
        if dyn.is_conditional:
            if self.predictor.predict(pc):
                self.btb.lookup(pc)
            self.predictor.update(pc, dyn.taken)
        elif op == Opcode.JAL:
            self.ras.push(pc + 1)
        elif op == Opcode.JR:
            self.ras.pop()
        if dyn.taken:
            self.btb.update(pc, dyn.next_pc)

    def warm_many(self, events: list[int]) -> None:
        """Bulk :meth:`warm`: replay a stream of branch outcomes.

        ``events`` holds four ints per branch — ``kind, pc, taken,
        target`` with kind 0 = conditional, 1 = JAL, 2 = JR, 3 = JUMP
        (the encoding produced by the trace-compiled engine).  The state
        evolution — all three predictor tables, global history, BTB
        recency/contents (including the mirrored predicted-taken
        lookup), RAS, and BTB statistics — is exactly that of calling
        :meth:`warm` per branch; the per-structure logic is inlined with
        tables and masks hoisted into locals because this loop runs once
        per warmed branch.
        """
        predictor = self.predictor
        bim_table = predictor.bimodal.table
        bim_counters, bim_mask = bim_table.counters, bim_table.mask
        gsh = predictor.gshare
        gsh_counters, gsh_mask = gsh.table.counters, gsh.table.mask
        history, history_mask = gsh.history, gsh.history_mask
        meta_table = predictor.meta
        meta_counters, meta_mask = meta_table.counters, meta_table.mask
        taken_at = bim_table.TAKEN_THRESHOLD
        max_value = bim_table.MAX_VALUE
        btb = self.btb
        btb_sets, btb_nsets, btb_assoc = btb._sets, btb.num_sets, btb.assoc
        btb_lookups = btb_hits = 0
        ras_stack, ras_entries = self.ras._stack, self.ras.entries

        i = 0
        count = len(events)
        while i < count:
            kind = events[i]
            pc = events[i + 1]
            taken = events[i + 2]
            target = events[i + 3]
            i += 4
            if kind == 0:  # conditional: predict (+BTB lookup), then train
                gsh_index = (pc ^ history) & gsh_mask
                if meta_counters[pc & meta_mask] >= taken_at:
                    predicted = gsh_counters[gsh_index] >= taken_at
                else:
                    predicted = bim_counters[pc & bim_mask] >= taken_at
                if predicted:
                    btb_set = btb_sets[pc % btb_nsets]
                    tag = pc // btb_nsets
                    btb_lookups += 1
                    for j, entry in enumerate(btb_set):
                        if entry[0] == tag:
                            if j != len(btb_set) - 1:
                                btb_set.append(btb_set.pop(j))
                            btb_hits += 1
                            break
                # CombinedPredictor.update(pc, taken)
                bim_index = pc & bim_mask
                bim_pred = bim_counters[bim_index] >= taken_at
                gsh_pred = gsh_counters[gsh_index] >= taken_at
                if bim_pred != gsh_pred:
                    meta_index = pc & meta_mask
                    value = meta_counters[meta_index]
                    if gsh_pred == taken:
                        if value < max_value:
                            meta_counters[meta_index] = value + 1
                    elif value > 0:
                        meta_counters[meta_index] = value - 1
                value = bim_counters[bim_index]
                if taken:
                    if value < max_value:
                        bim_counters[bim_index] = value + 1
                elif value > 0:
                    bim_counters[bim_index] = value - 1
                value = gsh_counters[gsh_index]
                if taken:
                    if value < max_value:
                        gsh_counters[gsh_index] = value + 1
                elif value > 0:
                    gsh_counters[gsh_index] = value - 1
                history = ((history << 1) | taken) & history_mask
            elif kind == 1:  # JAL: push the return address
                if len(ras_stack) >= ras_entries:
                    ras_stack.pop(0)
                ras_stack.append(pc + 1)
            elif kind == 2:  # JR: consume the predicted return
                if ras_stack:
                    ras_stack.pop()
            if taken:  # every taken branch installs/refreshes its target
                btb_set = btb_sets[pc % btb_nsets]
                tag = pc // btb_nsets
                for j, entry in enumerate(btb_set):
                    if entry[0] == tag:
                        entry[1] = target
                        if j != len(btb_set) - 1:
                            btb_set.append(btb_set.pop(j))
                        break
                else:
                    if len(btb_set) >= btb_assoc:
                        btb_set.pop(0)
                    btb_set.append([tag, target])

        gsh.history = history
        btb.lookups += btb_lookups
        btb.hits += btb_hits

    # ------------------------------------------------------------------
    # Statistics / state management
    # ------------------------------------------------------------------
    @property
    def misprediction_rate(self) -> float:
        if self.branches == 0:
            return 0.0
        return self.mispredictions / self.branches

    def reset(self) -> None:
        self.predictor.reset()
        self.btb.reset()
        self.ras.reset()
        self.branches = 0
        self.mispredictions = 0

    def reset_stats(self) -> None:
        self.predictor.reset_stats()
        self.branches = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def warm_state(self) -> dict:
        """Serializable copy of all prediction state (not statistics)."""
        return {
            "predictor": self.predictor.warm_state(),
            "btb": self.btb.warm_state(),
            "ras": self.ras.warm_state(),
        }

    def restore_warm_state(self, saved: dict) -> None:
        """Restore prediction state; accuracy counters are untouched."""
        self.predictor.restore_warm_state(saved["predictor"])
        self.btb.restore_warm_state(saved["btb"])
        self.ras.restore_warm_state(saved["ras"])
