"""Branch direction predictors: bimodal, gshare, and combined.

The machine configurations in Table 3 use a *combined* predictor
("Combined 2K tables"): a bimodal component, a global-history (gshare)
component, and a meta predictor choosing between them per branch —
SimpleScalar's ``comb`` predictor.  All tables are arrays of 2-bit
saturating counters.
"""

from __future__ import annotations


class SaturatingCounterTable:
    """A table of 2-bit saturating counters."""

    #: Counter value at and above which the prediction is "taken".
    TAKEN_THRESHOLD = 2
    MAX_VALUE = 3

    def __init__(self, entries: int, initial: int = 1) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("counter table entries must be a positive power of two")
        if not 0 <= initial <= self.MAX_VALUE:
            raise ValueError("initial counter value out of range")
        self.entries = entries
        self.counters = [initial] * entries
        self.mask = entries - 1

    def predict(self, index: int) -> bool:
        return self.counters[index & self.mask] >= self.TAKEN_THRESHOLD

    def update(self, index: int, taken: bool) -> None:
        i = index & self.mask
        value = self.counters[i]
        if taken:
            if value < self.MAX_VALUE:
                self.counters[i] = value + 1
        else:
            if value > 0:
                self.counters[i] = value - 1

    def reset(self, initial: int = 1) -> None:
        self.counters = [initial] * self.entries

    def warm_state(self) -> list[int]:
        """Copy of the counter array (checkpoint support)."""
        return list(self.counters)

    def restore_warm_state(self, saved: list[int]) -> None:
        if len(saved) != self.entries:
            raise ValueError("saved counter table has the wrong geometry")
        self.counters = list(saved)


class BimodalPredictor:
    """PC-indexed table of 2-bit counters."""

    def __init__(self, entries: int) -> None:
        self.table = SaturatingCounterTable(entries)

    def predict(self, pc: int) -> bool:
        return self.table.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(pc, taken)

    def reset(self) -> None:
        self.table.reset()


class GSharePredictor:
    """Global-history predictor: table indexed by ``pc XOR history``."""

    def __init__(self, entries: int, history_bits: int) -> None:
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.table = SaturatingCounterTable(entries)
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.history = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) & self.table.mask

    def predict(self, pc: int) -> bool:
        return self.table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(self._index(pc), taken)
        self.history = ((self.history << 1) | int(taken)) & self.history_mask

    def reset(self) -> None:
        self.table.reset()
        self.history = 0


class CombinedPredictor:
    """Meta-predicted combination of bimodal and gshare components.

    The meta table (2-bit counters) selects, per PC, which component's
    prediction to use; it is trained toward whichever component was
    correct when the two disagree.
    """

    def __init__(self, entries: int, history_bits: int) -> None:
        self.bimodal = BimodalPredictor(entries)
        self.gshare = GSharePredictor(entries, history_bits)
        self.meta = SaturatingCounterTable(entries)
        self.lookups = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> bool:
        use_gshare = self.meta.predict(pc)
        if use_gshare:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        """Train all components with the resolved outcome."""
        bimodal_pred = self.bimodal.predict(pc)
        gshare_pred = self.gshare.predict(pc)
        if bimodal_pred != gshare_pred:
            # Meta counter moves toward the component that was right.
            self.meta.update(pc, gshare_pred == taken)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict, record accuracy statistics, then train."""
        prediction = self.predict(pc)
        self.lookups += 1
        if prediction != taken:
            self.mispredictions += 1
        self.update(pc, taken)
        return prediction

    @property
    def misprediction_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.mispredictions / self.lookups

    def reset(self) -> None:
        self.bimodal.reset()
        self.gshare.reset()
        self.meta.reset()
        self.lookups = 0
        self.mispredictions = 0

    def reset_stats(self) -> None:
        self.lookups = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------
    # Checkpoint support (warm state only; accuracy counters are stats)
    # ------------------------------------------------------------------
    def warm_state(self) -> dict:
        return {
            "bimodal": self.bimodal.table.warm_state(),
            "gshare": self.gshare.table.warm_state(),
            "gshare_history": self.gshare.history,
            "meta": self.meta.warm_state(),
        }

    def restore_warm_state(self, saved: dict) -> None:
        self.bimodal.table.restore_warm_state(saved["bimodal"])
        self.gshare.table.restore_warm_state(saved["gshare"])
        self.gshare.history = int(saved["gshare_history"])
        self.meta.restore_warm_state(saved["meta"])
