"""Branch prediction substrate."""

from repro.branch.btb import BranchTargetBuffer, ReturnAddressStack
from repro.branch.predictors import (
    BimodalPredictor,
    CombinedPredictor,
    GSharePredictor,
    SaturatingCounterTable,
)
from repro.branch.unit import BranchOutcome, BranchUnit

__all__ = [
    "BimodalPredictor",
    "BranchOutcome",
    "BranchTargetBuffer",
    "BranchUnit",
    "CombinedPredictor",
    "GSharePredictor",
    "ReturnAddressStack",
    "SaturatingCounterTable",
]
