"""Branch target buffer and return address stack."""

from __future__ import annotations


class BranchTargetBuffer:
    """Set-associative BTB mapping branch PCs to predicted targets."""

    def __init__(self, entries: int, assoc: int = 4) -> None:
        if entries <= 0 or assoc <= 0:
            raise ValueError("BTB entries and associativity must be positive")
        if entries % assoc != 0:
            raise ValueError("BTB entries must be a multiple of associativity")
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        # Each set is a list of [tag, target] with MRU last.
        self._sets: list[list[list[int]]] = [[] for _ in range(self.num_sets)]
        self.lookups = 0
        self.hits = 0

    def lookup(self, pc: int) -> int | None:
        """Predicted target for the branch at ``pc`` (None on BTB miss)."""
        index = pc % self.num_sets
        tag = pc // self.num_sets
        self.lookups += 1
        for i, entry in enumerate(self._sets[index]):
            if entry[0] == tag:
                if i != len(self._sets[index]) - 1:
                    self._sets[index].append(self._sets[index].pop(i))
                self.hits += 1
                return entry[1]
        return None

    def update(self, pc: int, target: int) -> None:
        """Install or refresh the target of the branch at ``pc``."""
        index = pc % self.num_sets
        tag = pc // self.num_sets
        btb_set = self._sets[index]
        for i, entry in enumerate(btb_set):
            if entry[0] == tag:
                entry[1] = target
                if i != len(btb_set) - 1:
                    btb_set.append(btb_set.pop(i))
                return
        if len(btb_set) >= self.assoc:
            btb_set.pop(0)
        btb_set.append([tag, target])

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.lookups = 0
        self.hits = 0

    def warm_state(self) -> list[list[list[int]]]:
        """Deep copy of the tag/target sets, MRU order included."""
        return [[list(entry) for entry in s] for s in self._sets]

    def restore_warm_state(self, saved: list[list[list[int]]]) -> None:
        if len(saved) != self.num_sets:
            raise ValueError("saved BTB state has the wrong geometry")
        self._sets = [[list(entry) for entry in s] for s in saved]


class ReturnAddressStack:
    """Fixed-depth return address stack for call/return prediction."""

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ValueError("RAS entries must be positive")
        self.entries = entries
        self._stack: list[int] = []

    def push(self, return_address: int) -> None:
        if len(self._stack) >= self.entries:
            self._stack.pop(0)
        self._stack.append(return_address)

    def pop(self) -> int | None:
        if self._stack:
            return self._stack.pop()
        return None

    def top(self) -> int | None:
        if self._stack:
            return self._stack[-1]
        return None

    def reset(self) -> None:
        self._stack = []

    def warm_state(self) -> list[int]:
        return list(self._stack)

    def restore_warm_state(self, saved: list[int]) -> None:
        self._stack = list(saved[-self.entries:])

    def __len__(self) -> int:
        return len(self._stack)
