"""Plain-text table formatting for experiment output.

The benchmark harness prints every reproduced table and figure as an
aligned text table so ``pytest benchmarks/ --benchmark-only -s`` output
can be compared side by side with the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as an aligned monospace table."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
        parts.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    for row in rendered_rows:
        parts.append(line(row))
    return "\n".join(parts)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.3f}"
        return f"{cell:.4f}"
    return str(cell)


def percent(value: float, digits: int = 2) -> str:
    """Format a fraction as a signed percentage string."""
    return f"{value * 100:+.{digits}f}%"


def unsigned_percent(value: float, digits: int = 2) -> str:
    """Format a fraction as an unsigned percentage string."""
    return f"{value * 100:.{digits}f}%"


def print_report(text: str) -> None:
    """Print a report block surrounded by blank lines (pytest -s friendly)."""
    print()
    print(text)
    print()
