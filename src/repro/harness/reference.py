"""Reference (full-stream detailed) simulation with on-disk caching.

The paper's evaluation rests on a reference data set: "we collect
cycle-by-cycle traces of instruction commits in sim-outorder for the
entire length of each benchmark" (Section 3.2).  This module produces
the equivalent for our synthetic suite — a full detailed simulation of
every benchmark with per-chunk cycle and energy traces — and caches the
result on disk because the experiments (Figures 2, 3, 5, 6, 7, 8 and
Tables 4, 5) all reuse it.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.config.machines import MachineConfig
from repro.core.estimates import ReferenceResult
from repro.detailed.pipeline import DetailedSimulator
from repro.detailed.state import MicroarchState
from repro.energy.wattch import EnergyModel
from repro.functional.engine import create_core
from repro.isa.program import Program

#: Bump when simulator behaviour changes in a way that invalidates caches.
CACHE_VERSION = 3

#: Default per-chunk granularity of the reference trace (instructions).
DEFAULT_CHUNK_SIZE = 25


def default_cache_dir() -> Path:
    """Directory used to cache reference traces."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".ref_cache"


def _program_digest(program: Program) -> str:
    """Short content digest of a program (code + data), for cache keys.

    The same benchmark name built at a different scale (or after a
    workload change) produces different code/data and therefore a
    different digest, so stale cached traces are never reused.
    """
    import hashlib

    hasher = hashlib.sha256()
    for inst in program.instructions:
        hasher.update(str(inst).encode())
    for addr in sorted(program.data):
        hasher.update(f"{addr}:{program.data[addr]}".encode())
    return hasher.hexdigest()[:12]


def _cache_path(program: Program, machine: str, chunk_size: int,
                cache_dir: Path) -> Path:
    safe = program.name.replace("/", "_")
    digest = _program_digest(program)
    return (cache_dir
            / f"{safe}--{machine}--c{chunk_size}--{digest}--v{CACHE_VERSION}.npz")


def run_reference(
    program: Program,
    machine: MachineConfig,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    use_cache: bool = True,
    cache_dir: Path | None = None,
) -> ReferenceResult:
    """Run (or load) the full-stream detailed simulation of a benchmark.

    Returns a :class:`ReferenceResult` whose ``chunk_cycles`` /
    ``chunk_energy`` arrays hold the cycle and energy cost of every
    ``chunk_size``-instruction slice of the stream, enabling CPI / EPI
    aggregation at any unit size that is a multiple of ``chunk_size``.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    cache_dir = cache_dir or default_cache_dir()
    path = _cache_path(program, machine.name, chunk_size, cache_dir)

    if use_cache and path.exists():
        data = np.load(path)
        return ReferenceResult(
            benchmark=program.name,
            machine=machine.name,
            instructions=int(data["instructions"]),
            cycles=int(data["cycles"]),
            energy=float(data["energy"]),
            chunk_size=chunk_size,
            chunk_cycles=data["chunk_cycles"],
            chunk_energy=data["chunk_energy"],
            seconds=float(data["seconds"]),
        )

    core = create_core(program)
    microarch = MicroarchState(machine)
    detailed = DetailedSimulator(machine, microarch)
    energy_model = EnergyModel(machine)

    chunk_cycles: list[int] = []
    chunk_energy: list[float] = []
    total_instructions = 0
    total_cycles = 0
    total_energy = 0.0

    start = time.perf_counter()
    detailed.begin_period()
    while True:
        counters = detailed.run(core, chunk_size)
        if counters.instructions == 0:
            break
        chunk_total_energy = energy_model.total_energy(counters)
        total_instructions += counters.instructions
        total_cycles += counters.cycles
        total_energy += chunk_total_energy
        if counters.instructions < chunk_size:
            # The trailing partial chunk contributes to the full-stream
            # totals but is excluded from the per-chunk trace so that the
            # trace aligns exactly with whole sampling units.
            break
        chunk_cycles.append(counters.cycles)
        chunk_energy.append(chunk_total_energy)
    seconds = time.perf_counter() - start

    result = ReferenceResult(
        benchmark=program.name,
        machine=machine.name,
        instructions=total_instructions,
        cycles=total_cycles,
        energy=total_energy,
        chunk_size=chunk_size,
        chunk_cycles=np.asarray(chunk_cycles, dtype=np.int64),
        chunk_energy=np.asarray(chunk_energy, dtype=float),
        seconds=seconds,
    )

    if use_cache:
        cache_dir.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            instructions=result.instructions,
            cycles=result.cycles,
            energy=result.energy,
            chunk_cycles=result.chunk_cycles,
            chunk_energy=result.chunk_energy,
            seconds=result.seconds,
        )
    return result


def unit_cpi_trace(reference: ReferenceResult, unit_size: int) -> np.ndarray:
    """Per-unit CPI values of the reference trace at a given unit size.

    ``unit_size`` must be a multiple of the reference chunk size; the
    trailing partial unit (if any) is dropped, mirroring how the sampling
    population is defined as whole units.
    """
    if unit_size % reference.chunk_size != 0:
        raise ValueError(
            f"unit_size {unit_size} must be a multiple of the reference "
            f"chunk size {reference.chunk_size}")
    chunks_per_unit = unit_size // reference.chunk_size
    cycles = reference.chunk_cycles
    usable = (len(cycles) // chunks_per_unit) * chunks_per_unit
    if usable == 0:
        raise ValueError("reference trace shorter than one unit")
    grouped = cycles[:usable].reshape(-1, chunks_per_unit).sum(axis=1)
    return grouped / float(unit_size)


def unit_epi_trace(reference: ReferenceResult, unit_size: int) -> np.ndarray:
    """Per-unit EPI values of the reference trace at a given unit size."""
    if unit_size % reference.chunk_size != 0:
        raise ValueError(
            f"unit_size {unit_size} must be a multiple of the reference "
            f"chunk size {reference.chunk_size}")
    chunks_per_unit = unit_size // reference.chunk_size
    energy = reference.chunk_energy
    usable = (len(energy) // chunks_per_unit) * chunks_per_unit
    if usable == 0:
        raise ValueError("reference trace shorter than one unit")
    grouped = energy[:usable].reshape(-1, chunks_per_unit).sum(axis=1)
    return grouped / float(unit_size)
