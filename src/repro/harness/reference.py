"""Reference (full-stream detailed) simulation with on-disk caching.

The paper's evaluation rests on a reference data set: "we collect
cycle-by-cycle traces of instruction commits in sim-outorder for the
entire length of each benchmark" (Section 3.2).  This module produces
the equivalent for our synthetic suite — a full detailed simulation of
every benchmark with per-chunk cycle and energy traces — and caches the
result in the artifact store's ``reftrace`` namespace because the
experiments (Figures 2, 3, 5, 6, 7, 8 and Tables 4, 5) all reuse it.

The reference pass can also *capture checkpoints* while it runs
(``capture_units``): warm microarchitectural state evolves identically
under functional warming and detailed simulation (the path-independence
contract the checkpoint subsystem rests on), so the full-stream
detailed pass records the same per-stride snapshots a functional
checkpoint build would — one warm pass populates both the ``reftrace``
and ``checkpoint`` namespaces, and study workflows skip the separate
functional build pass entirely.
"""

from __future__ import annotations

import io
import time
from pathlib import Path

import numpy as np

from repro.config.machines import MachineConfig
from repro.core.estimates import ReferenceResult
from repro.core.procedure import recommended_warming
from repro.detailed.counters import PipelineCounters
from repro.detailed.pipeline import DetailedSimulator
from repro.detailed.state import MicroarchState
from repro.energy.wattch import EnergyModel
from repro.functional.engine import create_core
from repro.functional.warming import _boundaries
from repro.isa.program import Program
from repro.store import ArtifactStore, record_pass, register_artifact_kind
from repro.checkpoint.snapshot import (
    machine_warm_fingerprint,
    program_fingerprint,
)
from repro.checkpoint.store import (
    DEFAULT_STRIDE,
    CheckpointSet,
    CheckpointStore,
    SnapshotRecorder,
    snapshot_offsets,
)

#: Bump when simulator behaviour changes in a way that invalidates caches.
CACHE_VERSION = 3

#: Default per-chunk granularity of the reference trace (instructions).
DEFAULT_CHUNK_SIZE = 25

register_artifact_kind("reftrace", ".npz", f"--v{CACHE_VERSION}.npz")


def default_cache_dir() -> Path:
    """Directory used to cache reference traces.

    Now the ``reftrace`` namespace of the artifact store:
    ``REPRO_REF_CACHE_DIR`` (and the older ``REPRO_CACHE_DIR``) still
    win as legacy overrides, otherwise
    ``<REPRO_ARTIFACT_DIR or .artifacts>/reftrace``.  This also retires
    the old hard-coded ``parents[3]/.ref_cache`` fallback, which broke
    for installed (non-src-layout) packages.
    """
    return ArtifactStore().namespace_dir("reftrace")


def _program_digest(program: Program) -> str:
    """Short content digest of a program (code + data), for cache keys.

    The same benchmark name built at a different scale (or after a
    workload change) produces different code/data and therefore a
    different digest, so stale cached traces are never reused.
    """
    import hashlib

    hasher = hashlib.sha256()
    for inst in program.instructions:
        hasher.update(str(inst).encode())
    for addr in sorted(program.data):
        hasher.update(f"{addr}:{program.data[addr]}".encode())
    return hasher.hexdigest()[:12]


def _cache_path(program: Program, machine: str, chunk_size: int,
                cache_dir: Path) -> Path:
    safe = program.name.replace("/", "_")
    digest = _program_digest(program)
    return (cache_dir
            / f"{safe}--{machine}--c{chunk_size}--{digest}--v{CACHE_VERSION}.npz")


def run_reference(
    program: Program,
    machine: MachineConfig,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    use_cache: bool = True,
    cache_dir: Path | None = None,
    capture_units: int | None = None,
    checkpoint_store: CheckpointStore | None = None,
) -> ReferenceResult:
    """Run (or load) the full-stream detailed simulation of a benchmark.

    Returns a :class:`ReferenceResult` whose ``chunk_cycles`` /
    ``chunk_energy`` arrays hold the cycle and energy cost of every
    ``chunk_size``-instruction slice of the stream, enabling CPI / EPI
    aggregation at any unit size that is a multiple of ``chunk_size``.

    ``capture_units`` (a sampling-unit size) additionally captures the
    checkpoint set of that unit size *during* the reference pass and
    stores it through ``checkpoint_store`` (default: the shared store),
    unless a matching set already exists.  The snapshots land on the
    same positions a functional build would use, and since warm state
    evolves identically under both paths, the stored set is
    bit-equivalent to a functionally built one.  Capture splits the
    simulation at snapshot positions; per-chunk counters accumulate
    across the splits, so the trace itself is unchanged.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    store = ArtifactStore(
        overrides={"reftrace": cache_dir} if cache_dir else None)
    path = _cache_path(program, machine.name, chunk_size,
                       store.namespace_dir("reftrace"))

    if use_cache:
        blob = store.read_path(path)
        if blob is not None:
            data = np.load(io.BytesIO(blob))
            return ReferenceResult(
                benchmark=program.name,
                machine=machine.name,
                instructions=int(data["instructions"]),
                cycles=int(data["cycles"]),
                energy=float(data["energy"]),
                chunk_size=chunk_size,
                chunk_cycles=data["chunk_cycles"],
                chunk_energy=data["chunk_energy"],
                seconds=float(data["seconds"]),
            )

    core = create_core(program)
    microarch = MicroarchState(machine)
    detailed = DetailedSimulator(machine, microarch)
    energy_model = EnergyModel(machine)

    # Snapshot capture piggybacks on the pass: same boundary grid as
    # build_checkpoints (stride plus the detailed-warming offset), with
    # the stored-address set feeding the per-stride memory deltas.
    recorder = None
    written: set[int] | None = None
    next_snap = None
    if capture_units is not None and capture_units > 0:
        if checkpoint_store is None:
            checkpoint_store = CheckpointStore()
        if (checkpoint_store.enabled
                and checkpoint_store.get(program, machine,
                                         capture_units) is None):
            ckpt_chunk = capture_units * DEFAULT_STRIDE
            offsets = snapshot_offsets(ckpt_chunk,
                                       recommended_warming(machine))
            boundary_iter = _boundaries(0, ckpt_chunk, offsets)
            next_snap = next(boundary_iter)
            recorder = SnapshotRecorder()
            written = set()

    chunk_cycles: list[int] = []
    chunk_energy: list[float] = []
    total_instructions = 0
    total_cycles = 0
    total_energy = 0.0

    start = time.perf_counter()
    detailed.begin_period()
    position = 0
    while True:
        # One trace chunk, split at snapshot positions when capturing.
        # PipelineCounters telescope exactly across consecutive run()
        # calls (cycles are commit-clock differences), so the chunk
        # counters — and therefore the trace — are bit-identical with
        # capture on or off.
        counters = PipelineCounters()
        chunk_end = position + chunk_size
        while position < chunk_end:
            target = chunk_end
            if next_snap is not None and next_snap < target:
                target = next_snap
            segment = detailed.run(core, target - position, written)
            counters.add(segment)
            position += segment.instructions
            if recorder is not None and position == next_snap:
                recorder.capture(core, microarch, position, written)
                written = set()
                next_snap = next(boundary_iter)
            if segment.instructions < target - (position
                                                - segment.instructions):
                break  # program halted mid-segment
        if counters.instructions == 0:
            break
        chunk_total_energy = energy_model.total_energy(counters)
        total_instructions += counters.instructions
        total_cycles += counters.cycles
        total_energy += chunk_total_energy
        if counters.instructions < chunk_size:
            # The trailing partial chunk contributes to the full-stream
            # totals but is excluded from the per-chunk trace so that the
            # trace aligns exactly with whole sampling units.
            break
        chunk_cycles.append(counters.cycles)
        chunk_energy.append(chunk_total_energy)
    seconds = time.perf_counter() - start
    record_pass("reference", program.name, total_instructions)

    if recorder is not None and core.state.halted:
        # Mirrors build_checkpoints' refusal to store a partial set: a
        # non-halting pass (impossible here — the loop above runs to
        # halt) would leave snapshots past a restore anyone performs.
        checkpoint_store.put(CheckpointSet(
            benchmark=program.name,
            machine=machine.name,
            program_hash=program_fingerprint(program),
            machine_hash=machine_warm_fingerprint(machine),
            unit_size=capture_units,
            stride=DEFAULT_STRIDE,
            benchmark_length=core.instructions_retired,
            snapshots=recorder.snapshots,
        ), program, machine)

    result = ReferenceResult(
        benchmark=program.name,
        machine=machine.name,
        instructions=total_instructions,
        cycles=total_cycles,
        energy=total_energy,
        chunk_size=chunk_size,
        chunk_cycles=np.asarray(chunk_cycles, dtype=np.int64),
        chunk_energy=np.asarray(chunk_energy, dtype=float),
        seconds=seconds,
    )

    if use_cache:
        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            instructions=result.instructions,
            cycles=result.cycles,
            energy=result.energy,
            chunk_cycles=result.chunk_cycles,
            chunk_energy=result.chunk_energy,
            seconds=result.seconds,
        )
        store.write_path(path, buffer.getvalue())
    return result


def unit_cpi_trace(reference: ReferenceResult, unit_size: int) -> np.ndarray:
    """Per-unit CPI values of the reference trace at a given unit size.

    ``unit_size`` must be a multiple of the reference chunk size; the
    trailing partial unit (if any) is dropped, mirroring how the sampling
    population is defined as whole units.
    """
    if unit_size % reference.chunk_size != 0:
        raise ValueError(
            f"unit_size {unit_size} must be a multiple of the reference "
            f"chunk size {reference.chunk_size}")
    chunks_per_unit = unit_size // reference.chunk_size
    cycles = reference.chunk_cycles
    usable = (len(cycles) // chunks_per_unit) * chunks_per_unit
    if usable == 0:
        raise ValueError("reference trace shorter than one unit")
    grouped = cycles[:usable].reshape(-1, chunks_per_unit).sum(axis=1)
    return grouped / float(unit_size)


def unit_epi_trace(reference: ReferenceResult, unit_size: int) -> np.ndarray:
    """Per-unit EPI values of the reference trace at a given unit size."""
    if unit_size % reference.chunk_size != 0:
        raise ValueError(
            f"unit_size {unit_size} must be a multiple of the reference "
            f"chunk size {reference.chunk_size}")
    chunks_per_unit = unit_size // reference.chunk_size
    energy = reference.chunk_energy
    usable = (len(energy) // chunks_per_unit) * chunks_per_unit
    if usable == 0:
        raise ValueError("reference trace shorter than one unit")
    grouped = energy[:usable].reshape(-1, chunks_per_unit).sum(axis=1)
    return grouped / float(unit_size)
