"""Coefficient-of-variation analysis over the reference traces.

Drives Figure 2 (V_CPI as a function of the sampling unit size U),
Figure 3 (minimum measured instructions n·U needed for the common
confidence targets), and supplies the CV-versus-U curves the optimal-U
analysis of Figure 5 consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimates import ReferenceResult
from repro.core.stats import required_sample_size
from repro.harness.reference import unit_cpi_trace, unit_epi_trace


@dataclass(frozen=True)
class ConfidenceTarget:
    """One (interval, level) confidence requirement."""

    epsilon: float
    confidence: float

    @property
    def label(self) -> str:
        return f"±{self.epsilon:.0%} @ {self.confidence:.1%}"


#: The confidence targets Figure 3 tabulates.
FIGURE3_TARGETS = (
    ConfidenceTarget(0.03, 0.95),
    ConfidenceTarget(0.03, 0.997),
    ConfidenceTarget(0.01, 0.95),
    ConfidenceTarget(0.01, 0.997),
)


def default_unit_sizes(reference: ReferenceResult,
                       max_points: int = 12) -> list[int]:
    """Geometric sweep of unit sizes supported by a reference trace.

    Starts at the trace's chunk size and grows by powers of two (times
    the chunk size) while at least ~8 whole units remain, mirroring the
    log-scale U axis of Figure 2.
    """
    sizes = []
    unit = reference.chunk_size
    while reference.instructions // unit >= 8 and len(sizes) < max_points:
        sizes.append(unit)
        unit *= 2
    if not sizes:
        sizes = [reference.chunk_size]
    return sizes


def cv_versus_unit_size(reference: ReferenceResult,
                        unit_sizes: list[int] | None = None,
                        metric: str = "cpi") -> dict[int, float]:
    """Coefficient of variation of per-unit CPI (or EPI) for each U."""
    if unit_sizes is None:
        unit_sizes = default_unit_sizes(reference)
    trace_fn = unit_cpi_trace if metric == "cpi" else unit_epi_trace
    curve: dict[int, float] = {}
    for unit_size in unit_sizes:
        values = trace_fn(reference, unit_size)
        mean = values.mean()
        if mean == 0 or len(values) < 2:
            curve[unit_size] = 0.0
        else:
            curve[unit_size] = float(values.std(ddof=1) / mean)
    return curve


def minimum_measured_instructions(
    reference: ReferenceResult,
    unit_size: int,
    targets: tuple[ConfidenceTarget, ...] = FIGURE3_TARGETS,
    metric: str = "cpi",
    use_fpc: bool = True,
) -> dict[ConfidenceTarget, dict[str, float]]:
    """Minimum n·U (and fraction of the benchmark) per confidence target.

    This is Figure 3: using the population CV at the chosen unit size,
    compute the required sample size for each confidence target and
    express it as instructions measured and as a percentage of the
    benchmark's length.
    """
    trace_fn = unit_cpi_trace if metric == "cpi" else unit_epi_trace
    values = trace_fn(reference, unit_size)
    mean = values.mean()
    cv = float(values.std(ddof=1) / mean) if mean else 0.0
    population = len(values)
    results: dict[ConfidenceTarget, dict[str, float]] = {}
    for target in targets:
        n = required_sample_size(
            cv, target.epsilon, target.confidence,
            population_size=population if use_fpc else None)
        measured = n * unit_size
        results[target] = {
            "cv": cv,
            "sample_size": n,
            "measured_instructions": measured,
            "fraction_of_benchmark": measured / reference.instructions,
        }
    return results


def true_mean(reference: ReferenceResult, metric: str = "cpi") -> float:
    """True full-stream mean CPI or EPI of the reference run."""
    return reference.cpi if metric == "cpi" else reference.epi


def population_homogeneity(reference: ReferenceResult, unit_size: int,
                           interval: int, metric: str = "cpi",
                           offset_stride: int = 1) -> float:
    """Intraclass correlation of the per-unit trace at a sampling interval.

    Used to verify the paper's claim that realistic workloads show
    negligible homogeneity at the periodicities relevant to sampling, so
    systematic sampling can be analyzed with random-sampling formulas.
    """
    from repro.core.stats import intraclass_correlation

    trace_fn = unit_cpi_trace if metric == "cpi" else unit_epi_trace
    values = trace_fn(reference, unit_size)
    return intraclass_correlation(values, interval, offset_stride=offset_stride)
