"""Experiment harness: reference runs and supporting analyses.

The per-figure entry points re-exported here are deprecated shims over
the registered studies in :mod:`repro.api.studies`; new code should use
``Session.run_study`` (see API.md, "Studies").
"""

from repro.harness.bias import (
    BiasMeasurement,
    measure_bias,
    required_detailed_warming,
)
from repro.harness.cv_analysis import (
    FIGURE3_TARGETS,
    ConfidenceTarget,
    cv_versus_unit_size,
    default_unit_sizes,
    minimum_measured_instructions,
    population_homogeneity,
    true_mean,
)
from repro.harness.experiments import (
    ExperimentContext,
    default_context,
    figure2_cv_curves,
    figure3_minimum_instructions,
    figure4_speed_model,
    figure5_optimal_unit_size,
    figure6_cpi_estimates,
    figure7_epi_estimates,
    figure8_simpoint_comparison,
    table3_configurations,
    table4_detailed_warming,
    table5_functional_warming_bias,
    table6_runtimes,
)
from repro.harness.reference import (
    DEFAULT_CHUNK_SIZE,
    run_reference,
    unit_cpi_trace,
    unit_epi_trace,
)
from repro.harness.reporting import format_table, percent, print_report, unsigned_percent
from repro.harness.runtime import MeasuredRates, measure_rates

__all__ = [
    "BiasMeasurement",
    "ConfidenceTarget",
    "DEFAULT_CHUNK_SIZE",
    "ExperimentContext",
    "FIGURE3_TARGETS",
    "MeasuredRates",
    "cv_versus_unit_size",
    "default_context",
    "default_unit_sizes",
    "figure2_cv_curves",
    "figure3_minimum_instructions",
    "figure4_speed_model",
    "figure5_optimal_unit_size",
    "figure6_cpi_estimates",
    "figure7_epi_estimates",
    "figure8_simpoint_comparison",
    "format_table",
    "measure_bias",
    "measure_rates",
    "minimum_measured_instructions",
    "percent",
    "population_homogeneity",
    "print_report",
    "required_detailed_warming",
    "run_reference",
    "table3_configurations",
    "table4_detailed_warming",
    "table5_functional_warming_bias",
    "table6_runtimes",
    "true_mean",
    "unit_cpi_trace",
    "unit_epi_trace",
    "unsigned_percent",
]
