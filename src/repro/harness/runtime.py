"""Measured simulator rates and runtime accounting (Table 6, Figure 4).

The paper characterizes its simulators by three rates: functional
simulation (S_F, normalized to 1), detailed simulation (S_D, ~1/60 of
S_F for sim-outorder), and functional warming (S_FW ~0.55 of S_F).  This
module measures the equivalent rates of this repository's simulators on
a calibration workload so the analytical performance model can be
evaluated both with our measured rates and with the paper's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.config.machines import MachineConfig
from repro.core.perf_model import SimulatorRates
from repro.detailed.pipeline import DetailedSimulator
from repro.detailed.state import MicroarchState
from repro.functional.engine import create_core
from repro.functional.warming import FunctionalWarmer
from repro.isa.program import Program


@dataclass(frozen=True)
class MeasuredRates:
    """Raw instruction-per-second rates of each simulation mode."""

    functional_ips: float
    warming_ips: float
    detailed_ips: float

    @property
    def s_detailed(self) -> float:
        """Detailed rate relative to functional (the paper's S_D)."""
        return self.detailed_ips / self.functional_ips

    @property
    def s_warming(self) -> float:
        """Functional-warming rate relative to functional (S_FW)."""
        return self.warming_ips / self.functional_ips

    def to_simulator_rates(self) -> SimulatorRates:
        return SimulatorRates(
            functional_ips=self.functional_ips,
            s_detailed=min(1.0, self.s_detailed),
            s_warming=min(1.0, self.s_warming),
        )


def measure_rates(program: Program, machine: MachineConfig,
                  instructions: int = 60_000) -> MeasuredRates:
    """Measure functional / warming / detailed rates on one program.

    Each mode executes ``instructions`` dynamic instructions from the
    start of the program (restarting the functional core each time so all
    three measurements cover the same stream).
    """
    if instructions <= 0:
        raise ValueError("instructions must be positive")

    core = create_core(program)
    start = time.perf_counter()
    executed = core.run(instructions)
    functional_seconds = time.perf_counter() - start
    if executed == 0:
        raise ValueError("program executed no instructions")

    core = create_core(program)
    warmer = FunctionalWarmer(MicroarchState(machine))
    start = time.perf_counter()
    executed_warm = core.run_warmed(instructions, warmer)
    warming_seconds = time.perf_counter() - start

    core = create_core(program)
    microarch = MicroarchState(machine)
    detailed = DetailedSimulator(machine, microarch)
    start = time.perf_counter()
    counters = detailed.simulate(core, instructions)
    detailed_seconds = time.perf_counter() - start

    return MeasuredRates(
        functional_ips=executed / max(functional_seconds, 1e-9),
        warming_ips=executed_warm / max(warming_seconds, 1e-9),
        detailed_ips=counters.instructions / max(detailed_seconds, 1e-9),
    )
