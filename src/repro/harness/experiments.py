"""Experiment harness: one entry point per paper table / figure.

Every experiment of the paper's evaluation (Tables 3-6, Figures 2-8) has
a function here that produces both structured rows (for assertions in
``benchmarks/`` and reuse in ``examples/``) and a formatted text table.
The benchmark modules under ``benchmarks/`` are thin wrappers that call
these functions, print the report, and assert the qualitative shape the
paper reports (see DESIGN.md, "Shape expectations").

Scaling: the experiments run the synthetic suite at a configurable scale
(``REPRO_SCALE``, default 0.6) and with sampling parameters scaled from
the paper's canonical values in the same proportion as the benchmark
lengths (see EXPERIMENTS.md).  ``REPRO_SUITE`` selects a benchmark
subset, and ``REPRO_FAST=1`` shrinks the most expensive sweeps.

Suite-wide estimation sweeps (Figures 6/7/8) go through the
:mod:`repro.api` session layer: each (machine, benchmark) cell becomes a
:class:`~repro.api.spec.RunSpec`, executed — optionally in parallel,
``REPRO_WORKERS=N`` — with on-disk result caching by spec hash.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.config.machines import MachineConfig, scaled_16way, scaled_8way
from repro.core.estimates import ReferenceResult
from repro.core.perf_model import (
    PAPER_SD_FUTURE,
    PAPER_SD_TODAY,
    SamplingWorkload,
    SimulatorRates,
    detailed_runtime_seconds,
    functional_runtime_seconds,
    paper_rate,
    runtime_seconds,
    speedup_over_detailed,
)
from repro.core.procedure import recommended_warming
from repro.core.stats import CONFIDENCE_997, required_sample_size
from repro.harness.bias import measure_bias, required_detailed_warming
from repro.harness.cv_analysis import (
    FIGURE3_TARGETS,
    cv_versus_unit_size,
    default_unit_sizes,
    minimum_measured_instructions,
)
from repro.harness.reference import run_reference
from repro.harness.reporting import format_table, percent, unsigned_percent
from repro.harness.runtime import MeasuredRates, measure_rates
from repro.simpoint.estimator import run_simpoint
from repro.workloads.suite import SUITE_NAMES, Benchmark, get_benchmark


@dataclass
class ExperimentContext:
    """Shared configuration and caches for all experiments."""

    scale: float = field(
        default_factory=lambda: float(os.environ.get("REPRO_SCALE", "0.6")))
    fast: bool = field(
        default_factory=lambda: os.environ.get("REPRO_FAST", "0") == "1")
    suite_names: list[str] = field(default_factory=list)
    unit_size: int = 50
    chunk_size: int = 25
    n_init: int = 300
    epsilon: float = 0.075
    confidence: float = CONFIDENCE_997
    use_cache: bool = True
    #: Worker processes for suite sweeps (0/None = serial; REPRO_WORKERS).
    max_workers: int | None = field(
        default_factory=lambda: int(os.environ.get("REPRO_WORKERS") or 0) or None)
    #: Checkpoint mode for suite sweeps ("off"/"auto"; REPRO_CHECKPOINTS).
    checkpoints: str = field(
        default_factory=lambda: os.environ.get("REPRO_CHECKPOINTS", "off"))

    def __post_init__(self) -> None:
        if not self.suite_names:
            env = os.environ.get("REPRO_SUITE", "")
            if env:
                self.suite_names = [name.strip() for name in env.split(",") if name.strip()]
            else:
                self.suite_names = list(SUITE_NAMES)
        self._benchmarks: dict[str, Benchmark] = {}
        self._lengths: dict[str, int] = {}
        self._references: dict[tuple[str, str], ReferenceResult] = {}
        self._machines = {"8-way": scaled_8way(), "16-way": scaled_16way()}
        self._session = None

    # ------------------------------------------------------------------
    # Machines / benchmarks / references
    # ------------------------------------------------------------------
    @property
    def machines(self) -> dict[str, MachineConfig]:
        return self._machines

    def machine(self, name: str) -> MachineConfig:
        return self._machines[name]

    def warming(self, machine: MachineConfig) -> int:
        return recommended_warming(machine)

    def benchmark(self, name: str) -> Benchmark:
        if name not in self._benchmarks:
            self._benchmarks[name] = get_benchmark(name, scale=self.scale)
        return self._benchmarks[name]

    def benchmark_length(self, name: str) -> int:
        if name not in self._lengths:
            self._lengths[name] = self.reference(name, "8-way").instructions
        return self._lengths[name]

    def reference(self, benchmark_name: str, machine_name: str) -> ReferenceResult:
        key = (benchmark_name, machine_name)
        if key not in self._references:
            benchmark = self.benchmark(benchmark_name)
            self._references[key] = run_reference(
                benchmark.program,
                self.machine(machine_name),
                chunk_size=self.chunk_size,
                use_cache=self.use_cache,
            )
        return self._references[key]

    def subset(self, count: int) -> list[str]:
        """A smaller, behaviourally diverse subset for expensive sweeps."""
        preferred = ["gcc.syn", "mcf.syn", "ammp.syn", "gzip.syn", "mgrid.syn",
                     "vpr.syn", "mesa.syn", "bzip2.syn"]
        names = [n for n in preferred if n in self.suite_names]
        names += [n for n in self.suite_names if n not in names]
        return names[:count]

    # ------------------------------------------------------------------
    # Session-layer sweeps
    # ------------------------------------------------------------------
    @property
    def session(self):
        """The :class:`repro.api.Session` used for suite sweeps."""
        if self._session is None:
            from repro.api import Session

            self._session = Session(max_workers=self.max_workers,
                                    use_cache=self.use_cache)
        return self._session

    def estimation_spec(self, benchmark_name: str, machine_name: str,
                        metric: str = "cpi", max_rounds: int = 2):
        """The RunSpec for one suite-sweep cell (Fig 6/7/8 style)."""
        from repro.api import RunSpec, SystematicStrategy

        machine = self.machine(machine_name)
        return RunSpec(
            benchmark=benchmark_name,
            machine=machine_name,
            strategy=SystematicStrategy(
                unit_size=self.unit_size,
                n_init=self.n_init,
                max_rounds=max_rounds,
                detailed_warming=self.warming(machine),
                functional_warming=True,
            ),
            scale=self.scale,
            metric=metric,
            epsilon=self.epsilon,
            confidence=self.confidence,
            benchmark_length=self.reference(benchmark_name,
                                            machine_name).instructions,
            checkpoints=self.checkpoints,
        )

    def run_estimations(self, cells: list[tuple[str, str]],
                        metric: str = "cpi", max_rounds: int = 2) -> dict:
        """Execute a batch of (machine, benchmark) estimation cells.

        Returns ``{(machine, benchmark): RunResult}``; execution is
        parallel across cells when ``max_workers`` is set.
        """
        specs = [self.estimation_spec(benchmark, machine, metric=metric,
                                      max_rounds=max_rounds)
                 for machine, benchmark in cells]
        results = self.session.run_batch(specs)
        return dict(zip(cells, results))


@lru_cache(maxsize=1)
def default_context() -> ExperimentContext:
    """Process-wide experiment context (shared caches across benchmarks)."""
    return ExperimentContext()


# ----------------------------------------------------------------------
# Table 3 — machine configurations
# ----------------------------------------------------------------------
def table3_configurations(ctx: ExperimentContext) -> dict:
    """Table 3: the 8-way and 16-way machine configurations."""
    rows = []
    eight = ctx.machine("8-way").describe()
    sixteen = ctx.machine("16-way").describe()
    for key in eight:
        rows.append((key, eight[key], sixteen[key]))
    report = format_table(
        ["Parameter", "8-way (baseline)", "16-way"], rows,
        title="Table 3: machine configurations (scaled)")
    return {"rows": rows, "report": report}


# ----------------------------------------------------------------------
# Figure 2 — coefficient of variation of CPI vs U
# ----------------------------------------------------------------------
def figure2_cv_curves(ctx: ExperimentContext, machine_name: str = "8-way",
                      metric: str = "cpi") -> dict:
    """Figure 2: V_CPI of every benchmark as a function of unit size U."""
    curves: dict[str, dict[int, float]] = {}
    for name in ctx.suite_names:
        reference = ctx.reference(name, machine_name)
        sizes = default_unit_sizes(reference)
        curves[name] = cv_versus_unit_size(reference, sizes, metric=metric)

    all_sizes = sorted({u for curve in curves.values() for u in curve})
    rows = []
    for name, curve in curves.items():
        rows.append([name] + [round(curve.get(u, float("nan")), 4)
                              for u in all_sizes])
    report = format_table(
        ["benchmark"] + [f"U={u}" for u in all_sizes], rows,
        title=f"Figure 2: coefficient of variation of {metric.upper()} vs "
              f"sampling unit size ({machine_name})")
    return {"curves": curves, "unit_sizes": all_sizes, "report": report}


# ----------------------------------------------------------------------
# Figure 3 — minimum measured instructions per confidence target
# ----------------------------------------------------------------------
#: Dynamic length used for "paper-scale" projections: a mid-sized SPEC2K
#: reference run (the paper's benchmarks span 2-547 billion instructions).
PAPER_SCALE_LENGTH = 50_000_000_000


def figure3_minimum_instructions(ctx: ExperimentContext,
                                 machine_names: tuple[str, ...] = ("8-way", "16-way"),
                                 ) -> dict:
    """Figure 3: minimum n·U to reach the standard confidence targets.

    For every benchmark the measured CV is used twice: once against the
    benchmark's own (scaled-down) population, and once projected onto a
    SPEC-length stream of ``PAPER_SCALE_LENGTH`` instructions — the
    latter is the quantity Figure 3 actually plots, and it shows the
    "well under 0.1% of the stream" result the paper reports.
    """
    from repro.core.stats import required_sample_size as _required_n

    per_benchmark: dict[tuple[str, str], dict] = {}
    paper_scale_fractions: dict[tuple[str, str], float] = {}
    headline = FIGURE3_TARGETS[1]    # ±3% at 99.7%
    rows = []
    for machine_name in machine_names:
        for name in ctx.suite_names:
            reference = ctx.reference(name, machine_name)
            targets = minimum_measured_instructions(
                reference, ctx.unit_size, FIGURE3_TARGETS)
            per_benchmark[(machine_name, name)] = targets
            cv = next(iter(targets.values()))["cv"]
            paper_population = PAPER_SCALE_LENGTH // ctx.unit_size
            paper_n = _required_n(cv, headline.epsilon, headline.confidence,
                                  population_size=paper_population)
            paper_fraction = paper_n * ctx.unit_size / PAPER_SCALE_LENGTH
            paper_scale_fractions[(machine_name, name)] = paper_fraction
            row = [machine_name, name, round(cv, 3)]
            for target in FIGURE3_TARGETS:
                info = targets[target]
                row.append(f"{int(info['measured_instructions']):,} "
                           f"({unsigned_percent(info['fraction_of_benchmark'])})")
            row.append(f"{paper_fraction:.5%}")
            rows.append(row)
    headers = (["machine", "benchmark", f"V@U={ctx.unit_size}"]
               + [t.label for t in FIGURE3_TARGETS]
               + [f"{headline.label} at SPEC length"])
    report = format_table(
        headers, rows,
        title="Figure 3: minimum measured instructions (and fraction of "
              "benchmark) per confidence target")
    return {"targets": per_benchmark,
            "paper_scale_fractions": paper_scale_fractions,
            "report": report}


# ----------------------------------------------------------------------
# Figure 4 — modeled SMARTS simulation rate vs W
# ----------------------------------------------------------------------
def figure4_speed_model(ctx: ExperimentContext,
                        benchmark_name: str = "gcc.syn") -> dict:
    """Figure 4: modeled simulation rate as a function of detailed warming W.

    Evaluated at paper scale (a gcc-sized benchmark with U = 1000 and
    n = 10,000 sampling units) with the paper's S_D values, plus one
    curve using this repository's measured rates.
    """
    paper_length = 46_900_000_000       # gcc-1 dynamic length (paper: ~47B)
    sample_size = 10_000
    unit_size = 1000
    warming_values = [0, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000,
                      1_000_000, 3_000_000, 10_000_000]

    curves: dict[str, list[tuple[int, float]]] = {}
    for label, s_d in (("S_D=1/60", PAPER_SD_TODAY), ("S_D=1/600", PAPER_SD_FUTURE)):
        rates = SimulatorRates.paper(s_d)
        curve = []
        for warming in warming_values:
            workload = SamplingWorkload(paper_length, sample_size, unit_size, warming)
            curve.append((warming, paper_rate(workload, rates,
                                              functional_warming=False)))
        curves[label] = curve

    # With functional warming the fast-forward rate drops to S_FW but the
    # rate is insensitive to W (bounded small); show the same sweep.
    rates = SimulatorRates.paper(PAPER_SD_TODAY)
    curves["S_FW=0.55 (functional warming)"] = [
        (warming, paper_rate(
            SamplingWorkload(paper_length, sample_size, unit_size,
                             min(warming, 2000)),
            rates, functional_warming=True))
        for warming in warming_values
    ]

    # Our measured rates on the calibration benchmark.
    benchmark = ctx.benchmark(benchmark_name)
    measured = measure_rates(benchmark.program, ctx.machine("8-way"),
                             instructions=30_000 if ctx.fast else 60_000)
    our_rates = measured.to_simulator_rates()
    length = ctx.benchmark_length(benchmark_name)
    our_sample = max(1, ctx.n_init)
    curves["measured rates (this repo, functional warming)"] = [
        (warming, paper_rate(
            SamplingWorkload(length, our_sample, ctx.unit_size,
                             min(warming, ctx.warming(ctx.machine("8-way")))),
            our_rates, functional_warming=True))
        for warming in warming_values
    ]

    rows = []
    for warming in warming_values:
        row = [warming]
        for label in curves:
            value = dict(curves[label])[warming]
            row.append(round(value, 4))
        rows.append(row)
    report = format_table(
        ["W"] + list(curves), rows,
        title="Figure 4: modeled SMARTS simulation rate (normalized to "
              "functional simulation) vs detailed warming W")
    return {"curves": curves, "measured_rates": measured, "report": report}


# ----------------------------------------------------------------------
# Figure 5 — optimal sampling unit size
# ----------------------------------------------------------------------
def figure5_optimal_unit_size(ctx: ExperimentContext,
                              benchmark_names: list[str] | None = None,
                              machine_name: str = "8-way") -> dict:
    """Figure 5: detail-simulated fraction vs U for several W values."""
    if benchmark_names is None:
        candidates = ["gcc.syn", "bzip2.syn", "mesa.syn", "mcf.syn"]
        benchmark_names = [n for n in candidates if n in ctx.suite_names] or \
            ctx.subset(4)
    machine = ctx.machine(machine_name)
    base_warming = ctx.warming(machine)
    warming_values = [0, base_warming, 3 * base_warming]

    results: dict[str, dict[int, dict[int, float]]] = {}
    optima: dict[str, dict[int, int]] = {}
    for name in benchmark_names:
        reference = ctx.reference(name, machine_name)
        sizes = default_unit_sizes(reference)
        cv_curve = cv_versus_unit_size(reference, sizes)
        per_warming: dict[int, dict[int, float]] = {}
        best_per_warming: dict[int, int] = {}
        for warming in warming_values:
            fractions: dict[int, float] = {}
            for unit_size, cv in cv_curve.items():
                population = reference.instructions // unit_size
                if population < 2:
                    continue
                n = required_sample_size(cv, ctx.epsilon, ctx.confidence,
                                         population_size=population)
                # The fraction cannot exceed full detailed simulation of
                # the whole stream (at paper-scale populations it never
                # comes close; at our reduced scale high-CV benchmarks
                # saturate).
                fractions[unit_size] = min(
                    1.0, n * (unit_size + warming) / reference.instructions)
            per_warming[warming] = fractions
            best_per_warming[warming] = min(fractions, key=fractions.get)
        results[name] = per_warming
        optima[name] = best_per_warming

    rows = []
    for name in benchmark_names:
        for warming in warming_values:
            fractions = results[name][warming]
            best = optima[name][warming]
            rows.append([
                name, warming, best,
                unsigned_percent(fractions[best]),
                unsigned_percent(fractions.get(ctx.unit_size,
                                               min(fractions.values()))),
            ])
    report = format_table(
        ["benchmark", "W", "optimal U", "fraction at optimal U",
         f"fraction at U={ctx.unit_size}"],
        rows,
        title="Figure 5: optimal sampling unit size vs detailed warming")
    return {"fractions": results, "optima": optima, "report": report}


# ----------------------------------------------------------------------
# Table 4 — detailed warming requirements (no functional warming)
# ----------------------------------------------------------------------
def table4_detailed_warming(ctx: ExperimentContext,
                            machine_name: str = "8-way",
                            benchmark_names: list[str] | None = None,
                            warming_values: list[int] | None = None,
                            bias_threshold: float = 0.015) -> dict:
    """Table 4: W needed (without functional warming) for <1.5% bias."""
    machine = ctx.machine(machine_name)
    if benchmark_names is None:
        benchmark_names = ctx.subset(6 if ctx.fast else len(ctx.suite_names))
    if warming_values is None:
        base = ctx.warming(machine)
        warming_values = [0, base // 2, base, 3 * base, 8 * base]
        if ctx.fast:
            warming_values = [0, base, 5 * base]

    requirements: dict[str, int | None] = {}
    biases: dict[str, dict[int, float]] = {}
    for name in benchmark_names:
        benchmark = ctx.benchmark(name)
        reference = ctx.reference(name, machine_name)
        required, bias_curve = required_detailed_warming(
            benchmark.program, machine, reference,
            unit_size=ctx.unit_size,
            # Bias is measured against per-unit ground truth, so a modest
            # sample per phase suffices and keeps the W sweep affordable.
            target_sample_size=max(100, ctx.n_init // 3),
            warming_values=warming_values,
            bias_threshold=bias_threshold,
            phases=2,
        )
        requirements[name] = required
        biases[name] = bias_curve

    rows = []
    for name in benchmark_names:
        required = requirements[name]
        label = str(required) if required is not None else f"> {max(warming_values)}"
        curve = "  ".join(f"W={w}:{percent(b, 1)}" for w, b in biases[name].items())
        rows.append([name, label, curve])
    report = format_table(
        ["benchmark", f"W for |bias| < {bias_threshold:.1%}", "measured bias by W"],
        rows,
        title=f"Table 4: detailed warming requirements without functional "
              f"warming ({machine_name})")
    return {"requirements": requirements, "biases": biases,
            "warming_values": warming_values, "report": report}


# ----------------------------------------------------------------------
# Table 5 — residual bias with functional warming
# ----------------------------------------------------------------------
def table5_functional_warming_bias(ctx: ExperimentContext,
                                   machine_names: tuple[str, ...] = ("8-way", "16-way"),
                                   phases: int | None = None) -> dict:
    """Table 5: CPI bias with functional warming and minimal detailed warming."""
    if phases is None:
        phases = 2
    biases: dict[tuple[str, str], float] = {}
    for machine_name in machine_names:
        machine = ctx.machine(machine_name)
        for name in ctx.suite_names:
            benchmark = ctx.benchmark(name)
            reference = ctx.reference(name, machine_name)
            measurement = measure_bias(
                benchmark.program, machine, reference,
                unit_size=ctx.unit_size,
                target_sample_size=max(150, ctx.n_init // 2),
                detailed_warming=ctx.warming(machine),
                functional_warming=True,
                phases=phases,
            )
            biases[(machine_name, name)] = measurement.bias

    rows = []
    for machine_name in machine_names:
        machine_biases = {n: b for (m, n), b in biases.items() if m == machine_name}
        ordered = sorted(machine_biases.items(), key=lambda kv: -abs(kv[1]))
        for name, bias in ordered:
            rows.append([machine_name, name, percent(bias)])
        average = np.mean([abs(b) for b in machine_biases.values()])
        rows.append([machine_name, "average |bias|", unsigned_percent(float(average))])
    report = format_table(
        ["machine", "benchmark", "CPI bias"], rows,
        title="Table 5: CPI bias with functional warming and minimal "
              "detailed warming")
    return {"biases": biases, "report": report}


# ----------------------------------------------------------------------
# Figures 6 and 7 — CPI / EPI estimation with n_init (and n_tuned)
# ----------------------------------------------------------------------
def figure6_cpi_estimates(ctx: ExperimentContext,
                          machine_names: tuple[str, ...] = ("8-way", "16-way"),
                          metric: str = "cpi") -> dict:
    """Figure 6 (CPI) / Figure 7 (EPI): estimation error vs confidence interval.

    The suite sweep runs through the :mod:`repro.api` session layer: one
    RunSpec per (machine, benchmark) cell, batch-executed (in parallel
    when ``ctx.max_workers`` is set) with on-disk result caching.
    """
    cells = [(machine_name, name)
             for machine_name in machine_names
             for name in ctx.suite_names]
    results = ctx.run_estimations(cells, metric=metric, max_rounds=2)

    entries: dict[tuple[str, str], dict] = {}
    for (machine_name, name), result in results.items():
        reference = ctx.reference(name, machine_name)
        true_value = reference.cpi if metric == "cpi" else reference.epi
        initial = result.initial_estimate
        entries[(machine_name, name)] = {
            "true": true_value,
            "initial_estimate": initial["mean"],
            "initial_ci": initial["ci"],
            "initial_error": (initial["mean"] - true_value) / true_value,
            "final_estimate": result.estimate_mean,
            "final_ci": result.confidence_interval,
            "final_error": (result.estimate_mean - true_value) / true_value,
            "rounds": result.rounds,
            "n_final": result.sample_size,
            "tuned_n": (result.tuned_sample_sizes[-1]
                        if result.tuned_sample_sizes else None),
            "measured_instructions": result.instructions_measured,
            "detailed_fraction": result.detailed_fraction,
            "target_met": result.target_met,
        }

    rows = []
    for (machine_name, name), entry in sorted(
            entries.items(), key=lambda kv: -abs(kv[1]["initial_ci"])):
        rows.append([
            machine_name, name,
            round(entry["true"], 4),
            round(entry["initial_estimate"], 4),
            percent(entry["initial_error"]),
            unsigned_percent(entry["initial_ci"]),
            entry["rounds"],
            entry["n_final"],
            percent(entry["final_error"]),
            unsigned_percent(entry["final_ci"]),
        ])
    label = metric.upper()
    report = format_table(
        ["machine", "benchmark", f"true {label}", f"{label} (n_init)",
         "error (n_init)", "CI (n_init)", "rounds", "n final",
         "error (final)", "CI (final)"],
        rows,
        title=f"Figure {'6' if metric == 'cpi' else '7'}: {label} estimation "
              f"with n_init={ctx.n_init}, U={ctx.unit_size} "
              f"(99.7% confidence intervals)")
    return {"entries": entries, "report": report}


def figure7_epi_estimates(ctx: ExperimentContext,
                          machine_names: tuple[str, ...] = ("8-way",)) -> dict:
    """Figure 7: EPI estimation (8-way) with n_init."""
    return figure6_cpi_estimates(ctx, machine_names=machine_names, metric="epi")


# ----------------------------------------------------------------------
# Table 6 — runtimes of functional / detailed / SMARTS simulation
# ----------------------------------------------------------------------
def table6_runtimes(ctx: ExperimentContext, machine_name: str = "8-way") -> dict:
    """Table 6: projected runtimes and speedups, paper-scale and measured."""
    machine = ctx.machine(machine_name)
    calibration = ctx.benchmark(ctx.subset(1)[0])
    measured = measure_rates(calibration.program, machine,
                             instructions=30_000 if ctx.fast else 60_000)
    our_rates = measured.to_simulator_rates()
    paper_rates = SimulatorRates.paper(PAPER_SD_TODAY)

    rows = []
    details: dict[str, dict] = {}
    for name in ctx.suite_names:
        length = ctx.benchmark_length(name)
        reference = ctx.reference(name, machine_name)
        workload = SamplingWorkload(
            benchmark_length=length,
            sample_size=min(ctx.n_init, length // ctx.unit_size),
            unit_size=ctx.unit_size,
            detailed_warming=ctx.warming(machine),
        )
        functional_s = functional_runtime_seconds(length, our_rates)
        detailed_s = detailed_runtime_seconds(length, our_rates)
        smarts_s = runtime_seconds(workload, our_rates, functional_warming=True)
        speedup = speedup_over_detailed(workload, our_rates, functional_warming=True)

        # Paper-scale projection: same benchmark "shape" blown up to a
        # SPEC-sized stream with the paper's canonical parameters.
        paper_length = length * 100_000
        paper_workload = SamplingWorkload(
            benchmark_length=paper_length,
            sample_size=10_000,
            unit_size=1000,
            detailed_warming=2000 if machine_name == "8-way" else 4000,
        )
        paper_speedup = speedup_over_detailed(paper_workload, paper_rates,
                                              functional_warming=True)
        details[name] = {
            "functional_seconds": functional_s,
            "detailed_seconds": detailed_s,
            "smarts_seconds": smarts_s,
            "measured_detailed_seconds": reference.seconds,
            "speedup": speedup,
            "paper_scale_speedup": paper_speedup,
        }
        rows.append([
            name,
            round(detailed_s, 1),
            round(functional_s, 1),
            round(smarts_s, 1),
            round(speedup, 1),
            round(paper_speedup, 1),
        ])

    average_speedup = float(np.mean([d["speedup"] for d in details.values()]))
    paper_average = float(np.mean([d["paper_scale_speedup"] for d in details.values()]))
    report = format_table(
        ["benchmark", "detailed (s)", "functional (s)", "SMARTS (s)",
         "speedup (this repo)", "speedup (paper-scale model)"],
        rows,
        title=f"Table 6: runtimes for SMARTS compared to detailed and "
              f"functional simulation ({machine_name}); measured rates: "
              f"S_D={measured.s_detailed:.3f}, S_FW={measured.s_warming:.3f}")

    checkpoint = table6_checkpoint_comparison(ctx, machine_name)
    report = report + "\n\n" + checkpoint.pop("report")
    return {"details": details, "measured_rates": measured,
            "average_speedup": average_speedup,
            "paper_scale_average_speedup": paper_average,
            "checkpoint": checkpoint, "report": report}


def table6_checkpoint_comparison(ctx: ExperimentContext,
                                 machine_name: str = "8-way") -> dict:
    """Checkpointed column of Table 6: measured, count-based.

    For a behaviourally diverse subset, one systematic sampling run is
    executed twice — serial functional warming vs. checkpointed restore
    — and compared on the *instruction counts* each mode executed (the
    container is single-core, so wall-clock speedups are never
    asserted).  The per-unit measurements of the two runs must be
    bit-identical; the checkpointed run merely replaces most functional
    warming work with snapshot restores.
    """
    from repro.checkpoint import CheckpointStore
    from repro.core.sampling import SystematicSamplingPlan
    from repro.core.smarts import run_smarts

    machine = ctx.machine(machine_name)
    # Go through the store (honouring ctx.use_cache like the reference
    # traces do) so repeated table6 runs pay the warming build only once.
    store = CheckpointStore(enabled=ctx.use_cache)
    rows = []
    details: dict[str, dict] = {}
    for name in ctx.subset(2 if ctx.fast else 3):
        benchmark = ctx.benchmark(name)
        length = ctx.benchmark_length(name)
        plan = SystematicSamplingPlan.for_sample_size(
            benchmark_length=length,
            unit_size=ctx.unit_size,
            target_sample_size=min(ctx.n_init, length // ctx.unit_size),
            detailed_warming=ctx.warming(machine),
        )
        serial = run_smarts(benchmark.program, machine, plan, length,
                            measure_energy=False)
        ckpt = store.get_or_build(benchmark.program, machine, ctx.unit_size)
        restored = run_smarts(benchmark.program, machine, plan, length,
                              measure_energy=False, checkpoints=ckpt)
        ff_serial = serial.instructions_fastforwarded
        ff_ckpt = restored.instructions_fastforwarded
        reduction = 1.0 - ff_ckpt / ff_serial if ff_serial else 0.0
        details[name] = {
            "ff_serial": ff_serial,
            "ff_checkpointed": ff_ckpt,
            "instructions_restored": restored.instructions_restored,
            "checkpoint_restores": restored.checkpoint_restores,
            "warming_reduction": reduction,
            "identical_units": serial.units == restored.units,
        }
        rows.append([
            name,
            f"{ff_serial:,}",
            f"{ff_ckpt:,}",
            f"{restored.instructions_restored:,}",
            percent(reduction),
            "yes" if details[name]["identical_units"] else "NO",
        ])
    average = float(np.mean([d["warming_reduction"] for d in details.values()]))
    report = format_table(
        ["benchmark", "warmed instr. (serial)", "warmed instr. (ckpt)",
         "restored instr.", "warming reduction", "bit-identical"],
        rows,
        title=f"Table 6 (checkpointed column): functional-warming "
              f"instructions with and without checkpoint restore "
              f"({machine_name})")
    return {"details": details, "average_warming_reduction": average,
            "report": report}


# ----------------------------------------------------------------------
# Figure 8 — comparison against SimPoint
# ----------------------------------------------------------------------
def figure8_simpoint_comparison(ctx: ExperimentContext,
                                machine_name: str = "8-way",
                                benchmark_names: list[str] | None = None,
                                interval_size: int | None = None,
                                max_clusters: int = 8) -> dict:
    """Figure 8: per-benchmark CPI error of SimPoint vs SMARTS."""
    machine = ctx.machine(machine_name)
    if benchmark_names is None:
        benchmark_names = ctx.subset(6 if ctx.fast else len(ctx.suite_names))
    if interval_size is None:
        # SimPoint uses very large units (100M at SPEC scale); scaled to
        # roughly 1/100 of a benchmark here.
        interval_size = max(1000, ctx.unit_size * 50)

    smarts_results = ctx.run_estimations(
        [(machine_name, name) for name in benchmark_names],
        metric="cpi", max_rounds=1)

    entries: dict[str, dict] = {}
    for name in benchmark_names:
        benchmark = ctx.benchmark(name)
        reference = ctx.reference(name, machine_name)
        true_cpi = reference.cpi

        simpoint = run_simpoint(
            benchmark.program, machine, interval_size=interval_size,
            max_clusters=max_clusters, measure_energy=False)
        smarts = smarts_results[(machine_name, name)]
        entries[name] = {
            "true_cpi": true_cpi,
            "simpoint_cpi": simpoint.cpi,
            "simpoint_error": (simpoint.cpi - true_cpi) / true_cpi,
            "simpoint_clusters": simpoint.num_clusters,
            "smarts_cpi": smarts.estimate_mean,
            "smarts_error": (smarts.estimate_mean - true_cpi) / true_cpi,
            "smarts_ci": smarts.confidence_interval,
        }

    rows = []
    for name, entry in sorted(entries.items(),
                              key=lambda kv: -abs(kv[1]["simpoint_error"])):
        rows.append([
            name,
            round(entry["true_cpi"], 4),
            round(entry["simpoint_cpi"], 4),
            percent(entry["simpoint_error"]),
            entry["simpoint_clusters"],
            round(entry["smarts_cpi"], 4),
            percent(entry["smarts_error"]),
            unsigned_percent(entry["smarts_ci"]),
        ])
    simpoint_avg = float(np.mean([abs(e["simpoint_error"]) for e in entries.values()]))
    smarts_avg = float(np.mean([abs(e["smarts_error"]) for e in entries.values()]))
    report = format_table(
        ["benchmark", "true CPI", "SimPoint CPI", "SimPoint error", "clusters",
         "SMARTS CPI", "SMARTS error", "SMARTS CI"],
        rows,
        title=f"Figure 8: SimPoint vs SMARTS CPI error ({machine_name}); "
              f"mean |error|: SimPoint {simpoint_avg:.2%}, SMARTS {smarts_avg:.2%}")
    return {"entries": entries, "simpoint_mean_abs_error": simpoint_avg,
            "smarts_mean_abs_error": smarts_avg, "report": report}
