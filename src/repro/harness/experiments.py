"""Deprecated per-figure entry points: thin shims over `repro.api` studies.

Every experiment of the paper's evaluation (Tables 3-6, Figures 2-8) is
now a registered :class:`~repro.api.study.Study` executed through
:meth:`repro.api.Session.run_study` (see :mod:`repro.api.studies` for
the definitions and ``API.md`` for the study layer).  The functions in
this module keep the pre-study call shapes working — same signatures,
same returned data dictionaries, byte-identical reports — by delegating
to the registry through the context's session.  New code should call
``Session.run_study("fig6")`` (or the ``repro-smarts study`` CLI)
directly.

``ExperimentContext`` is an alias of :class:`repro.api.study.StudyContext`
(the class simply moved); ``default_context`` is the same process-wide
cached instance the study layer uses.
"""

from __future__ import annotations

from repro.api.study import StudyContext as ExperimentContext
from repro.api.study import default_context

__all__ = [
    "ExperimentContext",
    "default_context",
    "figure2_cv_curves",
    "figure3_minimum_instructions",
    "figure4_speed_model",
    "figure5_optimal_unit_size",
    "figure6_cpi_estimates",
    "figure7_epi_estimates",
    "figure8_simpoint_comparison",
    "table3_configurations",
    "table4_detailed_warming",
    "table5_functional_warming_bias",
    "table6_checkpoint_comparison",
    "table6_runtimes",
]


def _run(name: str, ctx: ExperimentContext, **params) -> dict:
    """Delegate one legacy entry point to its registered study."""
    return ctx.session.run_study(name, ctx=ctx, params=params).data


def table3_configurations(ctx: ExperimentContext) -> dict:
    """Deprecated: use ``Session.run_study("table3")``."""
    return _run("table3", ctx)


def figure2_cv_curves(ctx: ExperimentContext, machine_name: str = "8-way",
                      metric: str = "cpi") -> dict:
    """Deprecated: use ``Session.run_study("fig2")``."""
    return _run("fig2", ctx, machine_name=machine_name, metric=metric)


def figure3_minimum_instructions(ctx: ExperimentContext,
                                 machine_names: tuple[str, ...] = ("8-way", "16-way"),
                                 ) -> dict:
    """Deprecated: use ``Session.run_study("fig3")``."""
    return _run("fig3", ctx, machine_names=machine_names)


def figure4_speed_model(ctx: ExperimentContext,
                        benchmark_name: str = "gcc.syn") -> dict:
    """Deprecated: use ``Session.run_study("fig4")``."""
    return _run("fig4", ctx, benchmark_name=benchmark_name)


def figure5_optimal_unit_size(ctx: ExperimentContext,
                              benchmark_names: list[str] | None = None,
                              machine_name: str = "8-way") -> dict:
    """Deprecated: use ``Session.run_study("fig5")``."""
    return _run("fig5", ctx, benchmark_names=benchmark_names,
                machine_name=machine_name)


def table4_detailed_warming(ctx: ExperimentContext,
                            machine_name: str = "8-way",
                            benchmark_names: list[str] | None = None,
                            warming_values: list[int] | None = None,
                            bias_threshold: float = 0.015) -> dict:
    """Deprecated: use ``Session.run_study("table4")``."""
    return _run("table4", ctx, machine_name=machine_name,
                benchmark_names=benchmark_names,
                warming_values=warming_values,
                bias_threshold=bias_threshold)


def table5_functional_warming_bias(ctx: ExperimentContext,
                                   machine_names: tuple[str, ...] = ("8-way", "16-way"),
                                   phases: int | None = None) -> dict:
    """Deprecated: use ``Session.run_study("table5")``."""
    return _run("table5", ctx, machine_names=machine_names, phases=phases)


def figure6_cpi_estimates(ctx: ExperimentContext,
                          machine_names: tuple[str, ...] = ("8-way", "16-way"),
                          metric: str = "cpi") -> dict:
    """Deprecated: use ``Session.run_study("fig6")``."""
    if metric == "epi":
        # The EPI variant is its own study (fig7); keep the legacy
        # metric switch working.
        return _run("fig7", ctx, machine_names=machine_names)
    return _run("fig6", ctx, machine_names=machine_names, metric=metric)


def figure7_epi_estimates(ctx: ExperimentContext,
                          machine_names: tuple[str, ...] = ("8-way",)) -> dict:
    """Deprecated: use ``Session.run_study("fig7")``."""
    return _run("fig7", ctx, machine_names=machine_names)


def table6_runtimes(ctx: ExperimentContext, machine_name: str = "8-way") -> dict:
    """Deprecated: use ``Session.run_study("table6")``."""
    return _run("table6", ctx, machine_name=machine_name)


def table6_checkpoint_comparison(ctx: ExperimentContext,
                                 machine_name: str = "8-way") -> dict:
    """Deprecated: use :func:`repro.api.studies.table6_checkpoint_comparison`."""
    from repro.api.studies import table6_checkpoint_comparison as impl

    return impl(ctx, machine_name=machine_name)


def figure8_simpoint_comparison(ctx: ExperimentContext,
                                machine_name: str = "8-way",
                                benchmark_names: list[str] | None = None,
                                interval_size: int | None = None,
                                max_clusters: int = 8) -> dict:
    """Deprecated: use ``Session.run_study("fig8")``."""
    return _run("fig8", ctx, machine_name=machine_name,
                benchmark_names=benchmark_names,
                interval_size=interval_size, max_clusters=max_clusters)
