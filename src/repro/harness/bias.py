"""Warming-bias measurement (Tables 4 and 5 of the paper).

Bias is the systematic component of estimation error caused by incorrect
microarchitectural state at the start of each measured sampling unit.
Following Section 4.3, the true bias (an average over all k possible
systematic sample phases) is approximated by averaging the signed errors
of a few evenly distributed phases ``j``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.machines import MachineConfig
from repro.core.estimates import ReferenceResult, SmartsRunResult
from repro.core.sampling import SystematicSamplingPlan, offsets_for_bias_estimation
from repro.core.smarts import run_smarts
from repro.isa.program import Program


@dataclass
class BiasMeasurement:
    """Signed estimation bias of a SMARTS configuration for one benchmark.

    Bias is isolated from sampling error by comparing, for each sample
    phase j, the sampled measurement of the selected units against the
    *true* mean of exactly those units taken from the full-stream
    reference trace.  (The paper, lacking cheap per-unit ground truth,
    compares against the full-stream mean and relies on a large n to make
    sampling error negligible; with the reference traces in hand the
    per-unit comparison measures the same quantity without needing a huge
    sample.)
    """

    benchmark: str
    machine: str
    unit_size: int
    interval: int
    detailed_warming: int
    functional_warming: bool
    true_value: float
    phase_errors: list[float] = field(default_factory=list)
    phase_total_errors: list[float] = field(default_factory=list)
    runs: list[SmartsRunResult] = field(default_factory=list)

    @property
    def bias(self) -> float:
        """Average signed measurement bias over the sample phases."""
        if not self.phase_errors:
            return 0.0
        return sum(self.phase_errors) / len(self.phase_errors)

    @property
    def total_error(self) -> float:
        """Average signed error against the full-stream mean (bias plus
        residual sampling error)."""
        if not self.phase_total_errors:
            return 0.0
        return sum(self.phase_total_errors) / len(self.phase_total_errors)

    @property
    def worst_phase_error(self) -> float:
        if not self.phase_errors:
            return 0.0
        return max(self.phase_errors, key=abs)


def measure_bias(
    program: Program,
    machine: MachineConfig,
    reference: ReferenceResult,
    unit_size: int,
    target_sample_size: int,
    detailed_warming: int,
    functional_warming: bool,
    phases: int = 5,
    metric: str = "cpi",
) -> BiasMeasurement:
    """Measure warming-induced bias for one (W, warming-mode) setting.

    Runs SMARTS once per sample phase j (evenly distributed over the
    sampling interval, as in Section 4.3).  For every phase the sampled
    estimate is compared against the true mean of the same sampling units
    computed from the reference trace, and the signed errors are averaged
    into the bias.
    """
    from repro.harness.reference import unit_cpi_trace, unit_epi_trace

    benchmark_length = reference.instructions
    base_plan = SystematicSamplingPlan.for_sample_size(
        benchmark_length=benchmark_length,
        unit_size=unit_size,
        target_sample_size=target_sample_size,
        detailed_warming=detailed_warming,
        functional_warming=functional_warming,
    )
    true_value = reference.cpi if metric == "cpi" else reference.epi
    trace_fn = unit_cpi_trace if metric == "cpi" else unit_epi_trace
    unit_trace = trace_fn(reference, unit_size)

    measurement = BiasMeasurement(
        benchmark=program.name,
        machine=machine.name,
        unit_size=unit_size,
        interval=base_plan.interval,
        detailed_warming=detailed_warming,
        functional_warming=functional_warming,
        true_value=true_value,
    )

    for offset in offsets_for_bias_estimation(base_plan.interval, phases):
        plan = SystematicSamplingPlan(
            unit_size=unit_size,
            interval=base_plan.interval,
            offset=offset,
            detailed_warming=detailed_warming,
            functional_warming=functional_warming,
        )
        run = run_smarts(program, machine, plan, benchmark_length,
                         measure_energy=(metric == "epi"))
        # Compare only whole units that exist in the reference trace.
        sampled = [(u.index, u.cpi if metric == "cpi" else u.epi)
                   for u in run.units
                   if u.instructions == unit_size and u.index < len(unit_trace)]
        if not sampled:
            continue
        measured_mean = sum(value for _, value in sampled) / len(sampled)
        true_same_units = float(
            sum(unit_trace[idx] for idx, _ in sampled) / len(sampled))
        if true_same_units:
            measurement.phase_errors.append(
                (measured_mean - true_same_units) / true_same_units)
        if true_value:
            estimate = run.cpi.mean if metric == "cpi" else run.epi.mean
            measurement.phase_total_errors.append(
                (estimate - true_value) / true_value)
        measurement.runs.append(run)

    return measurement


def required_detailed_warming(
    program: Program,
    machine: MachineConfig,
    reference: ReferenceResult,
    unit_size: int,
    target_sample_size: int,
    warming_values: list[int],
    bias_threshold: float = 0.015,
    phases: int = 3,
) -> tuple[int | None, dict[int, float]]:
    """Smallest W (detailed warming only) keeping |bias| under a threshold.

    This is the Table 4 experiment: without functional warming, sweep W
    upward until the measured bias magnitude drops below
    ``bias_threshold`` (the paper uses 1.5%).  Returns ``(W, biases)``
    where ``W`` is ``None`` when even the largest tested value fails —
    the paper's "W > 500,000" category.
    """
    biases: dict[int, float] = {}
    for warming in sorted(warming_values):
        measurement = measure_bias(
            program, machine, reference,
            unit_size=unit_size,
            target_sample_size=target_sample_size,
            detailed_warming=warming,
            functional_warming=False,
            phases=phases,
        )
        biases[warming] = measurement.bias
        if abs(measurement.bias) < bias_threshold:
            return warming, biases
    return None, biases
