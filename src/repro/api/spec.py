"""Declarative run contracts: RunSpec in, RunResult out.

A :class:`RunSpec` fully describes one sampled-simulation run —
benchmark, machine, strategy, scale, metric, seed, and confidence
target — and nothing else; executing the same spec twice produces the
same estimates.  Both spec and result round-trip losslessly through
``to_dict`` / ``from_dict`` (plain-JSON payloads), which gives the
executor its cache key (:meth:`RunSpec.key`) and on-disk cache format
for free.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace

from repro.core.estimates import UnitRecord
from repro.core.stats import CONFIDENCE_997, DEFAULT_EPSILON
from repro.api.strategies import (
    SamplingStrategy,
    StrategyOutcome,
    SystematicStrategy,
    strategy_from_dict,
)


@dataclass(frozen=True)
class RunSpec:
    """Declarative description of one sampled-simulation run.

    Args:
        benchmark: Suite benchmark name (e.g. ``"gcc.syn"``), or
            ``"micro.syn"`` for the tiny test benchmark.
        machine: Machine configuration name (``"8-way"`` / ``"16-way"``,
            resolved to the scaled Table 3 configurations).
        strategy: The sampling strategy to run.
        scale: Benchmark length scale factor.
        metric: ``"cpi"`` or ``"epi"``.
        seed: Seed threaded into seed-consuming strategies (random unit
            selection, BBV clustering); systematic sampling ignores it.
        epsilon: Target relative confidence-interval half-width.
        confidence: Target confidence level.
        benchmark_length: Optional explicit dynamic instruction count;
            measured with a functional pass when omitted.
        checkpoints: ``"off"`` (default) or ``"auto"``.  Auto mode loads
            — building once if needed — the warm-state checkpoint set
            for this benchmark/machine/unit-size and restores at each
            sampling unit instead of fast-forwarding.  Estimates are
            bit-identical either way; only the fast-forward work
            bookkeeping changes (see ``RunResult.estimates_dict``).
    """

    benchmark: str
    machine: str = "8-way"
    strategy: SamplingStrategy = field(default_factory=SystematicStrategy)
    scale: float = 0.25
    metric: str = "cpi"
    seed: int = 0
    epsilon: float = DEFAULT_EPSILON
    confidence: float = CONFIDENCE_997
    benchmark_length: int | None = None
    checkpoints: str = "off"

    def __post_init__(self) -> None:
        if self.metric not in ("cpi", "epi"):
            raise ValueError("metric must be 'cpi' or 'epi'")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.checkpoints not in ("off", "auto"):
            raise ValueError("checkpoints must be 'off' or 'auto'")
        if isinstance(self.strategy, dict):
            object.__setattr__(self, "strategy",
                               strategy_from_dict(self.strategy))

    # ------------------------------------------------------------------
    # Serialization / identity
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "machine": self.machine,
            "strategy": self.strategy.to_dict(),
            "scale": self.scale,
            "metric": self.metric,
            "seed": self.seed,
            "epsilon": self.epsilon,
            "confidence": self.confidence,
            "benchmark_length": self.benchmark_length,
            "checkpoints": self.checkpoints,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        data = dict(data)
        data["strategy"] = strategy_from_dict(data["strategy"])
        return cls(**data)

    def key(self) -> str:
        """Stable content hash identifying this spec (cache key)."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def with_(self, **changes) -> "RunSpec":
        """A copy of this spec with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class RunResult:
    """Everything one executed RunSpec produced.

    ``estimate_mean`` / ``estimate_cv`` / ``confidence_interval`` always
    describe the spec's requested metric over the *final* sampling run;
    ``round_estimates`` keeps the per-round view (the SMARTS procedure
    runs up to two rounds), and ``units`` the raw per-unit measurements
    of the final run.
    """

    spec: RunSpec
    estimate_mean: float
    estimate_cv: float
    confidence_interval: float
    target_met: bool
    sample_size: int
    population_size: int
    benchmark_length: int
    rounds: int
    round_estimates: list[dict] = field(default_factory=list)
    tuned_sample_sizes: list[int] = field(default_factory=list)
    instructions_measured: int = 0
    instructions_detailed_warming: int = 0
    instructions_fastforwarded: int = 0
    instructions_restored: int = 0
    checkpoint_restores: int = 0
    detailed_fraction: float = 0.0
    wall_seconds: float = 0.0
    units: list[UnitRecord] = field(default_factory=list)
    #: Strategy-specific extras (e.g. phase allocation for stratified).
    strategy_info: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction from a strategy outcome
    # ------------------------------------------------------------------
    @classmethod
    def from_outcome(cls, spec: RunSpec, outcome: StrategyOutcome,
                     wall_seconds: float | None = None) -> "RunResult":
        rounds = []
        for run in outcome.runs:
            estimate = run.cpi if spec.metric == "cpi" else run.epi
            rounds.append({
                "sample_size": run.sample_size,
                "mean": estimate.mean,
                "cv": estimate.coefficient_of_variation,
                "ci": estimate.confidence_interval(spec.confidence),
            })
        final = outcome.final_run
        final_round = rounds[-1]
        if wall_seconds is None:
            wall_seconds = sum(run.wall_seconds for run in outcome.runs)
        return cls(
            spec=spec,
            estimate_mean=final_round["mean"],
            estimate_cv=final_round["cv"],
            confidence_interval=final_round["ci"],
            target_met=final_round["ci"] <= spec.epsilon,
            sample_size=final.sample_size,
            population_size=final.population_size,
            benchmark_length=final.benchmark_length,
            rounds=len(outcome.runs),
            round_estimates=rounds,
            tuned_sample_sizes=list(outcome.tuned_sample_sizes),
            instructions_measured=sum(
                run.instructions_measured for run in outcome.runs),
            instructions_detailed_warming=sum(
                run.instructions_detailed_warming for run in outcome.runs),
            instructions_fastforwarded=sum(
                run.instructions_fastforwarded for run in outcome.runs),
            instructions_restored=sum(
                run.instructions_restored for run in outcome.runs),
            checkpoint_restores=sum(
                run.checkpoint_restores for run in outcome.runs),
            detailed_fraction=final.detailed_fraction,
            wall_seconds=wall_seconds,
            units=list(final.units),
            strategy_info=dict(outcome.info),
        )

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------
    @property
    def initial_estimate(self) -> dict:
        """The first round's estimate summary."""
        return self.round_estimates[0]

    def summary(self) -> dict:
        """Compact flat dictionary for tables and quick inspection."""
        return {
            "benchmark": self.spec.benchmark,
            "machine": self.spec.machine,
            "strategy": self.spec.strategy.name,
            "metric": self.spec.metric,
            "estimate": self.estimate_mean,
            "cv": self.estimate_cv,
            "ci": self.confidence_interval,
            "target_met": self.target_met,
            "n": self.sample_size,
            "rounds": self.rounds,
            "measured_instructions": self.instructions_measured,
            "detailed_fraction": self.detailed_fraction,
            "checkpoint_restores": self.checkpoint_restores,
            "wall_seconds": self.wall_seconds,
        }

    def estimates_dict(self) -> dict:
        """The estimate-determining payload, for equivalence checks.

        This is :meth:`to_dict` minus the fields that describe *how much
        work* the run performed rather than *what it estimated*: wall
        time, fast-forwarded/restored instruction counts, restore
        counts, and the spec's ``checkpoints`` mode.  A checkpointed run
        and a serial run of the same spec are bit-identical under this
        view — per-unit cycle counts included — which is the correctness
        contract of the checkpoint subsystem.
        """
        payload = self.to_dict()
        for key in ("wall_seconds", "instructions_fastforwarded",
                    "instructions_restored", "checkpoint_restores"):
            payload.pop(key)
        payload["spec"].pop("checkpoints")
        return payload

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "estimate_mean": self.estimate_mean,
            "estimate_cv": self.estimate_cv,
            "confidence_interval": self.confidence_interval,
            "target_met": self.target_met,
            "sample_size": self.sample_size,
            "population_size": self.population_size,
            "benchmark_length": self.benchmark_length,
            "rounds": self.rounds,
            "round_estimates": self.round_estimates,
            "tuned_sample_sizes": self.tuned_sample_sizes,
            "instructions_measured": self.instructions_measured,
            "instructions_detailed_warming": self.instructions_detailed_warming,
            "instructions_fastforwarded": self.instructions_fastforwarded,
            "instructions_restored": self.instructions_restored,
            "checkpoint_restores": self.checkpoint_restores,
            "detailed_fraction": self.detailed_fraction,
            "wall_seconds": self.wall_seconds,
            "units": [
                {"index": u.index, "instructions": u.instructions,
                 "cycles": u.cycles, "energy": u.energy,
                 "truncated": u.truncated}
                for u in self.units
            ],
            "strategy_info": self.strategy_info,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        data = dict(data)
        data["spec"] = RunSpec.from_dict(data["spec"])
        data["units"] = [UnitRecord(**u) for u in data["units"]]
        # Ignore keys this version doesn't know (e.g. the CLI's
        # "validation" annotation, or fields added by newer versions),
        # so annotated payloads and future cache entries still load.
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "RunResult":
        return cls.from_dict(json.loads(payload))
