"""The paper's tables and figures as registered Study definitions.

Every experiment of the SMARTS evaluation (Tables 3-6, Figures 2-8) is
declared here as a :class:`~repro.api.study.Study`: a grid of RunSpecs
(where the experiment runs sampled simulations) plus an analysis over
the executed :class:`~repro.api.resultset.ResultSet` producing the
experiment payload — structured data and a formatted text report.  The
estimation studies (Figures 6/7/8) get parallel batches, on-disk result
caching, and checkpointed warming from the session layer for free; the
pure-analysis studies (reference-trace statistics, the runtime model)
have no grid and everything happens in ``analyze``.

Scaling: studies run the synthetic suite at a configurable scale
(``REPRO_SCALE``, default 0.6) with sampling parameters scaled from the
paper's canonical values in the same proportion as the benchmark
lengths (see EXPERIMENTS.md).  ``REPRO_SUITE`` selects a benchmark
subset, and ``REPRO_FAST=1`` shrinks the most expensive sweeps.

The deprecated per-figure functions in ``repro.harness.experiments``
are thin shims over this registry; new code should call
``Session.run_study("fig6")`` (or ``repro-smarts study run fig6``).
"""

from __future__ import annotations

import numpy as np

from repro.core.perf_model import (
    PAPER_SD_FUTURE,
    PAPER_SD_TODAY,
    SamplingWorkload,
    SimulatorRates,
    detailed_runtime_seconds,
    functional_runtime_seconds,
    paper_rate,
    runtime_seconds,
    speedup_over_detailed,
)
from repro.core.stats import required_sample_size
from repro.harness.bias import measure_bias, required_detailed_warming
from repro.harness.cv_analysis import (
    FIGURE3_TARGETS,
    cv_versus_unit_size,
    default_unit_sizes,
    minimum_measured_instructions,
)
from repro.harness.reporting import format_table, percent, unsigned_percent
from repro.harness.runtime import measure_rates
from repro.simpoint.estimator import run_simpoint
from repro.workloads.suite import EXTRA_NAMES
from repro.api.resultset import ResultSet
from repro.api.study import Study, StudyContext, register_study


# ----------------------------------------------------------------------
# Table 3 — machine configurations
# ----------------------------------------------------------------------
def _table3_analyze(ctx: StudyContext, results: ResultSet) -> dict:
    """Table 3: the 8-way and 16-way machine configurations."""
    rows = []
    eight = ctx.machine("8-way").describe()
    sixteen = ctx.machine("16-way").describe()
    for key in eight:
        rows.append((key, eight[key], sixteen[key]))
    report = format_table(
        ["Parameter", "8-way (baseline)", "16-way"], rows,
        title="Table 3: machine configurations (scaled)")
    return {"rows": rows, "report": report}


def _table3_tidy(data: dict) -> list[dict]:
    return [{"parameter": p, "8-way": a, "16-way": b}
            for p, a, b in data["rows"]]


# ----------------------------------------------------------------------
# Figure 2 — coefficient of variation of CPI vs U
# ----------------------------------------------------------------------
def _fig2_analyze(ctx: StudyContext, results: ResultSet,
                  machine_name: str = "8-way", metric: str = "cpi") -> dict:
    """Figure 2: V_CPI of every benchmark as a function of unit size U."""
    curves: dict[str, dict[int, float]] = {}
    for name in ctx.suite_names:
        reference = ctx.reference(name, machine_name)
        sizes = default_unit_sizes(reference)
        curves[name] = cv_versus_unit_size(reference, sizes, metric=metric)

    all_sizes = sorted({u for curve in curves.values() for u in curve})
    rows = []
    for name, curve in curves.items():
        rows.append([name] + [round(curve.get(u, float("nan")), 4)
                              for u in all_sizes])
    report = format_table(
        ["benchmark"] + [f"U={u}" for u in all_sizes], rows,
        title=f"Figure 2: coefficient of variation of {metric.upper()} vs "
              f"sampling unit size ({machine_name})")
    return {"curves": curves, "unit_sizes": all_sizes, "report": report}


def _fig2_tidy(data: dict) -> list[dict]:
    return [{"benchmark": name, "unit_size": u, "cv": cv}
            for name, curve in data["curves"].items()
            for u, cv in curve.items()]


# ----------------------------------------------------------------------
# Figure 3 — minimum measured instructions per confidence target
# ----------------------------------------------------------------------
#: Dynamic length used for "paper-scale" projections: a mid-sized SPEC2K
#: reference run (the paper's benchmarks span 2-547 billion instructions).
PAPER_SCALE_LENGTH = 50_000_000_000


def _fig3_analyze(ctx: StudyContext, results: ResultSet,
                  machine_names: tuple[str, ...] = ("8-way", "16-way"),
                  ) -> dict:
    """Figure 3: minimum n·U to reach the standard confidence targets.

    For every benchmark the measured CV is used twice: once against the
    benchmark's own (scaled-down) population, and once projected onto a
    SPEC-length stream of ``PAPER_SCALE_LENGTH`` instructions — the
    latter is the quantity Figure 3 actually plots, and it shows the
    "well under 0.1% of the stream" result the paper reports.
    """
    per_benchmark: dict[tuple[str, str], dict] = {}
    paper_scale_fractions: dict[tuple[str, str], float] = {}
    headline = FIGURE3_TARGETS[1]    # ±3% at 99.7%
    rows = []
    for machine_name in machine_names:
        for name in ctx.suite_names:
            reference = ctx.reference(name, machine_name)
            targets = minimum_measured_instructions(
                reference, ctx.unit_size, FIGURE3_TARGETS)
            per_benchmark[(machine_name, name)] = targets
            cv = next(iter(targets.values()))["cv"]
            paper_population = PAPER_SCALE_LENGTH // ctx.unit_size
            paper_n = required_sample_size(cv, headline.epsilon,
                                           headline.confidence,
                                           population_size=paper_population)
            paper_fraction = paper_n * ctx.unit_size / PAPER_SCALE_LENGTH
            paper_scale_fractions[(machine_name, name)] = paper_fraction
            row = [machine_name, name, round(cv, 3)]
            for target in FIGURE3_TARGETS:
                info = targets[target]
                row.append(f"{int(info['measured_instructions']):,} "
                           f"({unsigned_percent(info['fraction_of_benchmark'])})")
            row.append(f"{paper_fraction:.5%}")
            rows.append(row)
    headers = (["machine", "benchmark", f"V@U={ctx.unit_size}"]
               + [t.label for t in FIGURE3_TARGETS]
               + [f"{headline.label} at SPEC length"])
    report = format_table(
        headers, rows,
        title="Figure 3: minimum measured instructions (and fraction of "
              "benchmark) per confidence target")
    return {"targets": per_benchmark,
            "paper_scale_fractions": paper_scale_fractions,
            "report": report}


def _fig3_tidy(data: dict) -> list[dict]:
    rows = []
    for (machine, name), targets in data["targets"].items():
        for target, info in targets.items():
            rows.append({
                "machine": machine,
                "benchmark": name,
                "target": target.label,
                "cv": info["cv"],
                "measured_instructions": info["measured_instructions"],
                "fraction_of_benchmark": info["fraction_of_benchmark"],
                "paper_scale_fraction":
                    data["paper_scale_fractions"][(machine, name)],
            })
    return rows


# ----------------------------------------------------------------------
# Figure 4 — modeled SMARTS simulation rate vs W
# ----------------------------------------------------------------------
def _fig4_analyze(ctx: StudyContext, results: ResultSet,
                  benchmark_name: str = "gcc.syn") -> dict:
    """Figure 4: modeled simulation rate as a function of detailed warming W.

    Evaluated at paper scale (a gcc-sized benchmark with U = 1000 and
    n = 10,000 sampling units) with the paper's S_D values, plus one
    curve using this repository's measured rates.
    """
    paper_length = 46_900_000_000       # gcc-1 dynamic length (paper: ~47B)
    sample_size = 10_000
    unit_size = 1000
    warming_values = [0, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000,
                      1_000_000, 3_000_000, 10_000_000]

    curves: dict[str, list[tuple[int, float]]] = {}
    for label, s_d in (("S_D=1/60", PAPER_SD_TODAY), ("S_D=1/600", PAPER_SD_FUTURE)):
        rates = SimulatorRates.paper(s_d)
        curve = []
        for warming in warming_values:
            workload = SamplingWorkload(paper_length, sample_size, unit_size, warming)
            curve.append((warming, paper_rate(workload, rates,
                                              functional_warming=False)))
        curves[label] = curve

    # With functional warming the fast-forward rate drops to S_FW but the
    # rate is insensitive to W (bounded small); show the same sweep.
    rates = SimulatorRates.paper(PAPER_SD_TODAY)
    curves["S_FW=0.55 (functional warming)"] = [
        (warming, paper_rate(
            SamplingWorkload(paper_length, sample_size, unit_size,
                             min(warming, 2000)),
            rates, functional_warming=True))
        for warming in warming_values
    ]

    # Our measured rates on the calibration benchmark.
    benchmark = ctx.benchmark(benchmark_name)
    measured = measure_rates(benchmark.program, ctx.machine("8-way"),
                             instructions=30_000 if ctx.fast else 60_000)
    our_rates = measured.to_simulator_rates()
    length = ctx.benchmark_length(benchmark_name)
    our_sample = max(1, ctx.n_init)
    curves["measured rates (this repo, functional warming)"] = [
        (warming, paper_rate(
            SamplingWorkload(length, our_sample, ctx.unit_size,
                             min(warming, ctx.warming(ctx.machine("8-way")))),
            our_rates, functional_warming=True))
        for warming in warming_values
    ]

    rows = []
    for warming in warming_values:
        row = [warming]
        for label in curves:
            value = dict(curves[label])[warming]
            row.append(round(value, 4))
        rows.append(row)
    report = format_table(
        ["W"] + list(curves), rows,
        title="Figure 4: modeled SMARTS simulation rate (normalized to "
              "functional simulation) vs detailed warming W")
    return {"curves": curves, "measured_rates": measured, "report": report}


def _fig4_tidy(data: dict) -> list[dict]:
    return [{"curve": label, "warming": w, "rate": rate}
            for label, curve in data["curves"].items()
            for w, rate in curve]


# ----------------------------------------------------------------------
# Figure 5 — optimal sampling unit size
# ----------------------------------------------------------------------
def _fig5_analyze(ctx: StudyContext, results: ResultSet,
                  benchmark_names: list[str] | None = None,
                  machine_name: str = "8-way") -> dict:
    """Figure 5: detail-simulated fraction vs U for several W values."""
    if benchmark_names is None:
        candidates = ["gcc.syn", "bzip2.syn", "mesa.syn", "mcf.syn"]
        benchmark_names = [n for n in candidates if n in ctx.suite_names] or \
            ctx.subset(4)
    machine = ctx.machine(machine_name)
    base_warming = ctx.warming(machine)
    warming_values = [0, base_warming, 3 * base_warming]

    results_by_name: dict[str, dict[int, dict[int, float]]] = {}
    optima: dict[str, dict[int, int]] = {}
    for name in benchmark_names:
        reference = ctx.reference(name, machine_name)
        sizes = default_unit_sizes(reference)
        cv_curve = cv_versus_unit_size(reference, sizes)
        per_warming: dict[int, dict[int, float]] = {}
        best_per_warming: dict[int, int] = {}
        for warming in warming_values:
            fractions: dict[int, float] = {}
            for unit_size, cv in cv_curve.items():
                population = reference.instructions // unit_size
                if population < 2:
                    continue
                n = required_sample_size(cv, ctx.epsilon, ctx.confidence,
                                         population_size=population)
                # The fraction cannot exceed full detailed simulation of
                # the whole stream (at paper-scale populations it never
                # comes close; at our reduced scale high-CV benchmarks
                # saturate).
                fractions[unit_size] = min(
                    1.0, n * (unit_size + warming) / reference.instructions)
            per_warming[warming] = fractions
            best_per_warming[warming] = min(fractions, key=fractions.get)
        results_by_name[name] = per_warming
        optima[name] = best_per_warming

    rows = []
    for name in benchmark_names:
        for warming in warming_values:
            fractions = results_by_name[name][warming]
            best = optima[name][warming]
            rows.append([
                name, warming, best,
                unsigned_percent(fractions[best]),
                unsigned_percent(fractions.get(ctx.unit_size,
                                               min(fractions.values()))),
            ])
    report = format_table(
        ["benchmark", "W", "optimal U", "fraction at optimal U",
         f"fraction at U={ctx.unit_size}"],
        rows,
        title="Figure 5: optimal sampling unit size vs detailed warming")
    return {"fractions": results_by_name, "optima": optima, "report": report}


def _fig5_tidy(data: dict) -> list[dict]:
    rows = []
    for name, per_warming in data["fractions"].items():
        for warming, fractions in per_warming.items():
            best = data["optima"][name][warming]
            rows.append({"benchmark": name, "warming": warming,
                         "optimal_unit_size": best,
                         "fraction_at_optimal": fractions[best]})
    return rows


# ----------------------------------------------------------------------
# Table 4 — detailed warming requirements (no functional warming)
# ----------------------------------------------------------------------
def _table4_analyze(ctx: StudyContext, results: ResultSet,
                    machine_name: str = "8-way",
                    benchmark_names: list[str] | None = None,
                    warming_values: list[int] | None = None,
                    bias_threshold: float = 0.015) -> dict:
    """Table 4: W needed (without functional warming) for <1.5% bias."""
    machine = ctx.machine(machine_name)
    if benchmark_names is None:
        benchmark_names = ctx.subset(6 if ctx.fast else len(ctx.suite_names))
    if warming_values is None:
        base = ctx.warming(machine)
        warming_values = [0, base // 2, base, 3 * base, 8 * base]
        if ctx.fast:
            warming_values = [0, base, 5 * base]

    requirements: dict[str, int | None] = {}
    biases: dict[str, dict[int, float]] = {}
    for name in benchmark_names:
        benchmark = ctx.benchmark(name)
        reference = ctx.reference(name, machine_name)
        required, bias_curve = required_detailed_warming(
            benchmark.program, machine, reference,
            unit_size=ctx.unit_size,
            # Bias is measured against per-unit ground truth, so a modest
            # sample per phase suffices and keeps the W sweep affordable.
            target_sample_size=max(100, ctx.n_init // 3),
            warming_values=warming_values,
            bias_threshold=bias_threshold,
            phases=2,
        )
        requirements[name] = required
        biases[name] = bias_curve

    rows = []
    for name in benchmark_names:
        required = requirements[name]
        label = str(required) if required is not None else f"> {max(warming_values)}"
        curve = "  ".join(f"W={w}:{percent(b, 1)}" for w, b in biases[name].items())
        rows.append([name, label, curve])
    report = format_table(
        ["benchmark", f"W for |bias| < {bias_threshold:.1%}", "measured bias by W"],
        rows,
        title=f"Table 4: detailed warming requirements without functional "
              f"warming ({machine_name})")
    return {"requirements": requirements, "biases": biases,
            "warming_values": warming_values, "report": report}


def _table4_tidy(data: dict) -> list[dict]:
    return [{"benchmark": name, "warming": w, "bias": bias,
             "required_warming": data["requirements"][name]}
            for name, curve in data["biases"].items()
            for w, bias in curve.items()]


# ----------------------------------------------------------------------
# Table 5 — residual bias with functional warming
# ----------------------------------------------------------------------
def _table5_analyze(ctx: StudyContext, results: ResultSet,
                    machine_names: tuple[str, ...] = ("8-way", "16-way"),
                    phases: int | None = None) -> dict:
    """Table 5: CPI bias with functional warming and minimal detailed warming."""
    if phases is None:
        phases = 2
    biases: dict[tuple[str, str], float] = {}
    for machine_name in machine_names:
        machine = ctx.machine(machine_name)
        for name in ctx.suite_names:
            benchmark = ctx.benchmark(name)
            reference = ctx.reference(name, machine_name)
            measurement = measure_bias(
                benchmark.program, machine, reference,
                unit_size=ctx.unit_size,
                target_sample_size=max(150, ctx.n_init // 2),
                detailed_warming=ctx.warming(machine),
                functional_warming=True,
                phases=phases,
            )
            biases[(machine_name, name)] = measurement.bias

    rows = []
    for machine_name in machine_names:
        machine_biases = {n: b for (m, n), b in biases.items() if m == machine_name}
        ordered = sorted(machine_biases.items(), key=lambda kv: -abs(kv[1]))
        for name, bias in ordered:
            rows.append([machine_name, name, percent(bias)])
        average = np.mean([abs(b) for b in machine_biases.values()])
        rows.append([machine_name, "average |bias|", unsigned_percent(float(average))])
    report = format_table(
        ["machine", "benchmark", "CPI bias"], rows,
        title="Table 5: CPI bias with functional warming and minimal "
              "detailed warming")
    return {"biases": biases, "report": report}


def _table5_tidy(data: dict) -> list[dict]:
    return [{"machine": machine, "benchmark": name, "bias": bias}
            for (machine, name), bias in data["biases"].items()]


# ----------------------------------------------------------------------
# Figures 6 and 7 — CPI / EPI estimation with n_init (and n_tuned)
# ----------------------------------------------------------------------
def _estimation_grid(ctx: StudyContext,
                     machine_names: tuple[str, ...],
                     metric: str, max_rounds: int) -> list:
    return [ctx.estimation_spec(name, machine_name, metric=metric,
                                max_rounds=max_rounds)
            for machine_name in machine_names
            for name in ctx.suite_names]


def _fig6_grid(ctx: StudyContext,
               machine_names: tuple[str, ...] = ("8-way", "16-way"),
               metric: str = "cpi") -> list:
    return _estimation_grid(ctx, machine_names, metric, max_rounds=2)


def _fig6_analyze(ctx: StudyContext, results: ResultSet,
                  machine_names: tuple[str, ...] = ("8-way", "16-way"),
                  metric: str = "cpi") -> dict:
    """Figure 6 (CPI) / Figure 7 (EPI): estimation error vs confidence interval.

    The suite sweep runs through the session layer: one RunSpec per
    (machine, benchmark) cell, batch-executed (in parallel when
    ``ctx.max_workers`` is set) with on-disk result caching.
    """
    by_cell = results.by_cell()
    entries: dict[tuple[str, str], dict] = {}
    for machine_name in machine_names:
        for name in ctx.suite_names:
            result = by_cell[(machine_name, name)]
            reference = ctx.reference(name, machine_name)
            true_value = reference.cpi if metric == "cpi" else reference.epi
            initial = result.initial_estimate
            entries[(machine_name, name)] = {
                "true": true_value,
                "initial_estimate": initial["mean"],
                "initial_ci": initial["ci"],
                "initial_error": (initial["mean"] - true_value) / true_value,
                "final_estimate": result.estimate_mean,
                "final_ci": result.confidence_interval,
                "final_error": (result.estimate_mean - true_value) / true_value,
                "rounds": result.rounds,
                "n_final": result.sample_size,
                "tuned_n": (result.tuned_sample_sizes[-1]
                            if result.tuned_sample_sizes else None),
                "measured_instructions": result.instructions_measured,
                "detailed_fraction": result.detailed_fraction,
                "target_met": result.target_met,
            }

    rows = []
    for (machine_name, name), entry in sorted(
            entries.items(), key=lambda kv: -abs(kv[1]["initial_ci"])):
        rows.append([
            machine_name, name,
            round(entry["true"], 4),
            round(entry["initial_estimate"], 4),
            percent(entry["initial_error"]),
            unsigned_percent(entry["initial_ci"]),
            entry["rounds"],
            entry["n_final"],
            percent(entry["final_error"]),
            unsigned_percent(entry["final_ci"]),
        ])
    label = metric.upper()
    report = format_table(
        ["machine", "benchmark", f"true {label}", f"{label} (n_init)",
         "error (n_init)", "CI (n_init)", "rounds", "n final",
         "error (final)", "CI (final)"],
        rows,
        title=f"Figure {'6' if metric == 'cpi' else '7'}: {label} estimation "
              f"with n_init={ctx.n_init}, U={ctx.unit_size} "
              f"(99.7% confidence intervals)")
    return {"entries": entries, "report": report}


def _fig6_tidy(data: dict) -> list[dict]:
    return [{"machine": machine, "benchmark": name, **entry}
            for (machine, name), entry in data["entries"].items()]


def _fig7_grid(ctx: StudyContext,
               machine_names: tuple[str, ...] = ("8-way",)) -> list:
    return _estimation_grid(ctx, machine_names, metric="epi", max_rounds=2)


def _fig7_analyze(ctx: StudyContext, results: ResultSet,
                  machine_names: tuple[str, ...] = ("8-way",)) -> dict:
    """Figure 7: EPI estimation (8-way) with n_init."""
    return _fig6_analyze(ctx, results, machine_names=machine_names,
                         metric="epi")


# ----------------------------------------------------------------------
# Table 6 — runtimes of functional / detailed / SMARTS simulation
# ----------------------------------------------------------------------
def _table6_analyze(ctx: StudyContext, results: ResultSet,
                    machine_name: str = "8-way") -> dict:
    """Table 6: projected runtimes and speedups, paper-scale and measured."""
    machine = ctx.machine(machine_name)
    calibration = ctx.benchmark(ctx.subset(1)[0])
    measured = measure_rates(calibration.program, machine,
                             instructions=30_000 if ctx.fast else 60_000)
    our_rates = measured.to_simulator_rates()
    paper_rates = SimulatorRates.paper(PAPER_SD_TODAY)

    rows = []
    details: dict[str, dict] = {}
    for name in ctx.suite_names:
        length = ctx.benchmark_length(name)
        reference = ctx.reference(name, machine_name)
        workload = SamplingWorkload(
            benchmark_length=length,
            sample_size=min(ctx.n_init, length // ctx.unit_size),
            unit_size=ctx.unit_size,
            detailed_warming=ctx.warming(machine),
        )
        functional_s = functional_runtime_seconds(length, our_rates)
        detailed_s = detailed_runtime_seconds(length, our_rates)
        smarts_s = runtime_seconds(workload, our_rates, functional_warming=True)
        speedup = speedup_over_detailed(workload, our_rates, functional_warming=True)

        # Paper-scale projection: same benchmark "shape" blown up to a
        # SPEC-sized stream with the paper's canonical parameters.
        paper_length = length * 100_000
        paper_workload = SamplingWorkload(
            benchmark_length=paper_length,
            sample_size=10_000,
            unit_size=1000,
            detailed_warming=2000 if machine_name == "8-way" else 4000,
        )
        paper_speedup = speedup_over_detailed(paper_workload, paper_rates,
                                              functional_warming=True)
        details[name] = {
            "functional_seconds": functional_s,
            "detailed_seconds": detailed_s,
            "smarts_seconds": smarts_s,
            "measured_detailed_seconds": reference.seconds,
            "speedup": speedup,
            "paper_scale_speedup": paper_speedup,
        }
        rows.append([
            name,
            round(detailed_s, 1),
            round(functional_s, 1),
            round(smarts_s, 1),
            round(speedup, 1),
            round(paper_speedup, 1),
        ])

    average_speedup = float(np.mean([d["speedup"] for d in details.values()]))
    paper_average = float(np.mean([d["paper_scale_speedup"] for d in details.values()]))
    report = format_table(
        ["benchmark", "detailed (s)", "functional (s)", "SMARTS (s)",
         "speedup (this repo)", "speedup (paper-scale model)"],
        rows,
        title=f"Table 6: runtimes for SMARTS compared to detailed and "
              f"functional simulation ({machine_name}); measured rates: "
              f"S_D={measured.s_detailed:.3f}, S_FW={measured.s_warming:.3f}")

    checkpoint = _table6_checkpoint_analyze(ctx, machine_name=machine_name)
    report = report + "\n\n" + checkpoint.pop("report")
    return {"details": details, "measured_rates": measured,
            "average_speedup": average_speedup,
            "paper_scale_average_speedup": paper_average,
            "checkpoint": checkpoint, "report": report}


def _table6_checkpoint_analyze(ctx: StudyContext,
                               machine_name: str = "8-way") -> dict:
    """Checkpointed column of Table 6: measured, count-based.

    For a behaviourally diverse subset, one systematic sampling run is
    executed twice — serial functional warming vs. checkpointed restore
    — and compared on the *instruction counts* each mode executed (the
    container is single-core, so wall-clock speedups are never
    asserted).  The per-unit measurements of the two runs must be
    bit-identical; the checkpointed run merely replaces most functional
    warming work with snapshot restores.
    """
    from repro.checkpoint import CheckpointStore
    from repro.core.sampling import SystematicSamplingPlan
    from repro.core.smarts import run_smarts

    machine = ctx.machine(machine_name)
    # Go through the store (honouring ctx.use_cache like the reference
    # traces do) so repeated table6 runs pay the warming build only once.
    store = CheckpointStore(enabled=ctx.use_cache)
    rows = []
    details: dict[str, dict] = {}
    for name in ctx.subset(2 if ctx.fast else 3):
        benchmark = ctx.benchmark(name)
        length = ctx.benchmark_length(name)
        plan = SystematicSamplingPlan.for_sample_size(
            benchmark_length=length,
            unit_size=ctx.unit_size,
            target_sample_size=min(ctx.n_init, length // ctx.unit_size),
            detailed_warming=ctx.warming(machine),
        )
        serial = run_smarts(benchmark.program, machine, plan, length,
                            measure_energy=False)
        ckpt = store.get_or_build(benchmark.program, machine, ctx.unit_size)
        restored = run_smarts(benchmark.program, machine, plan, length,
                              measure_energy=False, checkpoints=ckpt)
        ff_serial = serial.instructions_fastforwarded
        ff_ckpt = restored.instructions_fastforwarded
        reduction = 1.0 - ff_ckpt / ff_serial if ff_serial else 0.0
        details[name] = {
            "ff_serial": ff_serial,
            "ff_checkpointed": ff_ckpt,
            "instructions_restored": restored.instructions_restored,
            "checkpoint_restores": restored.checkpoint_restores,
            "warming_reduction": reduction,
            "identical_units": serial.units == restored.units,
        }
        rows.append([
            name,
            f"{ff_serial:,}",
            f"{ff_ckpt:,}",
            f"{restored.instructions_restored:,}",
            percent(reduction),
            "yes" if details[name]["identical_units"] else "NO",
        ])
    average = float(np.mean([d["warming_reduction"] for d in details.values()]))
    report = format_table(
        ["benchmark", "warmed instr. (serial)", "warmed instr. (ckpt)",
         "restored instr.", "warming reduction", "bit-identical"],
        rows,
        title=f"Table 6 (checkpointed column): functional-warming "
              f"instructions with and without checkpoint restore "
              f"({machine_name})")
    return {"details": details, "average_warming_reduction": average,
            "report": report}


def table6_checkpoint_comparison(ctx: StudyContext,
                                 machine_name: str = "8-way") -> dict:
    """Standalone entry to the checkpointed column (legacy call shape)."""
    return _table6_checkpoint_analyze(ctx, machine_name=machine_name)


def _table6_tidy(data: dict) -> list[dict]:
    rows = [{"kind": "runtime", "benchmark": name, **detail}
            for name, detail in data["details"].items()]
    rows += [{"kind": "checkpoint", "benchmark": name, **detail}
             for name, detail in data["checkpoint"]["details"].items()]
    return rows


# ----------------------------------------------------------------------
# Figure 8 — comparison against SimPoint
# ----------------------------------------------------------------------
def _fig8_benchmarks(ctx: StudyContext,
                     benchmark_names: list[str] | None) -> list[str]:
    if benchmark_names is None:
        return ctx.subset(6 if ctx.fast else len(ctx.suite_names))
    return benchmark_names


def _fig8_grid(ctx: StudyContext, machine_name: str = "8-way",
               benchmark_names: list[str] | None = None) -> list:
    return [ctx.estimation_spec(name, machine_name, metric="cpi",
                                max_rounds=1)
            for name in _fig8_benchmarks(ctx, benchmark_names)]


def _fig8_analyze(ctx: StudyContext, results: ResultSet,
                  machine_name: str = "8-way",
                  benchmark_names: list[str] | None = None,
                  interval_size: int | None = None,
                  max_clusters: int = 8) -> dict:
    """Figure 8: per-benchmark CPI error of SimPoint vs SMARTS."""
    machine = ctx.machine(machine_name)
    benchmark_names = _fig8_benchmarks(ctx, benchmark_names)
    if interval_size is None:
        # SimPoint uses very large units (100M at SPEC scale); scaled to
        # roughly 1/100 of a benchmark here.
        interval_size = max(1000, ctx.unit_size * 50)

    by_cell = results.by_cell()
    entries: dict[str, dict] = {}
    for name in benchmark_names:
        benchmark = ctx.benchmark(name)
        reference = ctx.reference(name, machine_name)
        true_cpi = reference.cpi

        simpoint = run_simpoint(
            benchmark.program, machine, interval_size=interval_size,
            max_clusters=max_clusters, measure_energy=False)
        smarts = by_cell[(machine_name, name)]
        entries[name] = {
            "true_cpi": true_cpi,
            "simpoint_cpi": simpoint.cpi,
            "simpoint_error": (simpoint.cpi - true_cpi) / true_cpi,
            "simpoint_clusters": simpoint.num_clusters,
            "smarts_cpi": smarts.estimate_mean,
            "smarts_error": (smarts.estimate_mean - true_cpi) / true_cpi,
            "smarts_ci": smarts.confidence_interval,
        }

    rows = []
    for name, entry in sorted(entries.items(),
                              key=lambda kv: -abs(kv[1]["simpoint_error"])):
        rows.append([
            name,
            round(entry["true_cpi"], 4),
            round(entry["simpoint_cpi"], 4),
            percent(entry["simpoint_error"]),
            entry["simpoint_clusters"],
            round(entry["smarts_cpi"], 4),
            percent(entry["smarts_error"]),
            unsigned_percent(entry["smarts_ci"]),
        ])
    simpoint_avg = float(np.mean([abs(e["simpoint_error"]) for e in entries.values()]))
    smarts_avg = float(np.mean([abs(e["smarts_error"]) for e in entries.values()]))
    report = format_table(
        ["benchmark", "true CPI", "SimPoint CPI", "SimPoint error", "clusters",
         "SMARTS CPI", "SMARTS error", "SMARTS CI"],
        rows,
        title=f"Figure 8: SimPoint vs SMARTS CPI error ({machine_name}); "
              f"mean |error|: SimPoint {simpoint_avg:.2%}, SMARTS {smarts_avg:.2%}")
    return {"entries": entries, "simpoint_mean_abs_error": simpoint_avg,
            "smarts_mean_abs_error": smarts_avg, "report": report}


def _fig8_tidy(data: dict) -> list[dict]:
    return [{"benchmark": name, **entry}
            for name, entry in data["entries"].items()]


# ----------------------------------------------------------------------
# Ablation — systematic vs simple random sampling (Section 2's argument)
# ----------------------------------------------------------------------
def _ablation_systematic_errors(trace: np.ndarray,
                                interval: int) -> list[float]:
    """Relative error of systematic samples at up to 10 phases."""
    true_mean = trace.mean()
    return [(trace[offset::interval].mean() - true_mean) / true_mean
            for offset in range(min(interval, 10))]


def _ablation_random_errors(trace: np.ndarray, sample_size: int,
                            trials: int = 10) -> list[float]:
    """Relative error of seeded simple random samples of the same size."""
    true_mean = trace.mean()
    errors = []
    for seed in range(trials):
        rng = np.random.default_rng(seed)
        sample = rng.choice(trace, size=min(sample_size, len(trace)),
                            replace=False)
        errors.append((sample.mean() - true_mean) / true_mean)
    return errors


def _ablation_analyze(ctx: StudyContext, results: ResultSet,
                      machine_name: str = "8-way", trials: int = 10) -> dict:
    """Ablation: homogeneity and systematic-vs-random estimate quality.

    Section 2 of the paper argues that systematic sampling may be
    analyzed with random-sampling mathematics because the benchmarks
    show negligible homogeneity at sampling periodicities.  Both halves
    of that argument are checked on the reference traces: the intraclass
    correlation of per-unit CPI at the experiment's sampling interval,
    and the error spread of systematic vs simple random samples of equal
    size.  Runs entirely on cached reference traces — no additional
    simulation.
    """
    from repro.core.stats import intraclass_correlation
    from repro.harness.reference import unit_cpi_trace

    rows = []
    details: dict[str, dict] = {}
    for name in ctx.suite_names:
        reference = ctx.reference(name, machine_name)
        trace = unit_cpi_trace(reference, ctx.unit_size)
        population = len(trace)
        interval = max(2, population // max(1, ctx.n_init))
        sample_size = population // interval

        delta = intraclass_correlation(trace, interval, offset_stride=1)
        sys_errors = _ablation_systematic_errors(trace, interval)
        rand_errors = _ablation_random_errors(trace, sample_size,
                                              trials=trials)
        details[name] = {
            "delta": delta,
            "systematic_rmse": float(np.sqrt(np.mean(np.square(sys_errors)))),
            "random_rmse": float(np.sqrt(np.mean(np.square(rand_errors)))),
            "systematic_mean_error": float(np.mean(sys_errors)),
        }
        rows.append([
            name, f"{delta:+.4f}",
            percent(details[name]["systematic_mean_error"]),
            percent(details[name]["systematic_rmse"]),
            percent(details[name]["random_rmse"]),
        ])
    report = format_table(
        ["benchmark", "intraclass corr.", "systematic mean error",
         "systematic RMSE", "random RMSE"],
        rows,
        title="Ablation: systematic vs simple random sampling "
              f"(U={ctx.unit_size}, {machine_name})")
    return {"details": details, "report": report}


def _ablation_tidy(data: dict) -> list[dict]:
    return [{"benchmark": name, **detail}
            for name, detail in data["details"].items()]


# ----------------------------------------------------------------------
# Adaptive run-to-target-CI sampling vs the two-round procedure
# ----------------------------------------------------------------------
def _adaptive_grid(ctx: StudyContext, machine_name: str = "8-way",
                   metric: str = "cpi") -> list:
    """One adaptive and one two-round RunSpec per benchmark.

    Covers the configured suite plus the extra stress-test workloads
    (phase-shifting and irregular pointer chasing), which are exactly
    the population shapes a fixed up-front sample size handles worst.
    Benchmark lengths are measured functionally per spec (no reference
    simulations needed), so the study runs standalone.
    """
    from repro.api import AdaptiveStrategy, RunSpec, SystematicStrategy

    machine = ctx.machine(machine_name)
    warming = ctx.warming(machine)
    n_min = max(8, ctx.n_init // 8)
    batch_size = max(8, ctx.n_init // 6)
    specs = []
    for name in [*ctx.suite_names, *EXTRA_NAMES]:
        common = dict(
            benchmark=name, machine=machine_name, scale=ctx.scale,
            metric=metric, epsilon=ctx.epsilon, confidence=ctx.confidence,
            checkpoints=ctx.checkpoints,
        )
        specs.append(RunSpec(strategy=AdaptiveStrategy(
            unit_size=ctx.unit_size, n_min=n_min, batch_size=batch_size,
            detailed_warming=warming, functional_warming=True), **common))
        specs.append(RunSpec(strategy=SystematicStrategy(
            unit_size=ctx.unit_size, n_init=ctx.n_init, max_rounds=2,
            detailed_warming=warming, functional_warming=True), **common))
    return specs


def _adaptive_analyze(ctx: StudyContext, results: ResultSet,
                      machine_name: str = "8-way",
                      metric: str = "cpi") -> dict:
    """Per-benchmark cost and achieved-CI comparison of the two modes.

    The adaptive mode's achieved CI is the finite-population-corrected
    interval its stopping rule operates on (``strategy_info``); the
    two-round column shows the paper procedure's uncorrected interval
    alongside its total measured-instruction bill (every round counts).
    """
    entries: dict[str, dict] = {}
    for name in [*ctx.suite_names, *EXTRA_NAMES]:
        adaptive = results.filter(benchmark=name, strategy="adaptive")[0]
        two_round = results.filter(benchmark=name, strategy="systematic")[0]
        achieved_ci = adaptive.strategy_info.get(
            "achieved_ci", adaptive.confidence_interval)
        entries[name] = {
            "adaptive_n": adaptive.sample_size,
            "adaptive_measured": adaptive.instructions_measured,
            "adaptive_ci": adaptive.confidence_interval,
            "adaptive_ci_corrected": achieved_ci,
            "adaptive_stopping": adaptive.strategy_info.get("stopping"),
            "adaptive_batches": len(adaptive.strategy_info.get("batches", ())),
            "adaptive_meets_target": achieved_ci <= adaptive.spec.epsilon,
            "two_round_n": two_round.sample_size,
            "two_round_rounds": two_round.rounds,
            "two_round_measured": two_round.instructions_measured,
            "two_round_ci": two_round.confidence_interval,
            "adaptive_estimate": adaptive.estimate_mean,
            "two_round_estimate": two_round.estimate_mean,
            "adaptive_cheaper": (adaptive.instructions_measured
                                 <= two_round.instructions_measured),
        }

    cheaper = sum(e["adaptive_cheaper"] for e in entries.values())
    met = sum(e["adaptive_meets_target"] for e in entries.values())
    rows = []
    for name, e in entries.items():
        rows.append([
            name,
            e["adaptive_n"], e["adaptive_batches"], e["adaptive_stopping"],
            unsigned_percent(e["adaptive_ci_corrected"]),
            e["adaptive_measured"],
            e["two_round_n"], e["two_round_rounds"],
            unsigned_percent(e["two_round_ci"]),
            e["two_round_measured"],
            "yes" if e["adaptive_cheaper"] else "no",
        ])
    report = format_table(
        ["benchmark", "n (adaptive)", "batches", "stop",
         "CI (adaptive, FPC)", "measured (adaptive)", "n (2-round)",
         "rounds", "CI (2-round)", "measured (2-round)", "adaptive cheaper"],
        rows,
        title=f"Adaptive vs two-round {metric.upper()} estimation "
              f"(±{ctx.epsilon:.1%} target, U={ctx.unit_size}, "
              f"{machine_name}); adaptive meets target on "
              f"{met}/{len(entries)}, cheaper on {cheaper}/{len(entries)}")
    return {
        "entries": entries,
        "meets_target_count": met,
        "cheaper_count": cheaper,
        "total": len(entries),
        "report": report,
    }


def _adaptive_tidy(data: dict) -> list[dict]:
    return [{"benchmark": name, **entry}
            for name, entry in data["entries"].items()]


# ----------------------------------------------------------------------
# Registry: one Study per paper table/figure, in paper order
# ----------------------------------------------------------------------
register_study(Study(
    name="table3", title="Table 3: machine configurations",
    analyze=_table3_analyze, tidy=_table3_tidy,
    legacy="table3_configurations"))
register_study(Study(
    name="fig2", title="Figure 2: CV of CPI vs sampling unit size",
    analyze=_fig2_analyze, tidy=_fig2_tidy, legacy="figure2_cv_curves"))
register_study(Study(
    name="fig3", title="Figure 3: minimum measured instructions per target",
    analyze=_fig3_analyze, tidy=_fig3_tidy,
    legacy="figure3_minimum_instructions"))
register_study(Study(
    name="fig4", title="Figure 4: modeled simulation rate vs detailed warming",
    analyze=_fig4_analyze, tidy=_fig4_tidy, legacy="figure4_speed_model"))
register_study(Study(
    name="fig5", title="Figure 5: optimal sampling unit size",
    analyze=_fig5_analyze, tidy=_fig5_tidy,
    legacy="figure5_optimal_unit_size"))
register_study(Study(
    name="table4", title="Table 4: detailed warming requirements",
    analyze=_table4_analyze, tidy=_table4_tidy,
    legacy="table4_detailed_warming"))
register_study(Study(
    name="table5", title="Table 5: CPI bias with functional warming",
    analyze=_table5_analyze, tidy=_table5_tidy,
    legacy="table5_functional_warming_bias"))
register_study(Study(
    name="fig6", title="Figure 6: CPI estimation across the suite",
    grid=_fig6_grid, analyze=_fig6_analyze, tidy=_fig6_tidy,
    legacy="figure6_cpi_estimates"))
register_study(Study(
    name="fig7", title="Figure 7: EPI estimation across the suite",
    grid=_fig7_grid, analyze=_fig7_analyze, tidy=_fig6_tidy,
    legacy="figure7_epi_estimates"))
register_study(Study(
    name="table6", title="Table 6: runtimes and speedups",
    analyze=_table6_analyze, tidy=_table6_tidy, legacy="table6_runtimes"))
register_study(Study(
    name="fig8", title="Figure 8: SimPoint vs SMARTS CPI error",
    grid=_fig8_grid, analyze=_fig8_analyze, tidy=_fig8_tidy,
    legacy="figure8_simpoint_comparison"))
register_study(Study(
    name="ablation", title="Ablation: systematic vs simple random sampling",
    analyze=_ablation_analyze, tidy=_ablation_tidy))
register_study(Study(
    name="adaptive_vs_two_round",
    title="Adaptive run-to-target-CI sampling vs the two-round procedure",
    grid=_adaptive_grid, analyze=_adaptive_analyze, tidy=_adaptive_tidy))
