"""Pluggable sampling strategies behind one registered interface.

A :class:`SamplingStrategy` turns a benchmark into measured sampling
units and an estimate.  Four strategies ship with the library:

* :class:`SystematicStrategy` — the SMARTS procedure itself: systematic
  sampling at a fixed interval with the (up to) two-step sample-size
  tuning loop of Section 5.1.
* :class:`AdaptiveStrategy` — online stopping: systematic units are
  simulated in incremental batches (progressively halving the stride)
  and sampling stops as soon as the finite-population-corrected
  confidence interval reaches the ±epsilon target.
* :class:`RandomStrategy` — simple random sampling without replacement,
  the paper's statistical baseline, with an explicit seed.
* :class:`StratifiedStrategy` — per-phase allocation: BBV phase labels
  from the SimPoint machinery (``repro.simpoint``) stratify the unit
  population, the sample is allocated proportionally across phases, and
  units are picked systematically within each stratum.  This puts
  SimPoint-style phase knowledge and SMARTS-style unit sampling behind
  the same interface.

Strategies are frozen dataclasses: hashable, comparable, and
serializable through ``to_dict`` / :func:`strategy_from_dict`, which is
what lets :class:`~repro.api.spec.RunSpec` round-trip through JSON and
act as a cache key.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass, field, fields
from typing import ClassVar

from repro.config.machines import MachineConfig
from repro.core.estimates import SmartsRunResult
from repro.core.procedure import estimate_metric, recommended_warming
from repro.core.sampling import (
    RandomSamplingPlan,
    SamplingUnit,
    StratifiedSamplingPlan,
    SystematicSamplingPlan,
)
from repro.core.smarts import SmartsEngine, run_smarts
from repro.core.stats import DEFAULT_EPSILON
from repro.isa.program import Program


@dataclass
class StrategyOutcome:
    """What a strategy produced: every sampling run plus bookkeeping."""

    runs: list[SmartsRunResult]
    tuned_sample_sizes: list[int] = field(default_factory=list)
    #: Strategy-specific extras (e.g. phase allocation for stratified).
    info: dict = field(default_factory=dict)

    @property
    def final_run(self) -> SmartsRunResult:
        if not self.runs:
            raise ValueError(
                "strategy outcome contains no sampling runs; final_run "
                "is undefined")
        return self.runs[-1]


class SamplingStrategy(ABC):
    """Interface every sampling strategy implements.

    Concrete strategies are frozen dataclasses whose fields are the
    strategy's tunable parameters; ``name`` identifies the strategy in
    the registry and in serialized RunSpecs.
    """

    name: ClassVar[str]

    @abstractmethod
    def run(
        self,
        program: Program,
        machine: MachineConfig,
        benchmark_length: int,
        *,
        metric: str = "cpi",
        epsilon: float = DEFAULT_EPSILON,
        confidence: float = 0.997,
        seed: int = 0,
        checkpoints=None,
    ) -> StrategyOutcome:
        """Execute the strategy and return every sampling run.

        ``checkpoints`` (a :class:`repro.checkpoint.CheckpointSet`) is
        threaded through to the engine: unit selection is unchanged, but
        each selected unit restores pre-warmed state instead of
        fast-forwarding, leaving estimates bit-identical.
        """

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serializable form: ``{"name": ..., "params": {...}}``.

        Fields marked ``io_only`` in their dataclass metadata are local
        execution preferences that cannot change estimates; they are
        excluded here so they never enter spec hashes, cache identity,
        or worker payloads.
        """
        params = asdict(self)
        for f in fields(self):
            if f.metadata.get("io_only"):
                params.pop(f.name, None)
        return {"name": self.name, "params": params}

    @classmethod
    def from_params(cls, params: dict) -> "SamplingStrategy":
        known = {f.name for f in fields(cls)}
        unknown = set(params) - known
        if unknown:
            raise ValueError(
                f"unknown parameters for strategy {cls.name!r}: {sorted(unknown)}")
        return cls(**params)

    def effective_warming(self, machine: MachineConfig) -> int:
        """The detailed-warming length W this strategy will use."""
        warming = getattr(self, "detailed_warming", None)
        return recommended_warming(machine) if warming is None else warming


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
STRATEGIES: dict[str, type[SamplingStrategy]] = {}


def register_strategy(cls: type[SamplingStrategy]) -> type[SamplingStrategy]:
    """Class decorator adding a strategy to the global registry."""
    if not getattr(cls, "name", None):
        raise ValueError(f"strategy {cls.__name__} must define a name")
    existing = STRATEGIES.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"strategy name {cls.name!r} already registered")
    STRATEGIES[cls.name] = cls
    return cls


def get_strategy(name: str) -> type[SamplingStrategy]:
    """Look up a strategy class by its registered name."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; available: {sorted(STRATEGIES)}"
        ) from None


def strategy_from_dict(data: dict) -> SamplingStrategy:
    """Rebuild a strategy from its ``to_dict`` payload."""
    return get_strategy(data["name"]).from_params(dict(data.get("params", {})))


# ----------------------------------------------------------------------
# Systematic (SMARTS)
# ----------------------------------------------------------------------
@register_strategy
@dataclass(frozen=True)
class SystematicStrategy(SamplingStrategy):
    """The SMARTS procedure: systematic sampling with n-tuning.

    ``detailed_warming=None`` defers to the machine's recommended W.
    ``max_rounds`` bounds the sample-size tuning loop (the paper shows
    two rounds suffice).
    """

    name: ClassVar[str] = "systematic"

    unit_size: int = 50
    n_init: int = 300
    max_rounds: int = 2
    offset: int = 0
    detailed_warming: int | None = None
    functional_warming: bool = True

    def run(self, program, machine, benchmark_length, *, metric="cpi",
            epsilon=DEFAULT_EPSILON, confidence=0.997, seed=0,
            checkpoints=None) -> StrategyOutcome:
        procedure = estimate_metric(
            program, machine,
            metric=metric,
            unit_size=self.unit_size,
            detailed_warming=self.effective_warming(machine),
            functional_warming=self.functional_warming,
            epsilon=epsilon,
            confidence=confidence,
            n_init=self.n_init,
            max_rounds=self.max_rounds,
            offset=self.offset,
            benchmark_length=benchmark_length,
            checkpoints=checkpoints,
        )
        return StrategyOutcome(
            runs=list(procedure.runs),
            tuned_sample_sizes=list(procedure.tuned_sample_sizes),
        )


# ----------------------------------------------------------------------
# Adaptive (run to target CI)
# ----------------------------------------------------------------------
@register_strategy
@dataclass(frozen=True)
class AdaptiveStrategy(SamplingStrategy):
    """Online stopping: simulate units in batches until the CI hits ±ε.

    Where :class:`SystematicStrategy` fixes the sample size up front
    (re-running once if the first guess was too small), this strategy
    drives a resumable :class:`~repro.core.smarts.MeasurementSession`
    and re-checks the finite-population-corrected confidence interval
    after every batch — easy benchmarks stop after ``n_min`` units, hard
    ones keep refining.

    Unit selection is *progressive systematic refinement*: the initial
    batch is a systematic sample at the largest power-of-two stride that
    still yields at least ``n_min`` units; each subsequent level halves
    the stride by interleaving the odd multiples of the new stride, so
    the cumulative sample is always a systematic sample (mid-level: a
    near-systematic one) and the whole sequence is a pure function of
    the population size — the same RunSpec replays identically.

    Guards: sampling never stops before ``n_min`` measured units, never
    requests more than ``n_max`` (``None`` = no cap beyond the
    population itself), and ``batch_size`` bounds how many units are
    simulated between CI checks.
    """

    name: ClassVar[str] = "adaptive"

    unit_size: int = 50
    n_min: int = 30
    n_max: int | None = None
    batch_size: int = 100
    detailed_warming: int | None = None
    functional_warming: bool = True

    def __post_init__(self) -> None:
        if self.unit_size <= 0:
            raise ValueError("unit_size must be positive")
        if self.n_min < 2:
            raise ValueError("n_min must be at least 2 (a CI needs variance)")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.n_max is not None and self.n_max < self.n_min:
            raise ValueError("n_max must be at least n_min")

    def _refinement_levels(self, population: int):
        """Yield ``(stride, new_indices)`` per refinement level.

        Level 0 is the coarsest power-of-two stride whose systematic
        sample still has at least ``n_min`` units; level t adds the odd
        multiples of ``stride / 2**t``.  The union after any level is
        exactly the systematic sample at that level's stride.
        """
        stride = 1
        while -(-population // (2 * stride)) >= self.n_min:
            stride *= 2
        yield stride, list(range(0, population, stride))
        while stride > 1:
            stride //= 2
            yield stride, list(range(stride, population, 2 * stride))

    def _batches(self, indices: list[int]):
        """Split a level into near-uniform interleaved sub-batches."""
        count = len(indices)
        sub_batches = -(-count // self.batch_size)
        for s in range(sub_batches):
            yield indices[s::sub_batches]

    def run(self, program, machine, benchmark_length, *, metric="cpi",
            epsilon=DEFAULT_EPSILON, confidence=0.997, seed=0,
            checkpoints=None) -> StrategyOutcome:
        if metric not in ("cpi", "epi"):
            raise ValueError("metric must be 'cpi' or 'epi'")
        engine = SmartsEngine(machine=machine,
                              measure_energy=(metric == "epi"),
                              checkpoints=checkpoints)
        session = engine.start(
            program, benchmark_length,
            unit_size=self.unit_size,
            detailed_warming=self.effective_warming(machine),
            functional_warming=self.functional_warming,
        )
        population = session.population_size
        if population <= 0:
            raise ValueError("benchmark shorter than one sampling unit")
        n_cap = (population if self.n_max is None
                 else min(self.n_max, population))

        unit = self.unit_size
        trajectory: list[dict] = []
        stopping = "census"
        achieved_ci = float("inf")
        requested = 0
        stride = 1
        stop = False
        for stride, level_indices in self._refinement_levels(population):
            for batch in self._batches(level_indices):
                batch = batch[:n_cap - requested]
                if not batch:
                    continue
                requested += len(batch)
                session.extend(
                    SamplingUnit(index=i, start=i * unit, size=unit)
                    for i in batch)
                run = session.result(interval=stride, offset=0)
                estimate = run.cpi if metric == "cpi" else run.epi
                achieved_ci = (estimate.corrected_confidence_interval(confidence)
                               if run.sample_size else float("inf"))
                trajectory.append({
                    "stride": stride,
                    "n": run.sample_size,
                    "ci": achieved_ci,
                })
                if run.sample_size >= self.n_min and achieved_ci <= epsilon:
                    stopping, stop = "target", True
                    break
                if requested >= n_cap:
                    stopping = "census" if n_cap >= population else "n_max"
                    stop = True
                    break
            if stop:
                break

        final = session.result(interval=stride, offset=0)
        return StrategyOutcome(
            runs=[final],
            info={
                "stopping": stopping,
                "achieved_ci": achieved_ci,
                "batches": trajectory,
                "population": population,
            },
        )


# ----------------------------------------------------------------------
# Random
# ----------------------------------------------------------------------
@register_strategy
@dataclass(frozen=True)
class RandomStrategy(SamplingStrategy):
    """Simple random sampling of ``sample_size`` units, seeded explicitly.

    The selection seed is ``seed + seed_offset`` where ``seed`` comes
    from the RunSpec, so sweeps over seeds reproduce by construction.
    """

    name: ClassVar[str] = "random"

    unit_size: int = 50
    sample_size: int = 300
    seed_offset: int = 0
    detailed_warming: int | None = None
    functional_warming: bool = True

    def run(self, program, machine, benchmark_length, *, metric="cpi",
            epsilon=DEFAULT_EPSILON, confidence=0.997, seed=0,
            checkpoints=None) -> StrategyOutcome:
        plan = RandomSamplingPlan(
            unit_size=self.unit_size,
            sample_size=self.sample_size,
            seed=seed + self.seed_offset,
            detailed_warming=self.effective_warming(machine),
            functional_warming=self.functional_warming,
        )
        run = run_smarts(program, machine, plan, benchmark_length,
                         measure_energy=(metric == "epi"),
                         checkpoints=checkpoints)
        return StrategyOutcome(runs=[run], info={"plan_seed": plan.seed})


# ----------------------------------------------------------------------
# Stratified (BBV phases)
# ----------------------------------------------------------------------
@register_strategy
@dataclass(frozen=True)
class StratifiedStrategy(SamplingStrategy):
    """Phase-stratified sampling using BBV cluster labels.

    The benchmark is profiled into basic block vectors at a granularity
    of ``units_per_interval`` sampling units per interval, the intervals
    are clustered into at most ``max_phases`` phases (the SimPoint
    machinery), and the total ``sample_size`` is allocated across phases
    proportionally to their unit populations (largest-remainder method).
    Within each phase the allocated units are picked systematically, so
    the whole design is deterministic given the RunSpec seed.
    """

    name: ClassVar[str] = "stratified"

    unit_size: int = 50
    sample_size: int = 300
    units_per_interval: int = 20
    max_phases: int = 6
    detailed_warming: int | None = None
    functional_warming: bool = True
    #: Persist the BBV profile in the checkpoint store; disable for
    #: fully in-memory (no-disk-side-effect) operation.  I/O-only: it
    #: cannot change estimates, so it is excluded from spec hashes and
    #: equality — and, being process-local, it is not shipped to pool
    #: workers (parallel batches use the default).
    profile_cache: bool = field(default=True, compare=False,
                                metadata={"io_only": True})

    def build_plan(self, program: Program, benchmark_length: int,
                   machine: MachineConfig, seed: int = 0,
                   store=None) -> tuple[StratifiedSamplingPlan, dict]:
        """Profile, cluster, allocate, and select the unit indices.

        The BBV profile — the only functional pass this strategy needs —
        is cached in ``store`` (a :class:`repro.checkpoint.CheckpointStore`;
        default: the shared ``.ckpt_cache`` / ``REPRO_CHECKPOINT_DIR``
        store) keyed by (program fingerprint, interval size, profiled
        length), so repeated stratified runs over the same benchmark
        (any seed, sample size, or machine) profile once.  Profiling is
        deterministic — a cached profile is bit-identical to a fresh
        one — and persisting it is opportunistic: set
        ``profile_cache=False`` on the strategy (or pass a disabled /
        unwritable store) for pure in-memory operation.
        """
        from repro.checkpoint import CheckpointStore
        from repro.simpoint.bbv import project_vectors
        from repro.simpoint.kmeans import choose_clustering

        population = benchmark_length // self.unit_size
        if population <= 0:
            raise ValueError("benchmark shorter than one sampling unit")
        interval_size = self.unit_size * self.units_per_interval
        if store is None:
            store = CheckpointStore(enabled=self.profile_cache)
        profile = store.get_or_profile(
            program, interval_size, max_instructions=benchmark_length)
        projected = project_vectors(profile, seed=seed)
        clustering = choose_clustering(projected, max_k=self.max_phases,
                                       seed=seed)

        # Group the unit population into strata by phase label.
        strata: dict[int, list[int]] = {}
        num_intervals = profile.num_intervals
        for unit_index in range(population):
            interval = min(unit_index // self.units_per_interval,
                           num_intervals - 1)
            label = int(clustering.labels[interval])
            strata.setdefault(label, []).append(unit_index)

        # Proportional allocation via largest remainder.  The total is a
        # hard budget: it is never exceeded, even when there are more
        # phases than units to hand out.
        total = min(self.sample_size, population)
        labels = sorted(strata)
        quotas = {lbl: total * len(strata[lbl]) / population for lbl in labels}
        allocation = {lbl: int(quotas[lbl]) for lbl in labels}
        remainder = total - sum(allocation.values())
        by_remainder = sorted(labels,
                              key=lambda lbl: quotas[lbl] - int(quotas[lbl]),
                              reverse=True)
        for lbl in by_remainder[:remainder]:
            allocation[lbl] += 1
        # Prefer covering every phase when the budget allows: shift one
        # unit from the largest allocation to each uncovered stratum.
        for lbl in labels:
            if allocation[lbl] > 0:
                continue
            donor = max(labels, key=lambda l: allocation[l])
            if allocation[donor] <= 1:
                break
            allocation[donor] -= 1
            allocation[lbl] = 1

        # Systematic selection within each stratum.
        chosen: list[int] = []
        for lbl in labels:
            members = strata[lbl]
            count = min(allocation[lbl], len(members))
            if count == 0:
                continue
            stride = len(members) / count
            chosen.extend(members[int(i * stride + stride / 2)]
                          for i in range(count))

        plan = StratifiedSamplingPlan(
            unit_size=self.unit_size,
            unit_indices=tuple(sorted(set(chosen))),
            detailed_warming=self.effective_warming(machine),
            functional_warming=self.functional_warming,
        )
        info = {
            "phases": clustering.k,
            "allocation": {str(lbl): allocation[lbl] for lbl in labels},
            "stratum_sizes": {str(lbl): len(strata[lbl]) for lbl in labels},
        }
        return plan, info

    def run(self, program, machine, benchmark_length, *, metric="cpi",
            epsilon=DEFAULT_EPSILON, confidence=0.997, seed=0,
            checkpoints=None) -> StrategyOutcome:
        plan, info = self.build_plan(program, benchmark_length, machine,
                                     seed=seed)
        run = run_smarts(program, machine, plan, benchmark_length,
                         measure_energy=(metric == "epi"),
                         checkpoints=checkpoints)
        return StrategyOutcome(runs=[run], info=info)
