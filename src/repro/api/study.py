"""Declarative studies: named experiment grids plus attached analyses.

A :class:`Study` is the data that used to be a bespoke harness function:
a name, a *grid* of :class:`~repro.api.spec.RunSpec`s (possibly empty —
several of the paper's figures are pure analyses over reference traces),
and an *analysis* that turns the executed :class:`~repro.api.resultset.ResultSet`
into the experiment's payload (structured data plus a formatted text
report).  Studies live in a registry and execute through
:meth:`repro.api.Session.run_study`, which gives every experiment the
session layer's parallel batches, on-disk result caching, and
checkpointed warming for free.

:class:`StudyContext` carries the shared configuration and caches
(machines, benchmarks, reference runs, the session) that every study
reads; it is the object formerly known as
``repro.harness.experiments.ExperimentContext`` and remains importable
under that name.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

from repro.config.machines import MachineConfig, scaled_16way, scaled_8way
from repro.core.estimates import ReferenceResult
from repro.core.procedure import recommended_warming
from repro.core.stats import CONFIDENCE_997, DEFAULT_EPSILON
from repro.workloads.suite import SUITE_NAMES, Benchmark, get_benchmark
from repro.api.resultset import ResultSet, rows_to_csv


@dataclass
class StudyContext:
    """Shared configuration and caches for all studies."""

    scale: float = field(
        default_factory=lambda: float(os.environ.get("REPRO_SCALE", "0.6")))
    fast: bool = field(
        default_factory=lambda: os.environ.get("REPRO_FAST", "0") == "1")
    suite_names: list[str] = field(default_factory=list)
    unit_size: int = 50
    chunk_size: int = 25
    n_init: int = 300
    epsilon: float = DEFAULT_EPSILON
    confidence: float = CONFIDENCE_997
    use_cache: bool = True
    #: Worker processes for suite sweeps (0/None = serial; REPRO_WORKERS).
    max_workers: int | None = field(
        default_factory=lambda: int(os.environ.get("REPRO_WORKERS") or 0) or None)
    #: Checkpoint mode for suite sweeps ("off"/"auto"; REPRO_CHECKPOINTS).
    checkpoints: str = field(
        default_factory=lambda: os.environ.get("REPRO_CHECKPOINTS", "off"))

    def __post_init__(self) -> None:
        if not self.suite_names:
            env = os.environ.get("REPRO_SUITE", "")
            if env:
                self.suite_names = [name.strip() for name in env.split(",") if name.strip()]
            else:
                self.suite_names = list(SUITE_NAMES)
        self._benchmarks: dict[str, Benchmark] = {}
        self._lengths: dict[str, int] = {}
        self._references: dict[tuple[str, str], ReferenceResult] = {}
        self._machines = {"8-way": scaled_8way(), "16-way": scaled_16way()}
        self._session = None

    # ------------------------------------------------------------------
    # Machines / benchmarks / references
    # ------------------------------------------------------------------
    @property
    def machines(self) -> dict[str, MachineConfig]:
        return self._machines

    def machine(self, name: str) -> MachineConfig:
        return self._machines[name]

    def warming(self, machine: MachineConfig) -> int:
        return recommended_warming(machine)

    def benchmark(self, name: str) -> Benchmark:
        if name not in self._benchmarks:
            self._benchmarks[name] = get_benchmark(name, scale=self.scale)
        return self._benchmarks[name]

    def benchmark_length(self, name: str) -> int:
        if name not in self._lengths:
            self._lengths[name] = self.reference(name, "8-way").instructions
        return self._lengths[name]

    def reference(self, benchmark_name: str, machine_name: str) -> ReferenceResult:
        key = (benchmark_name, machine_name)
        if key not in self._references:
            from repro.harness.reference import run_reference

            benchmark = self.benchmark(benchmark_name)
            # When the study's sweeps run with checkpoints, let the
            # reference pass capture the checkpoint set as it goes: one
            # warm pass over the stream populates both the reference
            # trace and the checkpoint store, and the separate
            # functional build pass never runs.
            self._references[key] = run_reference(
                benchmark.program,
                self.machine(machine_name),
                chunk_size=self.chunk_size,
                use_cache=self.use_cache,
                capture_units=(self.unit_size
                               if self.checkpoints == "auto" else None),
            )
        return self._references[key]

    def subset(self, count: int) -> list[str]:
        """A smaller, behaviourally diverse subset for expensive sweeps."""
        preferred = ["gcc.syn", "mcf.syn", "ammp.syn", "gzip.syn", "mgrid.syn",
                     "vpr.syn", "mesa.syn", "bzip2.syn"]
        names = [n for n in preferred if n in self.suite_names]
        names += [n for n in self.suite_names if n not in names]
        return names[:count]

    # ------------------------------------------------------------------
    # Session-layer sweeps
    # ------------------------------------------------------------------
    @property
    def session(self):
        """The :class:`repro.api.Session` used for suite sweeps."""
        if self._session is None:
            from repro.api import Session

            self._session = Session(max_workers=self.max_workers,
                                    use_cache=self.use_cache)
        return self._session

    def estimation_spec(self, benchmark_name: str, machine_name: str,
                        metric: str = "cpi", max_rounds: int = 2):
        """The RunSpec for one suite-sweep cell (Fig 6/7/8 style)."""
        from repro.api import RunSpec, SystematicStrategy

        machine = self.machine(machine_name)
        return RunSpec(
            benchmark=benchmark_name,
            machine=machine_name,
            strategy=SystematicStrategy(
                unit_size=self.unit_size,
                n_init=self.n_init,
                max_rounds=max_rounds,
                detailed_warming=self.warming(machine),
                functional_warming=True,
            ),
            scale=self.scale,
            metric=metric,
            epsilon=self.epsilon,
            confidence=self.confidence,
            benchmark_length=self.reference(benchmark_name,
                                            machine_name).instructions,
            checkpoints=self.checkpoints,
        )

    def run_estimations(self, cells: list[tuple[str, str]],
                        metric: str = "cpi", max_rounds: int = 2) -> dict:
        """Execute a batch of (machine, benchmark) estimation cells.

        Returns ``{(machine, benchmark): RunResult}``; execution is
        parallel across cells when ``max_workers`` is set.
        """
        specs = [self.estimation_spec(benchmark, machine, metric=metric,
                                      max_rounds=max_rounds)
                 for machine, benchmark in cells]
        results = self.session.run_batch(specs)
        return dict(zip(cells, results))


@lru_cache(maxsize=1)
def default_context() -> StudyContext:
    """Process-wide study context (shared caches across benchmarks)."""
    return StudyContext()


# ----------------------------------------------------------------------
# Study definitions and registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Study:
    """One declarative experiment: a spec grid plus an analysis.

    Args:
        name: Registry key (also the CLI name, e.g. ``"fig6"``).
        title: Human-readable one-liner for listings.
        grid: ``grid(ctx, **params) -> list[RunSpec]`` building the
            study's run grid; ``None`` for pure-analysis studies.
        analyze: ``analyze(ctx, results, **params) -> dict`` turning the
            executed :class:`ResultSet` into the experiment payload
            (must include a formatted ``"report"`` string).
        tidy: Optional ``tidy(data) -> list[dict]`` flattening the
            payload into tidy rows for CSV/JSON export.
        legacy: Name of the deprecated ``repro.harness.experiments``
            shim that delegates to this study (documentation only).
    """

    name: str
    title: str
    analyze: Callable[..., dict]
    grid: Callable[..., list] | None = None
    tidy: Callable[[dict], list[dict]] | None = None
    legacy: str = ""

    def describe(self) -> dict:
        """Flat metadata row for ``study ls`` style listings."""
        return {
            "name": self.name,
            "title": self.title,
            "has_grid": self.grid is not None,
            "legacy": self.legacy,
        }


STUDIES: dict[str, Study] = {}


def register_study(study: Study) -> Study:
    """Add a study to the global registry (idempotent per name/object)."""
    existing = STUDIES.get(study.name)
    if existing is not None and existing is not study:
        raise ValueError(f"study name {study.name!r} already registered")
    STUDIES[study.name] = study
    return study


def get_study(name: str) -> Study:
    """Look up a registered study by name."""
    try:
        return STUDIES[name]
    except KeyError:
        raise KeyError(f"unknown study {name!r}; "
                       f"available: {sorted(STUDIES)}") from None


def study_names() -> tuple[str, ...]:
    """Registered study names, in registration order."""
    return tuple(STUDIES)


@dataclass
class StudyReport:
    """What :meth:`Session.run_study` returns.

    ``data`` is the study's full payload — identical, for the migrated
    paper experiments, to what the legacy harness entry point returned
    (the golden contract the tests assert).  ``rows`` is the tidy
    flattening, and ``results`` the executed grid (empty for
    pure-analysis studies).
    """

    study: str
    title: str
    data: dict
    rows: list[dict] = field(default_factory=list)
    results: ResultSet = field(default_factory=ResultSet)

    @property
    def report(self) -> str:
        """The formatted text report."""
        return self.data.get("report", "")

    def rows_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.rows, indent=indent, sort_keys=True,
                          default=_json_default)

    def rows_csv(self) -> str:
        return rows_to_csv(self.rows)


def _json_default(value):
    """Encode the numpy scalars that slip into tidy rows."""
    import numpy as np

    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)
