"""ResultSet: a queryable container over executed RunResults.

A :class:`ResultSet` is what a study's grid execution produces: an
ordered, immutable collection of :class:`~repro.api.spec.RunResult`
objects with the small set of operations every analysis needs —
filtering, group-by/aggregate, tidy-row export (JSON/CSV), and table
rendering.  Nothing here knows about specific experiments; the study
definitions in :mod:`repro.api.studies` compose these primitives.

Tidy rows are flat ``{column: scalar}`` dictionaries (one per run),
combining the spec's identifying fields with the result's headline
numbers, so they feed straight into CSV files, JSON payloads, or
:func:`~repro.harness.reporting.format_table`.
"""

from __future__ import annotations

import csv
import io
import json
import statistics
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.api.spec import RunResult

#: Named reducers accepted (by name) wherever an aggregation is spec'd.
#: ``std`` is the population standard deviation (matches ``np.std``).
AGGREGATORS: dict[str, Callable[[list], object]] = {
    "mean": statistics.fmean,
    "median": statistics.median,
    "min": min,
    "max": max,
    "sum": sum,
    "count": len,
    "std": statistics.pstdev,
    "first": lambda vs: vs[0],
    "last": lambda vs: vs[-1],
}


def result_row(result: RunResult) -> dict:
    """The tidy (flat, scalar-valued) row for one RunResult."""
    spec = result.spec
    return {
        "benchmark": spec.benchmark,
        "machine": spec.machine,
        "strategy": spec.strategy.name,
        "metric": spec.metric,
        "scale": spec.scale,
        "seed": spec.seed,
        "epsilon": spec.epsilon,
        "confidence": spec.confidence,
        "estimate": result.estimate_mean,
        "cv": result.estimate_cv,
        "ci": result.confidence_interval,
        "target_met": result.target_met,
        "sample_size": result.sample_size,
        "population_size": result.population_size,
        "benchmark_length": result.benchmark_length,
        "rounds": result.rounds,
        "instructions_measured": result.instructions_measured,
        "detailed_fraction": result.detailed_fraction,
        "checkpoint_restores": result.checkpoint_restores,
        "wall_seconds": result.wall_seconds,
    }


def _resolve_aggregator(func) -> Callable[[list], object]:
    if callable(func):
        return func
    try:
        return AGGREGATORS[func]
    except KeyError:
        raise KeyError(f"unknown aggregator {func!r}; "
                       f"available: {sorted(AGGREGATORS)}") from None


class ResultSet(Sequence):
    """An ordered collection of RunResults with query/export helpers."""

    def __init__(self, results: Iterable[RunResult] = ()):
        self._results: list[RunResult] = list(results)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self._results)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(self._results[index])
        return self._results[index]

    def __repr__(self) -> str:
        return f"ResultSet({len(self._results)} results)"

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[RunResult], bool] | None = None,
               **fields) -> "ResultSet":
        """Results matching a predicate and/or tidy-field equalities.

        Keyword values are compared against the result's tidy row
        (``benchmark="gcc.syn"``); a callable value is applied to the
        field instead (``ci=lambda v: v < 0.05``).
        """
        kept = []
        for result in self._results:
            if predicate is not None and not predicate(result):
                continue
            row = result_row(result)
            if all(value(row[key]) if callable(value) else row[key] == value
                   for key, value in fields.items()):
                kept.append(result)
        return ResultSet(kept)

    def sorted_by(self, *keys: str, reverse: bool = False) -> "ResultSet":
        """A copy ordered by the given tidy-row columns."""
        return ResultSet(sorted(
            self._results,
            key=lambda r: tuple(result_row(r)[k] for k in keys),
            reverse=reverse))

    def by_cell(self) -> dict[tuple[str, str], RunResult]:
        """Index results by the ``(machine, benchmark)`` grid cell.

        Raises :class:`ValueError` when two results share a cell (a grid
        that varies something else per cell — epsilon, seed, strategy —
        must be indexed with :meth:`filter`/:meth:`groupby` instead, not
        silently collapsed).
        """
        cells: dict[tuple[str, str], RunResult] = {}
        for result in self._results:
            key = (result.spec.machine, result.spec.benchmark)
            if key in cells:
                raise ValueError(
                    f"multiple results for cell {key}; use filter()/"
                    f"groupby() for grids with several specs per cell")
            cells[key] = result
        return cells

    def groupby(self, *keys: str) -> "GroupedResults":
        """Group by tidy-row columns, preserving first-seen group order."""
        if not keys:
            raise ValueError("groupby needs at least one key")
        groups: dict[tuple, list[RunResult]] = {}
        for result in self._results:
            row = result_row(result)
            groups.setdefault(tuple(row[k] for k in keys), []).append(result)
        return GroupedResults(keys, {k: ResultSet(v)
                                     for k, v in groups.items()})

    def values(self, field: str) -> list:
        """The tidy-row column ``field`` across every result, in order."""
        return [result_row(r)[field] for r in self._results]

    def aggregate(self, **named) -> dict:
        """Reduce tidy-row columns over the whole set.

        Each keyword names an output and maps to ``(field, func)`` where
        ``func`` is an :data:`AGGREGATORS` name or a callable::

            rs.aggregate(mean_ci=("ci", "mean"), worst=("ci", "max"))
        """
        out = {}
        for name, (field, func) in named.items():
            values = self.values(field)
            if not values:
                raise ValueError("cannot aggregate an empty ResultSet")
            out[name] = _resolve_aggregator(func)(values)
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def rows(self) -> list[dict]:
        """Tidy rows (one flat dict per result)."""
        return [result_row(r) for r in self._results]

    def to_table(self, columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
        """Render the tidy rows with the repository table formatter."""
        from repro.harness.reporting import format_table

        rows = self.rows()
        if columns is None:
            columns = list(rows[0]) if rows else []
        return format_table(list(columns),
                            [[row[c] for c in columns] for row in rows],
                            title=title)

    def to_json(self, indent: int | None = 2) -> str:
        """Full-fidelity JSON (every RunResult payload, in order)."""
        return json.dumps([r.to_dict() for r in self._results],
                          indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "ResultSet":
        return cls(RunResult.from_dict(data) for data in json.loads(payload))

    def to_csv(self) -> str:
        """Tidy rows as CSV text (lossy: headline columns only)."""
        return rows_to_csv(self.rows())


class GroupedResults(Mapping):
    """The result of :meth:`ResultSet.groupby`: key tuple -> ResultSet."""

    def __init__(self, keys: Sequence[str],
                 groups: dict[tuple, ResultSet]):
        self.keys_ = tuple(keys)
        self._groups = dict(groups)

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._groups)

    def __getitem__(self, key) -> ResultSet:
        if not isinstance(key, tuple):
            key = (key,)
        return self._groups[key]

    def aggregate(self, **named) -> list[dict]:
        """One tidy row per group: the group keys plus the aggregates."""
        rows = []
        for key, members in self._groups.items():
            row = dict(zip(self.keys_, key))
            row.update(members.aggregate(**named))
            rows.append(row)
        return rows


# ----------------------------------------------------------------------
# Tidy-row CSV helpers (shared by ResultSet and StudyReport)
# ----------------------------------------------------------------------
def rows_to_csv(rows: Sequence[Mapping]) -> str:
    """Serialize flat dict rows as CSV (columns in first-seen order)."""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    for row in rows:
        writer.writerow({k: "" if row.get(k) is None else row.get(k)
                         for k in columns})
    return buffer.getvalue()


def _parse_cell(text: str):
    if text == "":
        return None
    if text == "True":
        return True
    if text == "False":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def rows_from_csv(payload: str) -> list[dict]:
    """Parse :func:`rows_to_csv` output back into typed flat dicts."""
    reader = csv.DictReader(io.StringIO(payload))
    return [{k: _parse_cell(v) for k, v in row.items()} for row in reader]


# ----------------------------------------------------------------------
# JSON coercion (shared by the CLI's --json paths and the server)
# ----------------------------------------------------------------------
def to_jsonable(value):
    """Recursively convert experiment data into JSON-encodable values.

    Study payloads mix plain dicts with numpy scalars/arrays, tuples,
    and dataclasses; this flattens all of them so ``json.dumps`` on the
    output never raises.  Tuple dictionary keys become ``"a/b"`` strings.
    """
    import dataclasses

    import numpy as np

    if isinstance(value, dict):
        return {_key_str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(dataclasses.asdict(value))
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _key_str(key):
    if isinstance(key, str):
        return key
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)
