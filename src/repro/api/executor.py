"""Spec execution: benchmark/machine resolution, caching, backends.

:func:`execute_spec` turns one :class:`~repro.api.spec.RunSpec` into a
:class:`~repro.api.spec.RunResult`.  :class:`Executor` runs batches of
specs, consulting the result namespace of the content-addressed
artifact store (:class:`~repro.store.ArtifactStore`) keyed by the
spec's content hash, and handing cache misses to a pluggable
:class:`~repro.backends.ExecutorBackend` — serial, local process pool,
or a file-based work queue drained by separate worker processes.  All
backends exchange plain dict payloads (the ``to_dict`` forms), so
nothing fancier than JSON-shaped data ever crosses a process boundary,
and all are bit-identical on ``estimates_dict()``.
"""

from __future__ import annotations

import time
import warnings
from pathlib import Path

from repro.checkpoint import CheckpointStore
from repro.config.machines import MachineConfig, get_config, scaled_16way, scaled_8way
from repro.functional.simulator import measure_program_length
from repro.isa.program import Program
from repro.store import ArtifactStore, register_artifact_kind
from repro.workloads.suite import get_benchmark, micro_benchmark
from repro.api.spec import RunResult, RunSpec

#: Bump when simulator behaviour changes in a way that invalidates
#: cached run results.  v3: functional warming mirrors the detailed
#: path's BTB recency updates (the path-independence fix the checkpoint
#: subsystem rests on), which perturbs warmed estimates slightly.
#: v4: truncated final units are excluded from CPI/EPI estimates and
#: serialized with a ``truncated`` flag, shifting estimates of runs
#: that sampled the stream end.
CACHE_VERSION = 4


def resolve_machine(name: str) -> MachineConfig:
    """Map a RunSpec machine name to a configuration.

    ``"8-way"`` and ``"16-way"`` resolve to the *scaled* Table 3
    configurations (the ones every workflow in this repository
    simulates); any other name is looked up in the full registry.
    """
    if name == "8-way":
        return scaled_8way()
    if name == "16-way":
        return scaled_16way()
    return get_config(name)


def resolve_benchmark(name: str, scale: float) -> Program:
    """Build the program for a RunSpec benchmark name."""
    if name == "micro.syn":
        return micro_benchmark().program
    return get_benchmark(name, scale=scale).program


def resolve_checkpoints(spec: RunSpec, program: Program | None = None,
                        machine: MachineConfig | None = None):
    """Load-or-build the checkpoint set a ``checkpoints="auto"`` spec uses.

    Returns None when the spec cannot use checkpoints: mode ``"off"``,
    a strategy without a unit size, or fast-forwarding without
    functional warming (snapshots capture *warmed* state, which a
    no-warming run must not see).
    """
    if spec.checkpoints != "auto":
        return None
    unit_size = getattr(spec.strategy, "unit_size", None)
    if unit_size is None:
        return None
    if not getattr(spec.strategy, "functional_warming", True):
        return None
    if program is None:
        program = resolve_benchmark(spec.benchmark, spec.scale)
    if machine is None:
        machine = resolve_machine(spec.machine)
    return CheckpointStore().get_or_build(program, machine, unit_size)


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one spec to completion (no caching, current process)."""
    start = time.perf_counter()
    program = resolve_benchmark(spec.benchmark, spec.scale)
    machine = resolve_machine(spec.machine)
    checkpoints = resolve_checkpoints(spec, program, machine)
    length = spec.benchmark_length
    if length is None:
        if checkpoints is not None:
            # The checkpoint build pass already measured the program.
            length = checkpoints.benchmark_length
        else:
            length = measure_program_length(program)
    outcome = spec.strategy.run(
        program, machine, length,
        metric=spec.metric,
        epsilon=spec.epsilon,
        confidence=spec.confidence,
        seed=spec.seed,
        checkpoints=checkpoints,
    )
    return RunResult.from_outcome(spec, outcome,
                                  wall_seconds=time.perf_counter() - start)


def _execute_payload(payload: dict) -> dict:
    """Worker entry point: dict spec in, dict result out (picklable)."""
    return execute_spec(RunSpec.from_dict(payload)).to_dict()


# ----------------------------------------------------------------------
# On-disk result cache (the store's ``result`` namespace)
# ----------------------------------------------------------------------
register_artifact_kind("result", ".json", f"--v{CACHE_VERSION}.json")


def default_run_cache_dir() -> Path:
    """Directory used to cache run results.

    Now the ``result`` namespace of the artifact store:
    ``REPRO_RUN_CACHE_DIR`` still wins as a legacy override, otherwise
    ``<REPRO_ARTIFACT_DIR or .artifacts>/result``.
    """
    return ArtifactStore().namespace_dir("result")


class ResultCache:
    """JSON-file-per-spec result cache keyed by the spec content hash.

    A thin adapter over the artifact store's ``result`` namespace.
    Entries stay *raw* JSON (no checksum frame) so operators — and the
    hardening tests — can read cache files directly with ``json.loads``.
    """

    def __init__(self, directory: Path | None = None, enabled: bool = True,
                 store: ArtifactStore | None = None):
        if store is None:
            overrides = {"result": directory} if directory else None
            store = ArtifactStore(enabled=enabled, overrides=overrides)
        self.store = store
        self.directory = store.namespace_dir("result")
        self.enabled = enabled

    def path(self, spec: RunSpec) -> Path:
        safe = spec.benchmark.replace("/", "_")
        return self.directory / f"{safe}--{spec.key()}--v{CACHE_VERSION}.json"

    def get(self, spec: RunSpec) -> RunResult | None:
        if not self.enabled:
            return None
        data = self.store.read_path(self.path(spec))
        if data is None:
            return None
        try:
            result = RunResult.from_json(data.decode())
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return None  # stale or corrupt entry: treat as a miss
        return result if result.spec == spec else None

    def put(self, result: RunResult) -> None:
        """Persist a result atomically; never raises on cache I/O failure.

        The store gives readers complete-entry-or-nothing semantics
        (per-writer tmp file + fsync + ``os.replace``; concurrent
        writers of the same spec last-rename-wins) — which is what lets
        many server worker threads/processes share one cache directory.
        An unwritable or full cache degrades to a warning: the computed
        result is still returned to the caller, it is just not memoized.
        """
        if not self.enabled:
            return
        path = self.path(result.spec)
        try:
            self.store.write_path(path, result.to_json().encode(),
                                  checksum=False)
        except OSError as exc:
            warnings.warn(f"result cache write to {path} failed ({exc}); "
                          f"continuing without caching", RuntimeWarning,
                          stacklevel=2)

    def stats(self) -> dict:
        """Entry counts and on-disk footprint, for service introspection.

        ``entries`` counts current-version result files; ``stale_files``
        everything else in the directory (older cache versions, orphaned
        tmp files from killed writers).
        """
        entries = stale = size_bytes = 0
        if self.directory.is_dir():
            for item in self.directory.iterdir():
                if not item.is_file():
                    continue
                try:
                    size_bytes += item.stat().st_size
                except OSError:
                    continue
                if item.name.endswith(f"--v{CACHE_VERSION}.json"):
                    entries += 1
                else:
                    stale += 1
        return {
            "directory": str(self.directory),
            "enabled": self.enabled,
            "version": CACHE_VERSION,
            "entries": entries,
            "stale_files": stale,
            "size_bytes": size_bytes,
        }


# ----------------------------------------------------------------------
# Batch executor
# ----------------------------------------------------------------------
class Executor:
    """Runs batches of RunSpecs with caching over a pluggable backend.

    ``backend`` accepts an :class:`~repro.backends.ExecutorBackend`
    instance, class, or registered name (``"serial"``, ``"local-pool"``,
    ``"queue"``).  When None, ``REPRO_BACKEND`` is consulted, and
    failing that the historical auto policy applies: ``max_workers``
    <= 1 (or None) or a single cache miss runs serially in-process,
    anything larger fans across the local process pool.  Results come
    back in spec order on every backend, and — because every spec is
    deterministic — with identical estimates on every backend.

    :meth:`run_report` is the partial-failure entry point: it returns a
    :class:`~repro.reliability.BatchReport` pairing completed results
    with per-spec :class:`~repro.reliability.SpecFailure` envelopes.
    :meth:`run` keeps the historical list-of-results signature by
    raising :class:`~repro.reliability.BatchExecutionError` when any
    spec failed — the exception carries the full report, so completed
    work is never discarded.
    """

    def __init__(self, max_workers: int | None = None,
                 cache: ResultCache | None = None,
                 backend=None):
        self.max_workers = max_workers
        self.cache = cache if cache is not None else ResultCache()
        self.backend = backend

    def _resolve_backend(self, n_misses: int, max_workers: int | None):
        from repro.backends import (LocalPoolBackend, SerialBackend,
                                    backend_from_env, resolve_backend)

        if self.backend is not None:
            return resolve_backend(self.backend)
        ambient = backend_from_env()
        if ambient is not None:
            return ambient
        if max_workers is None or max_workers <= 1 or n_misses == 1:
            return SerialBackend()
        return LocalPoolBackend()

    def run_report(self, specs: list[RunSpec],
                   max_workers: int | None = None) -> "BatchReport":
        """Run the batch; report every spec's outcome, never raise.

        Cache hits become completed entries without touching a backend;
        misses go through the resolved backend's envelope contract.
        Only genuine :class:`~repro.api.spec.RunResult` outcomes are
        written back to the cache.
        """
        from repro.reliability.report import BatchReport, SpecFailure

        if max_workers is None:
            max_workers = self.max_workers
        entries: list[RunResult | SpecFailure | None] = []
        misses: list[int] = []
        for i, spec in enumerate(specs):
            cached = self.cache.get(spec)
            entries.append(cached)
            if cached is None:
                misses.append(i)

        if misses:
            backend = self._resolve_backend(len(misses), max_workers)
            if backend.prebuild:
                # Build any missing checkpoint sets once, up front: the
                # artifact store is the sharing medium, so concurrent
                # workers (pool processes, queue workers on any host)
                # load by key instead of racing to rebuild the same
                # warming pass.  Only specs that actually got a set mark
                # their key as done — resolve_checkpoints declines some
                # auto specs (e.g. functional_warming=False), and such a
                # spec must not suppress the prebuild for an eligible
                # twin.  A failed prebuild must not kill the batch: the
                # affected spec will rebuild (or fail) inside its own
                # worker, where the per-spec envelope captures it.
                seen: set[tuple] = set()
                for i in misses:
                    spec = specs[i]
                    key = (spec.benchmark, spec.scale, spec.machine,
                           getattr(spec.strategy, "unit_size", None))
                    if key in seen:
                        continue
                    try:
                        if resolve_checkpoints(spec) is not None:
                            seen.add(key)
                    except Exception:  # noqa: BLE001 — deferred to worker
                        continue
            fresh = backend.run_specs([specs[i] for i in misses],
                                      max_workers=max_workers,
                                      use_cache=self.cache.enabled)
            for i, outcome in zip(misses, fresh):
                if isinstance(outcome, RunResult):
                    self.cache.put(outcome)
                entries[i] = outcome
        return BatchReport(entries=entries)  # type: ignore[arg-type]

    def run(self, specs: list[RunSpec],
            max_workers: int | None = None) -> list[RunResult]:
        """Run the batch and return results in spec order.

        Raises :class:`~repro.reliability.BatchExecutionError` if any
        spec failed; the exception's ``report`` attribute still carries
        every completed sibling's result.
        """
        return self.run_report(specs, max_workers=max_workers).results
