"""Spec execution: benchmark/machine resolution, caching, parallelism.

:func:`execute_spec` turns one :class:`~repro.api.spec.RunSpec` into a
:class:`~repro.api.spec.RunResult`.  :class:`Executor` runs batches of
specs, consulting an on-disk JSON cache keyed by the spec's content hash
and fanning cache misses across ``concurrent.futures``
ProcessPoolExecutor workers.  Workers exchange plain dict payloads (the
``to_dict`` forms), so nothing fancier than JSON-shaped data ever
crosses the process boundary.

The pool uses the ``fork`` start context where available: forked workers
inherit the parent's interpreter state, which keeps benchmark
construction bit-identical between serial and parallel execution.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.checkpoint import CheckpointStore
from repro.config.machines import MachineConfig, get_config, scaled_16way, scaled_8way
from repro.functional.simulator import measure_program_length
from repro.isa.program import Program
from repro.paths import project_cache_dir
from repro.workloads.suite import get_benchmark, micro_benchmark
from repro.api.spec import RunResult, RunSpec

#: Bump when simulator behaviour changes in a way that invalidates
#: cached run results.  v3: functional warming mirrors the detailed
#: path's BTB recency updates (the path-independence fix the checkpoint
#: subsystem rests on), which perturbs warmed estimates slightly.
#: v4: truncated final units are excluded from CPI/EPI estimates and
#: serialized with a ``truncated`` flag, shifting estimates of runs
#: that sampled the stream end.
CACHE_VERSION = 4


def resolve_machine(name: str) -> MachineConfig:
    """Map a RunSpec machine name to a configuration.

    ``"8-way"`` and ``"16-way"`` resolve to the *scaled* Table 3
    configurations (the ones every workflow in this repository
    simulates); any other name is looked up in the full registry.
    """
    if name == "8-way":
        return scaled_8way()
    if name == "16-way":
        return scaled_16way()
    return get_config(name)


def resolve_benchmark(name: str, scale: float) -> Program:
    """Build the program for a RunSpec benchmark name."""
    if name == "micro.syn":
        return micro_benchmark().program
    return get_benchmark(name, scale=scale).program


def resolve_checkpoints(spec: RunSpec, program: Program | None = None,
                        machine: MachineConfig | None = None):
    """Load-or-build the checkpoint set a ``checkpoints="auto"`` spec uses.

    Returns None when the spec cannot use checkpoints: mode ``"off"``,
    a strategy without a unit size, or fast-forwarding without
    functional warming (snapshots capture *warmed* state, which a
    no-warming run must not see).
    """
    if spec.checkpoints != "auto":
        return None
    unit_size = getattr(spec.strategy, "unit_size", None)
    if unit_size is None:
        return None
    if not getattr(spec.strategy, "functional_warming", True):
        return None
    if program is None:
        program = resolve_benchmark(spec.benchmark, spec.scale)
    if machine is None:
        machine = resolve_machine(spec.machine)
    return CheckpointStore().get_or_build(program, machine, unit_size)


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one spec to completion (no caching, current process)."""
    start = time.perf_counter()
    program = resolve_benchmark(spec.benchmark, spec.scale)
    machine = resolve_machine(spec.machine)
    checkpoints = resolve_checkpoints(spec, program, machine)
    length = spec.benchmark_length
    if length is None:
        if checkpoints is not None:
            # The checkpoint build pass already measured the program.
            length = checkpoints.benchmark_length
        else:
            length = measure_program_length(program)
    outcome = spec.strategy.run(
        program, machine, length,
        metric=spec.metric,
        epsilon=spec.epsilon,
        confidence=spec.confidence,
        seed=spec.seed,
        checkpoints=checkpoints,
    )
    return RunResult.from_outcome(spec, outcome,
                                  wall_seconds=time.perf_counter() - start)


def _execute_payload(payload: dict) -> dict:
    """Worker entry point: dict spec in, dict result out (picklable)."""
    return execute_spec(RunSpec.from_dict(payload)).to_dict()


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
def default_run_cache_dir() -> Path:
    """Directory used to cache run results (``REPRO_RUN_CACHE_DIR``)."""
    return project_cache_dir("REPRO_RUN_CACHE_DIR", ".run_cache")


class ResultCache:
    """JSON-file-per-spec result cache keyed by the spec content hash."""

    def __init__(self, directory: Path | None = None, enabled: bool = True):
        self.directory = Path(directory) if directory else default_run_cache_dir()
        self.enabled = enabled

    def path(self, spec: RunSpec) -> Path:
        safe = spec.benchmark.replace("/", "_")
        return self.directory / f"{safe}--{spec.key()}--v{CACHE_VERSION}.json"

    def get(self, spec: RunSpec) -> RunResult | None:
        if not self.enabled:
            return None
        path = self.path(spec)
        if not path.exists():
            return None
        try:
            result = RunResult.from_json(path.read_text())
        except (ValueError, KeyError, TypeError):
            return None  # stale or corrupt entry: treat as a miss
        return result if result.spec == spec else None

    def put(self, result: RunResult) -> None:
        """Persist a result atomically; never raises on cache I/O failure.

        Readers can only ever observe a complete entry: the payload is
        written to a per-writer tmp file, flushed and fsynced, then
        renamed over the final path with ``os.replace``.  Concurrent
        writers of the same spec each rename their own file (last one
        wins) instead of racing on a shared tmp path — which is what
        lets many server worker threads/processes share one cache
        directory.  An unwritable or full cache degrades to a warning:
        the computed result is still returned to the caller, it is just
        not memoized.
        """
        if not self.enabled:
            return
        path = self.path(result.spec)
        tmp = path.with_suffix(f".{os.getpid()}-{threading.get_ident()}.tmp")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w") as handle:
                handle.write(result.to_json())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            warnings.warn(f"result cache write to {path} failed ({exc}); "
                          f"continuing without caching", RuntimeWarning,
                          stacklevel=2)
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def stats(self) -> dict:
        """Entry counts and on-disk footprint, for service introspection.

        ``entries`` counts current-version result files; ``stale_files``
        everything else in the directory (older cache versions, orphaned
        tmp files from killed writers).
        """
        entries = stale = size_bytes = 0
        if self.directory.is_dir():
            for item in self.directory.iterdir():
                if not item.is_file():
                    continue
                try:
                    size_bytes += item.stat().st_size
                except OSError:
                    continue
                if item.name.endswith(f"--v{CACHE_VERSION}.json"):
                    entries += 1
                else:
                    stale += 1
        return {
            "directory": str(self.directory),
            "enabled": self.enabled,
            "version": CACHE_VERSION,
            "entries": entries,
            "stale_files": stale,
            "size_bytes": size_bytes,
        }


# ----------------------------------------------------------------------
# Batch executor
# ----------------------------------------------------------------------
class Executor:
    """Runs batches of RunSpecs with caching and optional parallelism.

    ``max_workers`` <= 1 (or None) runs everything serially in-process;
    larger values fan cache misses across a process pool.  Results come
    back in spec order either way, and — because every spec is
    deterministic — with identical estimates either way.
    """

    def __init__(self, max_workers: int | None = None,
                 cache: ResultCache | None = None):
        self.max_workers = max_workers
        self.cache = cache if cache is not None else ResultCache()

    def run(self, specs: list[RunSpec],
            max_workers: int | None = None) -> list[RunResult]:
        if max_workers is None:
            max_workers = self.max_workers
        results: list[RunResult | None] = []
        misses: list[int] = []
        for i, spec in enumerate(specs):
            cached = self.cache.get(spec)
            results.append(cached)
            if cached is None:
                misses.append(i)

        if misses:
            if max_workers is None or max_workers <= 1 or len(misses) == 1:
                fresh = [execute_spec(specs[i]) for i in misses]
            else:
                # Build any missing checkpoint sets once, up front: the
                # on-disk store is the sharing medium, so workers load
                # instead of racing to rebuild the same warming pass.
                # Only specs that actually got a set mark their key as
                # done — resolve_checkpoints declines some auto specs
                # (e.g. functional_warming=False), and such a spec must
                # not suppress the prebuild for an eligible twin.
                seen: set[tuple] = set()
                for i in misses:
                    spec = specs[i]
                    key = (spec.benchmark, spec.scale, spec.machine,
                           getattr(spec.strategy, "unit_size", None))
                    if key not in seen and resolve_checkpoints(spec) is not None:
                        seen.add(key)
                fresh = self._run_parallel([specs[i] for i in misses],
                                           max_workers)
            for i, result in zip(misses, fresh):
                self.cache.put(result)
                results[i] = result
        return results  # type: ignore[return-value]

    @staticmethod
    def _run_parallel(specs: list[RunSpec],
                      max_workers: int) -> list[RunResult]:
        payloads = [spec.to_dict() for spec in specs]
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            context = multiprocessing.get_context()
        workers = min(max_workers, len(specs))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            return [RunResult.from_dict(data)
                    for data in pool.map(_execute_payload, payloads)]
