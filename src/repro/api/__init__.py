"""repro.api — the unified public entry point of the library.

This package is the supported surface for building workflows on the
SMARTS reproduction.  It provides:

* :class:`Session` — facade with caching and parallel batch execution,
* :class:`RunSpec` / :class:`RunResult` — declarative, JSON-serializable
  run contracts,
* the pluggable sampling strategies (:class:`SystematicStrategy`,
  :class:`AdaptiveStrategy`, :class:`RandomStrategy`,
  :class:`StratifiedStrategy`) and their registry,
* the declarative experiment layer — :class:`Study` /
  :class:`StudyReport` / :class:`StudyContext`, the study registry
  (every paper table/figure is a registered study; see
  :mod:`repro.api.studies`), and the :class:`ResultSet` container with
  filtering, group-by/aggregate, and tidy-row export,
* passthroughs for the supporting workflows the CLI and examples need
  (benchmark suite listing, reference simulation, the SimPoint baseline,
  and table formatting), so downstream code can import *only* from
  ``repro.api``.

See API.md at the repository root for a quickstart and migration notes
from direct ``SmartsEngine`` wiring.
"""

from __future__ import annotations

import importlib
from functools import partial

from repro.checkpoint import (
    DEFAULT_STRIDE,
    CheckpointSet,
    CheckpointStore,
    StaleCheckpointWarning,
    build_checkpoints,
    default_checkpoint_dir,
)
from repro.backends import (
    BACKENDS,
    ExecutorBackend,
    LocalPoolBackend,
    QueueBackend,
    SerialBackend,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.config import MachineConfig, scaled_16way, scaled_8way
from repro.core.procedure import recommended_warming
from repro.core.stats import CONFIDENCE_95, CONFIDENCE_997, DEFAULT_EPSILON
from repro.reliability import (
    BatchExecutionError,
    BatchReport,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    RetryPolicy,
    SpecFailure,
)
from repro.store import (
    ArtifactCorruptionWarning,
    ArtifactStore,
    default_artifact_dir,
    fingerprint,
)
from repro.workloads import (
    EXTRA_NAMES,
    SUITE_NAMES,
    extra_specs,
    get_benchmark,
    suite_specs,
)
from repro.api.spec import RunResult, RunSpec
from repro.api.strategies import (
    STRATEGIES,
    AdaptiveStrategy,
    RandomStrategy,
    SamplingStrategy,
    StratifiedStrategy,
    StrategyOutcome,
    SystematicStrategy,
    get_strategy,
    register_strategy,
    strategy_from_dict,
)
from repro.api.executor import (
    Executor,
    ResultCache,
    default_run_cache_dir,
    execute_spec,
    resolve_benchmark,
    resolve_checkpoints,
    resolve_machine,
)
from repro.api.session import Session, run_spec
from repro.api.resultset import (
    AGGREGATORS,
    GroupedResults,
    ResultSet,
    result_row,
    rows_from_csv,
    rows_to_csv,
    to_jsonable,
)
from repro.api.study import (
    STUDIES,
    Study,
    StudyContext,
    StudyReport,
    default_context,
    get_study,
    register_study,
    study_names,
)

# Importing the definitions module populates the study registry with
# every paper table/figure (the import is for its registration side
# effect; the studies are reached through STUDIES / get_study).
import repro.api.studies  # noqa: E402,F401  (registry population)

#: Pre-study name of StudyContext (the class moved from
#: repro.harness.experiments; see that module's deprecation notes).
ExperimentContext = StudyContext

#: Names of the paper's tables/figures runnable via run_experiment().
EXPERIMENT_NAMES = study_names()


def run_study(study, ctx=None, params: dict | None = None,
              max_workers: int | None = None) -> "StudyReport":
    """Run a study through the context's session (module-level shortcut).

    Equivalent to ``ctx.session.run_study(study, ctx=ctx, params=params)``
    with ``ctx`` defaulting to the process-wide :func:`default_context`
    — so REPRO_WORKERS / REPRO_CHECKPOINTS and the shared reference
    caches all apply.  ``max_workers`` overrides the context's worker
    count (and therefore REPRO_WORKERS) for this invocation only; note
    that parallel wall-clock speedup is host-dependent (a single-core
    host gains nothing), while estimates are bit-identical either way.
    """
    if ctx is None:
        ctx = default_context()
    return ctx.session.run_study(study, ctx=ctx, params=params,
                                 max_workers=max_workers)


def run_experiment(name: str, ctx=None) -> dict:
    """Run one of the paper's table/figure experiments by name.

    Returns the experiment's data dictionary (rows plus a formatted
    ``"report"`` string) — the payload of :func:`run_study`'s report.
    ``ctx`` defaults to the process-wide :class:`StudyContext`.
    """
    return run_study(name, ctx=ctx).data


#: name -> callable(ctx=None) registry, matching the old cli.EXPERIMENTS.
EXPERIMENTS = {name: partial(run_experiment, name) for name in EXPERIMENT_NAMES}

#: Harness passthroughs resolved lazily (PEP 562) — the harness imports
#: repro.api for its suite sweeps, so importing it eagerly here would be
#: circular.
_LAZY_EXPORTS = {
    "format_table": ("repro.harness.reporting", "format_table"),
    "run_reference": ("repro.harness.reference", "run_reference"),
    "run_simpoint": ("repro.simpoint.estimator", "run_simpoint"),
    "estimate_metric": ("repro.core.procedure", "estimate_metric"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


__all__ = [
    "AGGREGATORS",
    "AdaptiveStrategy",
    "ArtifactCorruptionWarning",
    "ArtifactStore",
    "BACKENDS",
    "BatchExecutionError",
    "BatchReport",
    "CONFIDENCE_95",
    "CONFIDENCE_997",
    "CheckpointSet",
    "CheckpointStore",
    "DEFAULT_EPSILON",
    "DEFAULT_STRIDE",
    "EXPERIMENTS",
    "EXPERIMENT_NAMES",
    "EXTRA_NAMES",
    "Executor",
    "ExecutorBackend",
    "ExperimentContext",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "GroupedResults",
    "InjectedFault",
    "LocalPoolBackend",
    "MachineConfig",
    "QueueBackend",
    "ResultSet",
    "SerialBackend",
    "StaleCheckpointWarning",
    "RandomStrategy",
    "ResultCache",
    "RetryPolicy",
    "RunResult",
    "RunSpec",
    "SpecFailure",
    "SUITE_NAMES",
    "STRATEGIES",
    "STUDIES",
    "SamplingStrategy",
    "Session",
    "StratifiedStrategy",
    "StrategyOutcome",
    "Study",
    "StudyContext",
    "StudyReport",
    "SystematicStrategy",
    "build_checkpoints",
    "default_artifact_dir",
    "default_checkpoint_dir",
    "default_context",
    "default_run_cache_dir",
    "estimate_metric",
    "fingerprint",
    "get_backend",
    "execute_spec",
    "extra_specs",
    "format_table",
    "get_benchmark",
    "get_strategy",
    "get_study",
    "recommended_warming",
    "register_backend",
    "register_strategy",
    "register_study",
    "resolve_backend",
    "resolve_benchmark",
    "resolve_checkpoints",
    "resolve_machine",
    "result_row",
    "rows_from_csv",
    "rows_to_csv",
    "run_experiment",
    "run_reference",
    "run_simpoint",
    "run_spec",
    "run_study",
    "scaled_16way",
    "scaled_8way",
    "strategy_from_dict",
    "study_names",
    "suite_specs",
    "to_jsonable",
]
