"""repro.api — the unified public entry point of the library.

This package is the supported surface for building workflows on the
SMARTS reproduction.  It provides:

* :class:`Session` — facade with caching and parallel batch execution,
* :class:`RunSpec` / :class:`RunResult` — declarative, JSON-serializable
  run contracts,
* the pluggable sampling strategies (:class:`SystematicStrategy`,
  :class:`RandomStrategy`, :class:`StratifiedStrategy`) and their
  registry,
* passthroughs for the supporting workflows the CLI and examples need
  (benchmark suite listing, reference simulation, the SimPoint baseline,
  the per-figure experiments, and table formatting), so downstream code
  can import *only* from ``repro.api``.

See API.md at the repository root for a quickstart and migration notes
from direct ``SmartsEngine`` wiring.
"""

from __future__ import annotations

import importlib
from functools import partial

from repro.checkpoint import (
    DEFAULT_STRIDE,
    CheckpointSet,
    CheckpointStore,
    StaleCheckpointWarning,
    build_checkpoints,
    default_checkpoint_dir,
)
from repro.config import MachineConfig, scaled_16way, scaled_8way
from repro.core.procedure import recommended_warming
from repro.core.stats import CONFIDENCE_95, CONFIDENCE_997
from repro.workloads import SUITE_NAMES, get_benchmark, suite_specs
from repro.api.spec import RunResult, RunSpec
from repro.api.strategies import (
    STRATEGIES,
    RandomStrategy,
    SamplingStrategy,
    StratifiedStrategy,
    StrategyOutcome,
    SystematicStrategy,
    get_strategy,
    register_strategy,
    strategy_from_dict,
)
from repro.api.executor import (
    Executor,
    ResultCache,
    default_run_cache_dir,
    execute_spec,
    resolve_benchmark,
    resolve_checkpoints,
    resolve_machine,
)
from repro.api.session import Session, run_spec

#: Experiment name -> harness entry-point function name.  The single
#: source of truth for both EXPERIMENT_NAMES and run_experiment (the
#: harness module itself is imported lazily to avoid a circular import).
_EXPERIMENT_FUNCTIONS = {
    "table3": "table3_configurations",
    "fig2": "figure2_cv_curves",
    "fig3": "figure3_minimum_instructions",
    "fig4": "figure4_speed_model",
    "fig5": "figure5_optimal_unit_size",
    "table4": "table4_detailed_warming",
    "table5": "table5_functional_warming_bias",
    "fig6": "figure6_cpi_estimates",
    "fig7": "figure7_epi_estimates",
    "table6": "table6_runtimes",
    "fig8": "figure8_simpoint_comparison",
}

#: Names of the paper's tables/figures runnable via run_experiment().
EXPERIMENT_NAMES = tuple(_EXPERIMENT_FUNCTIONS)


def run_experiment(name: str, ctx=None) -> dict:
    """Run one of the paper's table/figure experiments by name.

    Returns the experiment's data dictionary (rows plus a formatted
    ``"report"`` string).  ``ctx`` defaults to the process-wide
    :class:`~repro.harness.experiments.ExperimentContext`.
    """
    from repro.harness import experiments as exp

    try:
        entry = getattr(exp, _EXPERIMENT_FUNCTIONS[name])
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"available: {sorted(_EXPERIMENT_FUNCTIONS)}") from None
    return entry(ctx if ctx is not None else exp.default_context())


#: name -> callable(ctx=None) registry, matching the old cli.EXPERIMENTS.
EXPERIMENTS = {name: partial(run_experiment, name) for name in EXPERIMENT_NAMES}

#: Harness passthroughs resolved lazily (PEP 562) — the harness imports
#: repro.api for its suite sweeps, so importing it eagerly here would be
#: circular.
_LAZY_EXPORTS = {
    "ExperimentContext": ("repro.harness.experiments", "ExperimentContext"),
    "default_context": ("repro.harness.experiments", "default_context"),
    "format_table": ("repro.harness.reporting", "format_table"),
    "run_reference": ("repro.harness.reference", "run_reference"),
    "run_simpoint": ("repro.simpoint.estimator", "run_simpoint"),
    "estimate_metric": ("repro.core.procedure", "estimate_metric"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


__all__ = [
    "CONFIDENCE_95",
    "CONFIDENCE_997",
    "CheckpointSet",
    "CheckpointStore",
    "DEFAULT_STRIDE",
    "EXPERIMENTS",
    "EXPERIMENT_NAMES",
    "Executor",
    "ExperimentContext",
    "MachineConfig",
    "StaleCheckpointWarning",
    "RandomStrategy",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "SUITE_NAMES",
    "STRATEGIES",
    "SamplingStrategy",
    "Session",
    "StratifiedStrategy",
    "StrategyOutcome",
    "SystematicStrategy",
    "build_checkpoints",
    "default_checkpoint_dir",
    "default_context",
    "default_run_cache_dir",
    "estimate_metric",
    "execute_spec",
    "format_table",
    "get_benchmark",
    "get_strategy",
    "recommended_warming",
    "register_strategy",
    "resolve_benchmark",
    "resolve_checkpoints",
    "resolve_machine",
    "run_experiment",
    "run_reference",
    "run_simpoint",
    "run_spec",
    "scaled_16way",
    "scaled_8way",
    "strategy_from_dict",
    "suite_specs",
]
