"""The Session facade: the one object user code needs.

A :class:`Session` owns an :class:`~repro.api.executor.Executor` (cache
directory, worker count) and exposes the library's workflows as a small
declarative surface::

    from repro.api import RunSpec, Session, SystematicStrategy

    session = Session()
    result = session.run(RunSpec(benchmark="gcc.syn", scale=0.2))
    results = session.run_batch(
        session.sweep_specs(benchmarks=["gcc.syn", "mcf.syn"],
                            machines=["8-way", "16-way"]),
        max_workers=4)

Everything a Session produces is a :class:`~repro.api.spec.RunResult`,
JSON-serializable and cached on disk by spec hash.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.stats import CONFIDENCE_997, DEFAULT_EPSILON
from repro.api.executor import Executor, ResultCache, execute_spec
from repro.api.resultset import ResultSet
from repro.api.spec import RunResult, RunSpec
from repro.api.strategies import SamplingStrategy, SystematicStrategy
from repro.api.study import Study, StudyReport, default_context, get_study


class Session:
    """Entry point for running sampled simulations declaratively.

    Args:
        max_workers: Default worker-process count for batches; ``None``
            or 1 runs serially.
        cache_dir: On-disk result cache directory (default:
            ``.run_cache`` at the repository root, or
            ``REPRO_RUN_CACHE_DIR``).
        use_cache: Disable to bypass the *run-result* cache — every run
            is recomputed and no result is read from or written to
            disk.  (The checkpoint store is separate: specs with
            ``checkpoints="auto"`` still use it, and stratified runs
            opportunistically cache their BBV profile there —
            degrading to in-memory profiling when the store directory
            is unwritable, and disabled per strategy with
            ``StratifiedStrategy(profile_cache=False)`` — a
            process-local flag that does not reach parallel pool
            workers.  Point ``REPRO_CHECKPOINT_DIR`` elsewhere for
            isolation that covers every execution mode.)
        checkpoints: Default checkpoint mode (``"off"`` or ``"auto"``)
            applied by :meth:`estimate` when none is given explicitly;
            specs built elsewhere carry their own mode.
        backend: Execution backend for cache misses — an
            :class:`~repro.backends.ExecutorBackend` instance, class, or
            registered name (``"serial"``, ``"local-pool"``,
            ``"queue"``).  ``None`` consults ``REPRO_BACKEND``, then
            falls back to the automatic serial/local-pool choice.
    """

    def __init__(self, max_workers: int | None = None,
                 cache_dir: str | Path | None = None,
                 use_cache: bool = True,
                 checkpoints: str = "off",
                 backend=None):
        if checkpoints not in ("off", "auto"):
            raise ValueError("checkpoints must be 'off' or 'auto'")
        self.checkpoints = checkpoints
        self.executor = Executor(
            max_workers=max_workers,
            cache=ResultCache(cache_dir, enabled=use_cache),
            backend=backend,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> RunResult:
        """Execute one spec (through the cache)."""
        return self.executor.run([spec])[0]

    def run_batch(self, specs: Sequence[RunSpec],
                  max_workers: int | None = None) -> list[RunResult]:
        """Execute a batch of specs, in order, optionally in parallel.

        Parallel execution produces estimates identical to the serial
        path: every spec is deterministic and workers are forked from
        this process.

        Raises :class:`~repro.reliability.BatchExecutionError` when any
        spec fails after retries; the exception's ``report`` carries
        every completed sibling's result.  Use :meth:`run_batch_report`
        to handle partial failure without exceptions.
        """
        return self.executor.run(list(specs), max_workers=max_workers)

    def run_batch_report(self, specs: Sequence[RunSpec],
                         max_workers: int | None = None):
        """Execute a batch under the partial-failure contract.

        Returns a :class:`~repro.reliability.BatchReport`: one entry
        per spec, each a :class:`~repro.api.spec.RunResult` or a
        :class:`~repro.reliability.SpecFailure` envelope (error text,
        type, attempt count, transient/permanent classification).
        Never raises for spec failures.
        """
        return self.executor.run_report(list(specs),
                                        max_workers=max_workers)

    def run_study(self, study: Study | str, ctx=None,
                  params: dict | None = None,
                  max_workers: int | None = None) -> StudyReport:
        """Execute a declarative study: grid through the session, analyze.

        ``study`` is a :class:`~repro.api.study.Study` or a registered
        name (``"fig6"``).  The study's RunSpec grid — if it has one —
        executes through :meth:`run_batch` (cache, parallel workers,
        checkpoints all apply); the study's analysis then turns the
        :class:`ResultSet` into the experiment payload.  Each entry in
        ``params`` is forwarded to the grid builder and/or the analysis
        — whichever of the two accepts it by signature — so grids need
        not mirror analysis-only parameters; a name neither accepts
        raises :class:`TypeError` before anything runs.
        """
        if isinstance(study, str):
            study = get_study(study)
        if ctx is None:
            ctx = default_context()
        params = dict(params or {})
        grid_params = _accepted_params(study.grid, params) if study.grid \
            else {}
        analyze_params = _accepted_params(study.analyze, params)
        unknown = set(params) - set(grid_params) - set(analyze_params)
        if unknown:
            raise TypeError(f"study {study.name!r} accepts no parameter(s) "
                            f"{sorted(unknown)}")
        specs = list(study.grid(ctx, **grid_params)) if study.grid else []
        results = ResultSet(self.run_batch(specs, max_workers=max_workers))
        data = study.analyze(ctx, results, **analyze_params)
        rows = list(study.tidy(data)) if study.tidy else []
        return StudyReport(study=study.name, title=study.title,
                           data=data, rows=rows, results=results)

    # ------------------------------------------------------------------
    # Spec builders
    # ------------------------------------------------------------------
    @staticmethod
    def sweep_specs(benchmarks: Iterable[str],
                    machines: Iterable[str] = ("8-way",),
                    strategy: SamplingStrategy | None = None,
                    scale: float = 0.25,
                    metric: str = "cpi",
                    seed: int = 0,
                    epsilon: float = DEFAULT_EPSILON,
                    confidence: float = CONFIDENCE_997,
                    checkpoints: str = "off") -> list[RunSpec]:
        """Build the cross product benchmark x machine as RunSpecs."""
        if strategy is None:
            strategy = SystematicStrategy()
        return [
            RunSpec(benchmark=benchmark, machine=machine, strategy=strategy,
                    scale=scale, metric=metric, seed=seed, epsilon=epsilon,
                    confidence=confidence, checkpoints=checkpoints)
            for benchmark in benchmarks
            for machine in machines
        ]

    # ------------------------------------------------------------------
    # Convenience shims (the pre-Session call shapes)
    # ------------------------------------------------------------------
    def estimate(self, benchmark: str, machine: str = "8-way",
                 metric: str = "cpi", scale: float = 0.25, seed: int = 0,
                 epsilon: float = DEFAULT_EPSILON, confidence: float = CONFIDENCE_997,
                 strategy: SamplingStrategy | None = None,
                 benchmark_length: int | None = None,
                 checkpoints: str | None = None,
                 **strategy_params) -> RunResult:
        """One-call estimate, mirroring the old ``estimate_metric`` shape.

        Extra keyword arguments (``unit_size``, ``n_init``, ...) are
        forwarded to :class:`SystematicStrategy` when no explicit
        strategy is given.  ``checkpoints`` defaults to the session's
        mode.
        """
        if strategy is None:
            strategy = SystematicStrategy(**strategy_params)
        elif strategy_params:
            raise TypeError(
                "pass strategy parameters inside the strategy object, "
                f"not alongside it: {sorted(strategy_params)}")
        return self.run(RunSpec(
            benchmark=benchmark, machine=machine, strategy=strategy,
            scale=scale, metric=metric, seed=seed, epsilon=epsilon,
            confidence=confidence, benchmark_length=benchmark_length,
            checkpoints=self.checkpoints if checkpoints is None else checkpoints,
        ))


def _accepted_params(func, params: dict) -> dict:
    """The subset of ``params`` that ``func``'s signature accepts."""
    signature = inspect.signature(func)
    if any(p.kind is inspect.Parameter.VAR_KEYWORD
           for p in signature.parameters.values()):
        return dict(params)
    return {k: v for k, v in params.items() if k in signature.parameters}


def run_spec(spec: RunSpec) -> RunResult:
    """Execute one spec directly, bypassing session and cache."""
    return execute_spec(spec)
