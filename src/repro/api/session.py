"""The Session facade: the one object user code needs.

A :class:`Session` owns an :class:`~repro.api.executor.Executor` (cache
directory, worker count) and exposes the library's workflows as a small
declarative surface::

    from repro.api import RunSpec, Session, SystematicStrategy

    session = Session()
    result = session.run(RunSpec(benchmark="gcc.syn", scale=0.2))
    results = session.run_batch(
        session.sweep_specs(benchmarks=["gcc.syn", "mcf.syn"],
                            machines=["8-way", "16-way"]),
        max_workers=4)

Everything a Session produces is a :class:`~repro.api.spec.RunResult`,
JSON-serializable and cached on disk by spec hash.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.core.stats import CONFIDENCE_997
from repro.api.executor import Executor, ResultCache, execute_spec
from repro.api.spec import RunResult, RunSpec
from repro.api.strategies import SamplingStrategy, SystematicStrategy


class Session:
    """Entry point for running sampled simulations declaratively.

    Args:
        max_workers: Default worker-process count for batches; ``None``
            or 1 runs serially.
        cache_dir: On-disk result cache directory (default:
            ``.run_cache`` at the repository root, or
            ``REPRO_RUN_CACHE_DIR``).
        use_cache: Disable to bypass the *run-result* cache — every run
            is recomputed and no result is read from or written to
            disk.  (The checkpoint store is separate: specs with
            ``checkpoints="auto"`` still use it; point
            ``REPRO_CHECKPOINT_DIR`` somewhere writable or keep
            ``checkpoints="off"`` for fully read-only operation.)
        checkpoints: Default checkpoint mode (``"off"`` or ``"auto"``)
            applied by :meth:`estimate` when none is given explicitly;
            specs built elsewhere carry their own mode.
    """

    def __init__(self, max_workers: int | None = None,
                 cache_dir: str | Path | None = None,
                 use_cache: bool = True,
                 checkpoints: str = "off"):
        if checkpoints not in ("off", "auto"):
            raise ValueError("checkpoints must be 'off' or 'auto'")
        self.checkpoints = checkpoints
        self.executor = Executor(
            max_workers=max_workers,
            cache=ResultCache(cache_dir, enabled=use_cache),
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> RunResult:
        """Execute one spec (through the cache)."""
        return self.executor.run([spec])[0]

    def run_batch(self, specs: Sequence[RunSpec],
                  max_workers: int | None = None) -> list[RunResult]:
        """Execute a batch of specs, in order, optionally in parallel.

        Parallel execution produces estimates identical to the serial
        path: every spec is deterministic and workers are forked from
        this process.
        """
        return self.executor.run(list(specs), max_workers=max_workers)

    # ------------------------------------------------------------------
    # Spec builders
    # ------------------------------------------------------------------
    @staticmethod
    def sweep_specs(benchmarks: Iterable[str],
                    machines: Iterable[str] = ("8-way",),
                    strategy: SamplingStrategy | None = None,
                    scale: float = 0.25,
                    metric: str = "cpi",
                    seed: int = 0,
                    epsilon: float = 0.075,
                    confidence: float = CONFIDENCE_997,
                    checkpoints: str = "off") -> list[RunSpec]:
        """Build the cross product benchmark x machine as RunSpecs."""
        if strategy is None:
            strategy = SystematicStrategy()
        return [
            RunSpec(benchmark=benchmark, machine=machine, strategy=strategy,
                    scale=scale, metric=metric, seed=seed, epsilon=epsilon,
                    confidence=confidence, checkpoints=checkpoints)
            for benchmark in benchmarks
            for machine in machines
        ]

    # ------------------------------------------------------------------
    # Convenience shims (the pre-Session call shapes)
    # ------------------------------------------------------------------
    def estimate(self, benchmark: str, machine: str = "8-way",
                 metric: str = "cpi", scale: float = 0.25, seed: int = 0,
                 epsilon: float = 0.075, confidence: float = CONFIDENCE_997,
                 strategy: SamplingStrategy | None = None,
                 benchmark_length: int | None = None,
                 checkpoints: str | None = None,
                 **strategy_params) -> RunResult:
        """One-call estimate, mirroring the old ``estimate_metric`` shape.

        Extra keyword arguments (``unit_size``, ``n_init``, ...) are
        forwarded to :class:`SystematicStrategy` when no explicit
        strategy is given.  ``checkpoints`` defaults to the session's
        mode.
        """
        if strategy is None:
            strategy = SystematicStrategy(**strategy_params)
        elif strategy_params:
            raise TypeError(
                "pass strategy parameters inside the strategy object, "
                f"not alongside it: {sorted(strategy_params)}")
        return self.run(RunSpec(
            benchmark=benchmark, machine=machine, strategy=strategy,
            scale=scale, metric=metric, seed=seed, epsilon=epsilon,
            confidence=confidence, benchmark_length=benchmark_length,
            checkpoints=self.checkpoints if checkpoints is None else checkpoints,
        ))


def run_spec(spec: RunSpec) -> RunResult:
    """Execute one spec directly, bypassing session and cache."""
    return execute_spec(spec)
