"""Wattch-style activity-based energy model.

The paper estimates energy per instruction (EPI) with the Wattch 1.02
extensions to SimpleScalar.  Wattch charges a per-access energy to each
microarchitectural structure (derived from its capacity and geometry)
plus per-cycle clock-tree and conditional-clocking overheads.  This
module reproduces that structure: per-event energies are computed from
the machine configuration, multiplied by the activity counts the
detailed simulator collects, and a per-cycle component captures clocking
and idle power.

Absolute joule values are not meaningful for a synthetic technology
model; what the experiments rely on (and what the paper's Figure 7
studies) is that EPI is an instruction-level metric whose variability is
related to but smaller than CPI variability, because the per-instruction
energy baseline (fetch/decode/regfile/ALU) is constant while the
per-cycle clock component contributes the CPI-correlated part.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config.machines import MachineConfig
from repro.detailed.counters import PipelineCounters


def _array_access_energy(size_bytes: int, assoc: int) -> float:
    """Per-access energy (nJ) of a cache-like array.

    Modeled as proportional to the square root of capacity times a weak
    associativity factor — the standard first-order CACTI/Wattch scaling.
    """
    return 0.02 * math.sqrt(size_bytes / 1024.0) * (1.0 + 0.1 * assoc)


def _table_access_energy(entries: int) -> float:
    """Per-access energy (nJ) of a predictor/TLB-style table."""
    return 0.005 * math.sqrt(entries / 64.0)


@dataclass(frozen=True)
class EnergyParameters:
    """Per-event energies (nJ) and per-cycle power terms for one machine."""

    fetch: float
    decode: float
    rename: float
    window: float
    regfile_read: float
    regfile_write: float
    ialu: float
    imult: float
    fpalu: float
    fpmult: float
    l1i: float
    l1d: float
    l2: float
    mem: float
    bpred: float
    tlb: float
    clock_per_cycle: float
    leakage_per_cycle: float

    @classmethod
    def from_config(cls, config: MachineConfig) -> "EnergyParameters":
        """Derive per-event energies from the machine configuration."""
        width_factor = config.issue_width / 8.0
        window_factor = config.ruu_size / 128.0
        return cls(
            fetch=0.08 * width_factor,
            decode=0.05 * width_factor,
            rename=0.04 * window_factor,
            window=0.10 * window_factor,
            regfile_read=0.03 * width_factor,
            regfile_write=0.04 * width_factor,
            ialu=0.10,
            imult=0.35,
            fpalu=0.25,
            fpmult=0.60,
            l1i=_array_access_energy(config.l1i.size_bytes, config.l1i.assoc),
            l1d=_array_access_energy(config.l1d.size_bytes, config.l1d.assoc),
            l2=_array_access_energy(config.l2.size_bytes, config.l2.assoc) * 2.0,
            mem=6.0,
            bpred=_table_access_energy(config.branch.table_entries) * 3.0,
            tlb=_table_access_energy(config.itlb.entries + config.dtlb.entries),
            clock_per_cycle=0.30 * width_factor + 0.10 * window_factor,
            leakage_per_cycle=0.05 * width_factor,
        )


class EnergyModel:
    """Maps pipeline activity counters to total energy and EPI."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.params = EnergyParameters.from_config(config)

    def energy_breakdown(self, counters: PipelineCounters) -> dict[str, float]:
        """Energy (nJ) per structure for the counted interval."""
        p = self.params
        n = counters.instructions
        return {
            "fetch": p.fetch * counters.fetch_accesses + p.l1i * counters.fetch_accesses,
            "decode_rename": (p.decode + p.rename) * n,
            "window": p.window * counters.window_inserts,
            "regfile": (p.regfile_read * counters.regfile_reads
                        + p.regfile_write * counters.regfile_writes),
            "alu": (p.ialu * counters.ialu_ops
                    + p.imult * counters.imult_ops
                    + p.fpalu * counters.fpalu_ops
                    + p.fpmult * counters.fpmult_ops),
            "l1d": p.l1d * counters.l1d_accesses,
            "l2": p.l2 * counters.l2_accesses,
            "memory": p.mem * counters.l2_misses,
            "bpred": p.bpred * counters.branches,
            "tlb": p.tlb * (counters.itlb_misses + counters.dtlb_misses),
            "clock": p.clock_per_cycle * counters.cycles,
            "leakage": p.leakage_per_cycle * counters.cycles,
        }

    def total_energy(self, counters: PipelineCounters) -> float:
        """Total energy (nJ) for the counted interval."""
        return sum(self.energy_breakdown(counters).values())

    def epi(self, counters: PipelineCounters) -> float:
        """Energy per committed instruction (nJ/instruction)."""
        if counters.instructions == 0:
            return 0.0
        return self.total_energy(counters) / counters.instructions
