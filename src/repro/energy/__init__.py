"""Wattch-style energy modeling (energy per instruction)."""

from repro.energy.wattch import EnergyModel, EnergyParameters

__all__ = ["EnergyModel", "EnergyParameters"]
