"""Checkpointed functional warming: snapshot/restore of warm state.

SMARTS runtime is dominated by functional fast-forwarding and warming
between sampling units (Table 6): every run re-executes the whole
instruction stream functionally even though only a tiny fraction is
simulated in detail.  This package removes that bottleneck the way the
checkpointing literature does (and the way SimPoint amortizes its cost
across runs, Figure 8): one functional-warming pass over a program
serializes per-stride snapshots of architectural *and* warm
microarchitectural state; every subsequent run restores at each selected
sampling unit instead of re-fast-forwarding from instruction zero.

The subsystem is exact, not approximate: functional warming and detailed
simulation maintain the long-history state identically (see
``BranchUnit.warm``), so the state restored from a pure-warming snapshot
is bit-identical to the state the serial engine would have reached — and
therefore so are all estimates.  Snapshots are keyed by (program
fingerprint, machine *warm-geometry* fingerprint, unit size): runs that
differ only in detailed-timing parameters (latencies, widths, window
sizes) or in sampling design (strategy, k, j, n, W) reuse the same
checkpoints, while any change to cache/TLB/predictor geometry changes
the key and forces a rebuild.
"""

from repro.checkpoint.snapshot import (
    CHECKPOINT_VERSION,
    Snapshot,
    machine_warm_fingerprint,
    program_fingerprint,
)
from repro.checkpoint.store import (
    BBV_PROFILE_VERSION,
    DEFAULT_STRIDE,
    CheckpointSet,
    CheckpointStore,
    StaleCheckpointWarning,
    build_checkpoints,
    default_checkpoint_dir,
)

__all__ = [
    "BBV_PROFILE_VERSION",
    "CHECKPOINT_VERSION",
    "CheckpointSet",
    "CheckpointStore",
    "DEFAULT_STRIDE",
    "Snapshot",
    "StaleCheckpointWarning",
    "build_checkpoints",
    "default_checkpoint_dir",
    "machine_warm_fingerprint",
    "program_fingerprint",
]
