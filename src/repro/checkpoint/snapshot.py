"""Snapshot contents and the fingerprints that key the checkpoint store.

A :class:`Snapshot` captures everything needed to resume a run at one
stream position:

* architectural state — registers, PC, halt flag, and the *memory delta*
  of the stride that ended at this position (the sparse memory image
  only ever grows, so applying the deltas of the skipped strides in
  order on top of the current image reconstructs the exact memory at the
  snapshot position without storing the full image per snapshot);
* warm microarchitectural state — cache/TLB tag arrays with LRU order
  and dirty bits, branch direction tables, global history, BTB and RAS
  (:meth:`repro.detailed.state.MicroarchState.snapshot_state`).

Two fingerprints key a checkpoint set:

* :func:`program_fingerprint` — code, data segment and entry point, so a
  benchmark rebuilt at a different scale (or after a workload change)
  never reuses stale snapshots;
* :func:`machine_warm_fingerprint` — only the configuration parameters
  that *warm state depends on* (cache, TLB and branch-structure
  geometry).  Detailed-timing parameters (latencies, widths, RUU/LSQ,
  store buffer, MSHRs) are deliberately excluded: changing them changes
  timing but not warm state, so those runs reuse the same checkpoints.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.config.machines import MachineConfig
from repro.isa.program import Program

#: Bump when snapshot layout or warm-state semantics change in a way
#: that invalidates existing on-disk checkpoints.
CHECKPOINT_VERSION = 1


@dataclass
class Snapshot:
    """State at one stream position of a functional-warming pass."""

    position: int                      #: Instructions retired at capture.
    pc: int
    halted: bool
    int_regs: list = field(default_factory=list)
    fp_regs: list = field(default_factory=list)
    #: Final values of the addresses stored to during the stride that
    #: ended at ``position`` (word-aligned byte address -> value).
    mem_delta: dict = field(default_factory=dict)
    #: ``MicroarchState.snapshot_state()`` payload.
    micro: dict = field(default_factory=dict)


def program_fingerprint(program: Program) -> str:
    """Short content digest of a program (code + data + entry point).

    Memoized on the program object: fingerprints are consulted on every
    engine run with checkpoints, and programs are immutable once built.
    """
    cached = getattr(program, "_checkpoint_fingerprint", None)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    hasher.update(f"entry:{program.entry}".encode())
    for inst in program.instructions:
        hasher.update(str(inst).encode())
    for addr in sorted(program.data):
        hasher.update(f"{addr}:{program.data[addr]}".encode())
    digest = hasher.hexdigest()[:12]
    program._checkpoint_fingerprint = digest
    return digest


def machine_warm_fingerprint(config: MachineConfig) -> str:
    """Digest of the configuration parameters warm state depends on."""
    payload = {
        "l1i": [config.l1i.size_bytes, config.l1i.assoc, config.l1i.block_bytes],
        "l1d": [config.l1d.size_bytes, config.l1d.assoc, config.l1d.block_bytes],
        "l2": [config.l2.size_bytes, config.l2.assoc, config.l2.block_bytes],
        "itlb": [config.itlb.entries, config.itlb.assoc, config.itlb.page_bytes],
        "dtlb": [config.dtlb.entries, config.dtlb.assoc, config.dtlb.page_bytes],
        "branch": [
            config.branch.table_entries,
            config.branch.history_bits,
            config.branch.btb_entries,
            config.branch.btb_assoc,
            config.branch.ras_entries,
        ],
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:12]
