"""Snapshot contents and the fingerprints that key the checkpoint store.

A :class:`Snapshot` captures everything needed to resume a run at one
stream position:

* architectural state — registers, PC, halt flag, and the *memory delta*
  of the stride that ended at this position (the sparse memory image
  only ever grows, so applying the deltas of the skipped strides in
  order on top of the current image reconstructs the exact memory at the
  snapshot position without storing the full image per snapshot);
* warm microarchitectural state — cache/TLB tag arrays with LRU order
  and dirty bits, branch direction tables, global history, BTB and RAS
  (:meth:`repro.detailed.state.MicroarchState.snapshot_state`).

Two fingerprints key a checkpoint set:

* :func:`program_fingerprint` — code, data segment and entry point, so a
  benchmark rebuilt at a different scale (or after a workload change)
  never reuses stale snapshots;
* :func:`machine_warm_fingerprint` — only the configuration parameters
  that *warm state depends on* (cache, TLB and branch-structure
  geometry).  Detailed-timing parameters (latencies, widths, RUU/LSQ,
  store buffer, MSHRs) are deliberately excluded: changing them changes
  timing but not warm state, so those runs reuse the same checkpoints.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.config.machines import MachineConfig
from repro.isa.program import Program

#: Bump when snapshot layout or warm-state semantics change in a way
#: that invalidates existing on-disk checkpoints.  v2: warm
#: microarchitectural state is delta-encoded between consecutive
#: snapshots (full state only at the first snapshot), and sets may carry
#: warm-aligned off-grid snapshot positions.
CHECKPOINT_VERSION = 2


@dataclass
class Snapshot:
    """State at one stream position of a functional-warming pass."""

    position: int                      #: Instructions retired at capture.
    pc: int
    halted: bool
    #: Register files — full copies on base snapshots; empty on delta
    #: snapshots (changed entries live in ``micro_delta``).
    int_regs: list = field(default_factory=list)
    fp_regs: list = field(default_factory=list)
    #: Final values of the addresses stored to during the stride that
    #: ended at ``position`` (word-aligned byte address -> value).
    mem_delta: dict = field(default_factory=dict)
    #: ``MicroarchState.snapshot_state()`` payload — full warm state.
    #: In delta-encoded sets only the first snapshot carries it.
    micro: dict = field(default_factory=dict)
    #: Sparse warm-state and register changes against the previous
    #: snapshot (a :func:`micro_delta` record, laid out per
    #: :data:`DELTA_LAYOUT`); ``None`` on full snapshots.
    micro_delta: tuple | None = None


# ----------------------------------------------------------------------
# Warm-state delta encoding
# ----------------------------------------------------------------------
# Between consecutive snapshots (one stride, a few hundred instructions)
# only a handful of cache/TLB/BTB sets and predictor counters change, so
# storing per-structure sparse diffs instead of full tag arrays and
# counter tables shrinks checkpoint sets severalfold (the ROADMAP's
# ~3-5x estimate for the predictor tables alone).  Restore materializes
# the full state by replaying deltas forward from the set's first (full)
# snapshot; :class:`~repro.checkpoint.store.CheckpointSet` keeps a
# cursor so in-order restores replay each delta once.
_PREDICTOR_TABLES = ("bimodal", "gshare", "meta")


_HIERARCHY_STRUCTS = ("l1i", "l1d", "l2", "itlb", "dtlb")

#: Positional layout of a delta record: sparse ``{index: new value}``
#: dicts (``None`` when nothing changed) for the five hierarchy
#: structures' sets, the three predictor counter tables, and the two
#: register files, plus the gshare history, BTB changed-set dict, and
#: RAS contents stored outright (tiny).  A positional tuple instead of
#: nested keyed dicts keeps the per-snapshot framing overhead — paid
#: hundreds of times per set — near zero.
DELTA_LAYOUT = (*_HIERARCHY_STRUCTS, *_PREDICTOR_TABLES,
                "gshare_history", "btb", "ras", "int_regs", "fp_regs")


def _sparse(prev: list, curr: list) -> dict | None:
    """Changed-entry dict of ``curr`` against same-length ``prev``."""
    delta = {index: value for index, value in enumerate(curr)
             if value != prev[index]}
    return delta or None


def micro_delta(prev: tuple[dict, list, list],
                curr: tuple[dict, list, list]) -> tuple:
    """Sparse encoding of state ``curr`` against ``prev``.

    ``prev`` / ``curr`` are ``(warm_state, int_regs, fp_regs)`` triples
    (warm state as captured by ``MicroarchState.snapshot_state``).
    Cache/TLB/BTB state diffs per *set* (changed sets stored whole,
    preserving LRU order and dirty bits); predictor counter tables and
    the architectural register files diff per entry.  See
    :data:`DELTA_LAYOUT` for the record layout.
    """
    prev_micro, prev_int, prev_fp = prev
    curr_micro, curr_int, curr_fp = curr
    prev_hier, curr_hier = prev_micro["hierarchy"], curr_micro["hierarchy"]
    prev_branch, curr_branch = prev_micro["branch"], curr_micro["branch"]
    prev_pred, curr_pred = prev_branch["predictor"], curr_branch["predictor"]
    return (
        *(_sparse(prev_hier[name], curr_hier[name])
          for name in _HIERARCHY_STRUCTS),
        *(_sparse(prev_pred[table], curr_pred[table])
          for table in _PREDICTOR_TABLES),
        curr_pred["gshare_history"],
        _sparse(prev_branch["btb"], curr_branch["btb"]),
        curr_branch["ras"],
        _sparse(prev_int, curr_int),
        _sparse(prev_fp, curr_fp),
    )


def apply_micro_delta(state: tuple[dict, list, list], delta: tuple) -> None:
    """Apply a :func:`micro_delta` record to a full state in place.

    ``state`` must be an owned ``(warm_state, int_regs, fp_regs)`` copy
    (see :func:`copy_micro`): changed sets are replaced by references
    into the delta, which is never mutated afterwards, and consumers
    (``MicroarchState.restore_state``) copy on restore.
    """
    micro, int_regs, fp_regs = state
    (l1i, l1d, l2, itlb, dtlb, bimodal, gshare, meta,
     history, btb, ras, int_changes, fp_changes) = delta
    hierarchy = micro["hierarchy"]
    for name, changed in (("l1i", l1i), ("l1d", l1d), ("l2", l2),
                          ("itlb", itlb), ("dtlb", dtlb)):
        if changed:
            sets = hierarchy[name]
            for index, entry in changed.items():
                sets[index] = entry
    branch = micro["branch"]
    predictor = branch["predictor"]
    for table, changed in (("bimodal", bimodal), ("gshare", gshare),
                           ("meta", meta)):
        if changed:
            counters = predictor[table]
            for index, value in changed.items():
                counters[index] = value
    predictor["gshare_history"] = history
    if btb:
        btb_sets = branch["btb"]
        for index, entry in btb.items():
            btb_sets[index] = entry
    branch["ras"] = ras
    if int_changes:
        for index, value in int_changes.items():
            int_regs[index] = value
    if fp_changes:
        for index, value in fp_changes.items():
            fp_regs[index] = value


def copy_micro(state: dict) -> dict:
    """A copy of a full warm state that :func:`apply_micro_delta` may own.

    Only the containers the delta replay mutates are copied (outer set
    lists, counter tables, the dicts themselves); the per-set leaf lists
    are shared — replay replaces, never mutates, them.
    """
    predictor = state["branch"]["predictor"]
    return {
        "hierarchy": {name: list(sets)
                      for name, sets in state["hierarchy"].items()},
        "branch": {
            "predictor": {
                "bimodal": list(predictor["bimodal"]),
                "gshare": list(predictor["gshare"]),
                "gshare_history": predictor["gshare_history"],
                "meta": list(predictor["meta"]),
            },
            "btb": list(state["branch"]["btb"]),
            "ras": state["branch"]["ras"],
        },
    }


def program_fingerprint(program: Program) -> str:
    """Short content digest of a program (code + data + entry point).

    Memoized on the program object: fingerprints are consulted on every
    engine run with checkpoints, and programs are immutable once built.
    """
    cached = getattr(program, "_checkpoint_fingerprint", None)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    hasher.update(f"entry:{program.entry}".encode())
    for inst in program.instructions:
        hasher.update(str(inst).encode())
    for addr in sorted(program.data):
        hasher.update(f"{addr}:{program.data[addr]}".encode())
    digest = hasher.hexdigest()[:12]
    program._checkpoint_fingerprint = digest
    return digest


def machine_warm_fingerprint(config: MachineConfig) -> str:
    """Digest of the configuration parameters warm state depends on."""
    payload = {
        "l1i": [config.l1i.size_bytes, config.l1i.assoc, config.l1i.block_bytes],
        "l1d": [config.l1d.size_bytes, config.l1d.assoc, config.l1d.block_bytes],
        "l2": [config.l2.size_bytes, config.l2.assoc, config.l2.block_bytes],
        "itlb": [config.itlb.entries, config.itlb.assoc, config.itlb.page_bytes],
        "dtlb": [config.dtlb.entries, config.dtlb.assoc, config.dtlb.page_bytes],
        "branch": [
            config.branch.table_entries,
            config.branch.history_bits,
            config.branch.btb_entries,
            config.branch.btb_assoc,
            config.branch.ras_entries,
        ],
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:12]
