"""The on-disk checkpoint store: build, load, restore, list, collect.

One :class:`CheckpointSet` holds the snapshots of one functional-warming
pass over one program on one machine geometry, at a fixed snapshot
stride (a multiple of the sampling-unit size).  Sets are pickled and
LZMA-compressed into ``<checkpoint dir>/*.ckpt`` files named by the
fingerprints that key them, so any process (including forked sweep
workers) can reuse a set built by another.  Warm microarchitectural
state is stored as sparse per-stride deltas (full state only at the
first snapshot; see :func:`repro.checkpoint.snapshot.micro_delta`),
which — together with LZMA's large match window — shrinks sets several
times relative to the original full-state zlib format.

Restore semantics: within a run, sampling plans enumerate units in
ascending stream order, so restores are forward jumps.  Restoring to
snapshot *i* replaces registers/PC and warm microarchitectural state
wholesale and applies the memory deltas of exactly the strides being
skipped (those ending after the core's current position, in order).
Re-applying a delta whose stride partially precedes the current position
is safe: deltas store the *final* value of each written address at the
stride boundary, which lies on the same deterministic trajectory.
"""

from __future__ import annotations

import lzma
import pickle
import warnings
import zlib
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path

from repro.config.machines import MachineConfig
from repro.core.procedure import recommended_warming
from repro.detailed.state import MicroarchState
from repro.functional.engine import create_core
from repro.functional.simulator import FunctionalCore
from repro.functional.warming import FunctionalWarmer, warming_pass
from repro.isa.program import Program
from repro.store import ArtifactStore, record_pass, register_artifact_kind
from repro.checkpoint.snapshot import (
    CHECKPOINT_VERSION,
    Snapshot,
    apply_micro_delta,
    copy_micro,
    machine_warm_fingerprint,
    micro_delta,
    program_fingerprint,
)

#: Default snapshot stride, in sampling units: one snapshot every
#: ``stride * unit_size`` instructions.  The residual fast-forward per
#: restored unit is bounded by one stride (plus the detailed-warming
#: remainder), so smaller strides save more warming work at the cost of
#: proportionally more snapshots on disk.  The default must stay below
#: the typical inter-unit gap ``(k-1)·U − W`` of suite-scale systematic
#: runs, or no grid point falls inside the gaps and restores never fire.
DEFAULT_STRIDE = 4

#: Build-pass instruction budget (matches ``measure_program_length``).
DEFAULT_BUILD_LIMIT = 200_000_000

#: Format version of cached BBV profiles (bump on BBVProfile changes).
BBV_PROFILE_VERSION = 1

#: LZMA preset for checkpoint-set blobs.  LZMA's multi-megabyte match
#: window spans many snapshots (zlib's 32 KiB covers barely one), which
#: is what lets the residual redundancy across strides compress away.
_LZMA_PRESET = 6

register_artifact_kind("checkpoint", ".ckpt",
                       f"--v{CHECKPOINT_VERSION}.ckpt")
register_artifact_kind("bbv", ".bbvp", f"--v{BBV_PROFILE_VERSION}.bbvp")


def _pack(payload: dict) -> bytes:
    """Serialize a store payload to its on-disk representation."""
    return lzma.compress(pickle.dumps(payload, protocol=4),
                         preset=_LZMA_PRESET)


def _unpack(blob: bytes) -> dict:
    """Deserialize an on-disk blob (accepting the legacy zlib format,
    so ``entries``/``gc`` can still read sets written before v2)."""
    try:
        raw = lzma.decompress(blob)
    except lzma.LZMAError:
        raw = zlib.decompress(blob)
    return pickle.loads(raw)


class StaleCheckpointWarning(UserWarning):
    """Checkpoints exist for this program/unit but a different machine
    geometry (or snapshot format version); they will not be reused."""


@dataclass
class CheckpointSet:
    """Snapshots of one functional-warming pass, plus identity metadata."""

    benchmark: str
    machine: str
    program_hash: str
    machine_hash: str
    unit_size: int
    stride: int
    benchmark_length: int
    version: int = CHECKPOINT_VERSION
    snapshots: list[Snapshot] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._positions = [snap.position for snap in self.snapshots]
        # Delta-encoded warm state is materialized lazily; the cursor
        # makes a run's in-order restores replay each delta only once.
        self._micro_cursor = -1
        self._micro_materialized: dict | None = None

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def matches(self, program: Program, machine: MachineConfig) -> bool:
        """Whether this set was built for exactly this program/geometry."""
        return (self.program_hash == program_fingerprint(program)
                and self.machine_hash == machine_warm_fingerprint(machine))

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    def restore_point(self, limit: int) -> int | None:
        """Index of the latest snapshot at or before stream position
        ``limit``, or None when no snapshot precedes it."""
        index = bisect_right(self._positions, limit) - 1
        return index if index >= 0 else None

    def position(self, index: int) -> int:
        return self._positions[index]

    def restore_into(self, index: int, core: FunctionalCore,
                     microarch: MicroarchState) -> int:
        """Jump ``core``/``microarch`` forward to snapshot ``index``.

        Returns the number of instructions skipped.  The core must be on
        this set's trajectory (same program, earlier position); restoring
        backwards is refused because memory deltas only replay forward.
        """
        snap = self.snapshots[index]
        current = core.instructions_retired
        if snap.position <= current:
            raise ValueError(
                f"cannot restore backwards: snapshot at {snap.position}, "
                f"core at {current}")
        first = bisect_right(self._positions, current)
        deltas = [self.snapshots[i].mem_delta for i in range(first, index + 1)]
        micro, int_regs, fp_regs = self._state_at(index)
        core.restore_arch(snap.position, snap.pc, snap.halted,
                          int_regs, fp_regs, deltas)
        microarch.restore_state(micro)
        return snap.position - current

    def _state_at(self, index: int) -> tuple[dict, list, list]:
        """Warm state and register files at snapshot ``index``.

        Snapshots carrying full state (the first of a delta-encoded set,
        or every snapshot of a pre-delta set) return it directly.  For
        delta snapshots the state is reconstructed by replaying the
        sparse per-stride changes forward from the base snapshot; the
        cursor caches the materialized state so a run's ascending
        restore sequence replays each delta exactly once.
        """
        snap = self.snapshots[index]
        if snap.micro_delta is None:
            return snap.micro, snap.int_regs, snap.fp_regs
        cursor, state = self._micro_cursor, self._micro_materialized
        if state is None or cursor > index:
            base = self.snapshots[0]
            state = (copy_micro(base.micro), list(base.int_regs),
                     list(base.fp_regs))
            cursor = 0
        while cursor < index:
            cursor += 1
            apply_micro_delta(state, self.snapshots[cursor].micro_delta)
        self._micro_cursor = cursor
        self._micro_materialized = state
        return state

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "meta": {
                "benchmark": self.benchmark,
                "machine": self.machine,
                "program_hash": self.program_hash,
                "machine_hash": self.machine_hash,
                "unit_size": self.unit_size,
                "stride": self.stride,
                "benchmark_length": self.benchmark_length,
                "version": self.version,
            },
            "snapshots": self.snapshots,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CheckpointSet":
        return cls(snapshots=payload["snapshots"], **payload["meta"])

    def describe(self) -> dict:
        """Flat metadata row for ``checkpoint ls`` style listings."""
        return {
            "benchmark": self.benchmark,
            "machine": self.machine,
            "program_hash": self.program_hash,
            "machine_hash": self.machine_hash,
            "unit_size": self.unit_size,
            "stride": self.stride,
            "benchmark_length": self.benchmark_length,
            "snapshots": len(self.snapshots),
            "version": self.version,
        }


class SnapshotRecorder:
    """Accumulates the delta-encoded snapshots of one warm pass.

    This is the capture half of :func:`build_checkpoints`, factored out
    so the full-stream reference pass (:mod:`repro.harness.reference`)
    can record the *same* snapshots while it produces the reference
    trace — one pass, two artifact namespaces.  The first capture keeps
    full warm state and register files; every later one stores only the
    delta against its predecessor (see
    :func:`repro.checkpoint.snapshot.micro_delta`).
    """

    def __init__(self) -> None:
        self.snapshots: list[Snapshot] = []
        self._previous: tuple[dict, list, list] | None = None

    def capture(self, core: FunctionalCore, microarch: MicroarchState,
                position: int, written: set[int]) -> None:
        """Record one snapshot at stream ``position``.

        ``written`` is the set of memory addresses stored to since the
        previous capture (the per-stride memory delta).
        """
        memory = core.state.memory
        state = core.state
        micro_state = microarch.snapshot_state()
        current = (micro_state, list(state.int_regs), list(state.fp_regs))
        if self._previous is None:
            micro, delta = micro_state, None
            snap_int_regs, snap_fp_regs = current[1], current[2]
        else:
            micro = {}
            snap_int_regs, snap_fp_regs = [], []
            delta = micro_delta(self._previous, current)
        self._previous = current
        self.snapshots.append(Snapshot(
            position=position,
            pc=state.pc,
            halted=state.halted,
            int_regs=snap_int_regs,
            fp_regs=snap_fp_regs,
            mem_delta={addr: memory[addr] for addr in written},
            micro=micro,
            micro_delta=delta,
        ))


def snapshot_offsets(chunk: int, warm_align: int | None) -> tuple[int, ...]:
    """The extra within-stride snapshot offsets a warming length implies.

    A systematic run warms each unit from ``unit.start - W``; snapshots
    at positions congruent to ``-W`` modulo the stride make those warm
    starts exact restore points (see :func:`build_checkpoints`).
    """
    if not warm_align:
        return ()
    residue = (-int(warm_align)) % chunk
    return (residue,) if residue else ()


def build_checkpoints(
    program: Program,
    machine: MachineConfig,
    unit_size: int,
    stride: int = DEFAULT_STRIDE,
    limit: int = DEFAULT_BUILD_LIMIT,
    warm_align: int | None = None,
) -> CheckpointSet:
    """Run one functional-warming pass and capture per-stride snapshots.

    The pass starts from cold (power-on) state, exactly as a
    ``cold_start`` engine run does, and runs to program halt; it also
    measures the benchmark's dynamic length as a by-product, which
    checkpointed runs reuse instead of a separate measuring pass.

    ``warm_align`` (a detailed-warming length W, typically the machine's
    :func:`~repro.core.procedure.recommended_warming`) interleaves extra
    snapshots at positions congruent to ``-W`` modulo the stride.  A
    systematic run warms each unit from ``unit.start - W``; whenever its
    sampling grid lands on the snapshot stride — the common suite
    configuration — those shifted snapshots are exact restore points and
    the residual per-unit fast-forward drops to zero.  Warm state is
    delta-encoded between consecutive snapshots, so the extra positions
    cost little on disk.
    """
    if unit_size <= 0:
        raise ValueError("unit_size must be positive")
    if stride <= 0:
        raise ValueError("stride must be positive")
    core = create_core(program)
    microarch = MicroarchState(machine)
    microarch.flush()
    warmer = FunctionalWarmer(microarch)
    chunk = unit_size * stride
    extra_offsets = snapshot_offsets(chunk, warm_align)

    recorder = SnapshotRecorder()
    for position, written in warming_pass(core, warmer, chunk, limit=limit,
                                          extra_offsets=extra_offsets):
        recorder.capture(core, microarch, position, written)
    snapshots = recorder.snapshots
    if not core.state.halted:
        raise RuntimeError(
            f"program {program.name!r} did not halt within {limit} "
            f"instructions; refusing to build a partial checkpoint set")
    record_pass("checkpoint_build", program.name, core.instructions_retired)
    return CheckpointSet(
        benchmark=program.name,
        machine=machine.name,
        program_hash=program_fingerprint(program),
        machine_hash=machine_warm_fingerprint(machine),
        unit_size=unit_size,
        stride=stride,
        benchmark_length=core.instructions_retired,
        snapshots=snapshots,
    )


# ----------------------------------------------------------------------
# On-disk store
# ----------------------------------------------------------------------
def default_checkpoint_dir() -> Path:
    """Directory used to persist checkpoint sets.

    Now the ``checkpoint`` namespace of the artifact store:
    ``REPRO_CHECKPOINT_DIR`` still wins as a legacy override, otherwise
    ``<REPRO_ARTIFACT_DIR or .artifacts>/checkpoint``.
    """
    return ArtifactStore().namespace_dir("checkpoint")


#: Process-wide cache of loaded sets keyed by (path, mtime_ns), so sweep
#: runs over the same benchmark/machine deserialize each set only once.
_LOADED: dict[tuple[str, int], CheckpointSet] = {}


class CheckpointStore:
    """File-per-set checkpoint store keyed by content fingerprints.

    A thin adapter over the artifact store's ``checkpoint`` and ``bbv``
    namespaces.  Blobs are written through the store's checksum frame,
    so a truncated or bit-rotted set is quarantined and rebuilt instead
    of being unpickled; pre-store files (headerless) still read fine.
    An explicit ``directory`` pins *both* namespaces to one flat
    directory — the legacy layout, and what keeps per-test isolation
    trivial.
    """

    def __init__(self, directory: Path | str | None = None,
                 enabled: bool = True, store: ArtifactStore | None = None):
        if store is None:
            overrides = ({"checkpoint": directory, "bbv": directory}
                         if directory else None)
            store = ArtifactStore(enabled=enabled, overrides=overrides)
        self.store = store
        self.directory = store.namespace_dir("checkpoint")
        self.bbv_directory = store.namespace_dir("bbv")
        self.enabled = enabled

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @staticmethod
    def _slug(name: str) -> str:
        return name.replace("/", "_").replace("--", "-")

    def path_for(self, program: Program, machine: MachineConfig,
                 unit_size: int) -> Path:
        return self.directory / (
            f"{self._slug(program.name)}--{program_fingerprint(program)}"
            f"--m{machine_warm_fingerprint(machine)}--u{unit_size}"
            f"--v{CHECKPOINT_VERSION}.ckpt")

    # ------------------------------------------------------------------
    # Load / save
    # ------------------------------------------------------------------
    def _load(self, path: Path) -> CheckpointSet | None:
        try:
            mtime = path.stat().st_mtime_ns
        except OSError:
            return None
        key = (str(path), mtime)
        cached = _LOADED.get(key)
        if cached is not None:
            return cached
        blob = self.store.read_path(path)  # verifies checksum, quarantines
        if blob is None:
            return None
        try:
            ckpt = CheckpointSet.from_payload(_unpack(blob))
        except Exception:
            return None  # corrupt or unreadable: treat as a miss
        while len(_LOADED) >= 8:  # bound resident decoded sets
            _LOADED.pop(next(iter(_LOADED)))
        _LOADED[key] = ckpt
        return ckpt

    def get(self, program: Program, machine: MachineConfig,
            unit_size: int) -> CheckpointSet | None:
        """Load the matching set, or None (warning if a stale one exists).

        A set whose program fingerprint and unit size match but whose
        machine geometry differs — e.g. after a cache-geometry change —
        is *never* restored; a :class:`StaleCheckpointWarning` points at
        the mismatch so callers know a rebuild is happening.
        """
        if not self.enabled:
            return None
        path = self.path_for(program, machine, unit_size)
        ckpt = self._load(path)
        if ckpt is not None:
            if (ckpt.version == CHECKPOINT_VERSION
                    and ckpt.matches(program, machine)
                    and ckpt.unit_size == unit_size):
                return ckpt
            return None
        # A stale set is one built for *this same machine* (by name)
        # before its geometry or the snapshot format changed; sets for
        # other machines legitimately coexist and are not reported.
        for candidate in self.directory.glob(
                f"*--{program_fingerprint(program)}--m*--u{unit_size}"
                f"--v*.ckpt"):
            if candidate == path:
                continue
            stale = self._load(candidate)
            if stale is not None and stale.machine == machine.name:
                warnings.warn(
                    f"checkpoints for {program.name!r} (U={unit_size}) on "
                    f"{machine.name!r} were built for a different machine "
                    f"geometry or format version; rebuilding",
                    StaleCheckpointWarning, stacklevel=2)
                break
        return None

    def put(self, ckpt: CheckpointSet, program: Program,
            machine: MachineConfig) -> Path:
        path = self.path_for(program, machine, ckpt.unit_size)
        if not self.enabled:
            return path
        return self.store.write_path(path, _pack(ckpt.to_payload()))

    def get_or_build(self, program: Program, machine: MachineConfig,
                     unit_size: int, stride: int | None = None,
                     limit: int = DEFAULT_BUILD_LIMIT) -> CheckpointSet:
        """The workhorse of ``checkpoints="auto"``: load else build+save.

        ``stride=None`` (the auto path) accepts a stored set at any
        stride — every grid restores exactly.  An explicit ``stride``
        is a requirement: a stored set at a different stride is rebuilt
        (``checkpoint build --stride N`` must produce the grid it names).

        Builds align extra snapshots at the machine's recommended
        detailed-warming offset (``unit.start - W`` for stride-aligned
        systematic grids restores with zero residual fast-forward); the
        alignment is an optimization only, so stored sets built for a
        different W remain valid and are reused as-is.
        """
        ckpt = self.get(program, machine, unit_size)
        if ckpt is not None and (stride is None or ckpt.stride == stride):
            return ckpt
        ckpt = build_checkpoints(program, machine, unit_size,
                                 stride=DEFAULT_STRIDE if stride is None
                                 else stride, limit=limit,
                                 warm_align=recommended_warming(machine))
        self.put(ckpt, program, machine)
        return ckpt

    # ------------------------------------------------------------------
    # BBV profiles (the stratified strategy's phase-labeling pass)
    # ------------------------------------------------------------------
    def bbv_path_for(self, program: Program, interval_size: int,
                     limit: int | None = None) -> Path:
        tag = "full" if limit is None else str(limit)
        return self.bbv_directory / (
            f"{self._slug(program.name)}--{program_fingerprint(program)}"
            f"--bbv-i{interval_size}-l{tag}--v{BBV_PROFILE_VERSION}.bbvp")

    def get_bbv_profile(self, program: Program, interval_size: int,
                        limit: int | None = None):
        """Load a cached BBV profile, or None on miss/mismatch."""
        if not self.enabled:
            return None
        blob = self.store.read_path(
            self.bbv_path_for(program, interval_size, limit))
        if blob is None:
            return None
        try:
            payload = pickle.loads(zlib.decompress(blob))
        except Exception:
            return None  # corrupt or unreadable: a miss
        meta = payload.get("meta", {})
        if (meta.get("version") != BBV_PROFILE_VERSION
                or meta.get("program_hash") != program_fingerprint(program)
                or meta.get("interval_size") != interval_size
                or meta.get("limit") != limit):
            return None
        return payload["profile"]

    def put_bbv_profile(self, profile, program: Program,
                        limit: int | None = None) -> Path:
        path = self.bbv_path_for(program, profile.interval_size, limit)
        if not self.enabled:
            return path
        payload = {
            "meta": {
                "benchmark": program.name,
                "program_hash": program_fingerprint(program),
                "interval_size": profile.interval_size,
                "limit": limit,
                "version": BBV_PROFILE_VERSION,
            },
            "profile": profile,
        }
        blob = zlib.compress(pickle.dumps(payload, protocol=4), 6)
        return self.store.write_path(path, blob)

    def get_or_profile(self, program: Program, interval_size: int,
                       max_instructions: int | None = None):
        """Load-else-profile the BBVs of ``program`` (load is exact).

        This is the stratified strategy's phase-labeling pass: profiling
        is deterministic, so a cached profile is bit-identical to a
        fresh one and caching it here removes the last redundant
        functional pass from repeated stratified runs (clustering —
        cheap and seed-dependent — still runs per spec).
        """
        profile = self.get_bbv_profile(program, interval_size,
                                       limit=max_instructions)
        if profile is None:
            from repro.simpoint.bbv import profile_bbv

            profile = profile_bbv(program, interval_size,
                                  max_instructions=max_instructions)
            try:
                self.put_bbv_profile(profile, program, limit=max_instructions)
            except OSError:
                # Profile caching is an optimization: an unwritable store
                # (read-only checkout, container without REPRO_CHECKPOINT_DIR)
                # must not break a run that previously worked in memory.
                pass
        return profile

    # ------------------------------------------------------------------
    # Maintenance (checkpoint ls / gc)
    # ------------------------------------------------------------------
    def entries(self) -> list[dict]:
        """Metadata of every readable set in the store directory."""
        rows = []
        for path in sorted(self.directory.glob("*.ckpt")):
            ckpt = self._load(path)
            if ckpt is None:
                continue
            row = ckpt.describe()
            row["file"] = path.name
            row["size_bytes"] = path.stat().st_size
            rows.append(row)
        return rows

    def bbv_entries(self) -> list[dict]:
        """Metadata of every readable current-version BBV profile.

        Mirrors :meth:`entries`: unreadable, corrupt, or other-version
        files are skipped (``gc`` removes them), never raised on.
        """
        rows = []
        for path in sorted(self.bbv_directory.glob("*.bbvp")):
            blob = self.store.read_path(path)
            if blob is None:
                continue
            try:
                payload = pickle.loads(zlib.decompress(blob))
                meta = dict(payload["meta"])
                if meta.get("version") != BBV_PROFILE_VERSION:
                    continue
                meta["intervals"] = payload["profile"].num_intervals
                meta["file"] = path.name
                meta["size_bytes"] = path.stat().st_size
            except Exception:
                continue
            rows.append(meta)
        return rows

    def gc(self, max_age_days: float | None = None,
           remove_all: bool = False, dry_run: bool = False) -> list[Path]:
        """Delete stale checkpoint files; returns the removed paths.

        Delegates to :meth:`ArtifactStore.gc` over the ``checkpoint``
        and ``bbv`` namespaces: always removes leftover ``*.tmp`` files
        and sets/profiles written by a different format version;
        ``max_age_days`` additionally removes entries not touched within
        that window, ``remove_all`` empties the store (BBV profiles
        included), and ``dry_run`` reports without deleting.
        """
        return self.store.gc(namespaces=("checkpoint", "bbv"),
                             max_age_days=max_age_days,
                             remove_all=remove_all, dry_run=dry_run)
