"""A multi-process, file-based work queue of RunSpecs.

The queue is a directory (default ``<artifact root>/queue``, overridable
with ``REPRO_QUEUE_DIR``) with one JSON *spec file* per job, moving
through subdirectories as its state changes::

    queue/
        pending/   submitted jobs, claimable by any worker
        claimed/   jobs a worker is executing (mtime = heartbeat lease)
        done/      finished jobs: {"result": ..., "worker": ...}
        failed/    jobs that exhausted their attempts, with the error

The protocol needs nothing beyond POSIX rename semantics, so any number
of worker processes — including workers on other hosts sharing the
directory — can drain one queue:

* **Claim by rename.**  A worker claims a job by renaming its spec file
  from ``pending/`` into ``claimed/``; ``os.rename`` succeeds for
  exactly one contender, every loser gets ``FileNotFoundError`` and
  moves on.  No locks, no partial states.
* **Heartbeat leases.**  While executing, the worker touches the claimed
  file's mtime.  A claim whose mtime goes stale for longer than the
  lease belonged to a dead (or wedged) worker; any process may requeue
  it — the attempt counter rides inside the spec file, and a job that
  exhausts its attempts lands in ``failed/`` instead of looping forever.
* **Results by content key.**  Job names embed the spec's content hash
  and cache version, so resubmitting the same spec maps to the same
  job, and workers share everything heavier than a spec (checkpoint
  sets, BBV profiles, cached results) through the content-addressed
  artifact store rather than the queue.

:class:`QueueBackend` is the submitter side: it enqueues a batch,
optionally spawns local ``repro-smarts worker`` processes to drain it
(the in-test and single-host configuration), and collects results.
Estimates are bit-identical to the serial and local-pool backends —
workers execute the same deterministic specs.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.paths import project_cache_dir
from repro.reliability.faults import inject
from repro.backends.base import ExecutorBackend, register_backend

#: Default heartbeat lease in seconds: a claim untouched for this long
#: is considered abandoned and gets requeued.
DEFAULT_LEASE = 30.0

#: Times a job may be claimed before it is declared failed.
DEFAULT_MAX_ATTEMPTS = 3

#: Job states a spec file can be in (subdirectory names).
JOB_STATES = ("pending", "claimed", "done", "failed")


def default_queue_dir() -> Path:
    """The work-queue directory (``REPRO_QUEUE_DIR``)."""
    env = os.environ.get("REPRO_QUEUE_DIR")
    if env:
        return Path(env)
    return project_cache_dir("REPRO_ARTIFACT_DIR", ".artifacts") / "queue"


def _write_json(path: Path, payload: dict) -> None:
    """Atomic JSON write (tmp + fsync + rename), per-writer tmp name."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _read_json(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


class FileWorkQueue:
    """The shared on-disk queue both submitters and workers speak to."""

    def __init__(self, directory: Path | str | None = None):
        self.directory = Path(directory) if directory else default_queue_dir()

    def _dir(self, state: str) -> Path:
        return self.directory / state

    def _path(self, state: str, name: str) -> Path:
        return self._dir(state) / f"{name}.json"

    def ensure_dirs(self) -> None:
        for state in JOB_STATES:
            self._dir(state).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Submitter side
    # ------------------------------------------------------------------
    @staticmethod
    def job_name(spec) -> str:
        """Content-derived job name: benchmark, spec hash, cache version."""
        from repro.api.executor import CACHE_VERSION

        safe = spec.benchmark.replace("/", "_")
        return f"{safe}--{spec.key()}--v{CACHE_VERSION}"

    def submit(self, spec, use_cache: bool = True) -> str:
        """Enqueue one spec; returns its job name (idempotent per spec).

        Stale terminal records of the same name are cleared first: the
        executor only submits cache *misses*, so a leftover ``done/``
        file from an earlier batch must not be mistaken for this run's
        result.  A job already pending or claimed is left alone — the
        in-flight execution will produce the result this submission
        wants.
        """
        self.ensure_dirs()
        name = self.job_name(spec)
        for state in ("done", "failed"):
            self._path(state, name).unlink(missing_ok=True)
        if (self._path("pending", name).exists()
                or self._path("claimed", name).exists()):
            return name
        _write_json(self._path("pending", name), {
            "spec": spec.to_dict(),
            "use_cache": bool(use_cache),
            "attempts": 0,
        })
        return name

    def result(self, name: str) -> tuple[str, dict] | None:
        """The terminal record of a job: ("done"|"failed", payload)."""
        for state in ("done", "failed"):
            payload = _read_json(self._path(state, name))
            if payload is not None:
                return state, payload
        return None

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def claim_next(self) -> tuple[str, dict] | None:
        """Claim one pending job by rename; None when the queue is idle.

        The rename from ``pending/`` to ``claimed/`` is the mutual
        exclusion: exactly one contender wins each file, losers see
        ``FileNotFoundError`` and try the next.
        """
        inject("queue.claim")
        pending = self._dir("pending")
        if not pending.is_dir():
            return None
        for path in sorted(pending.glob("*.json")):
            target = self._path("claimed", path.name[:-len(".json")])
            target.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(path, target)
            except OSError:
                continue  # lost the race (or the file vanished)
            payload = _read_json(target)
            if payload is None:
                # Unreadable spec file: fail it rather than spin on it.
                self.fail(path.stem, "unreadable spec file", worker=None)
                continue
            return path.stem, payload
        return None

    def heartbeat(self, name: str) -> None:
        """Refresh the lease on a claimed job (touch its mtime).

        The ``queue.heartbeat`` fault seam lets chaos plans stall the
        refresh (a wedged worker): the lease then goes stale and any
        process may requeue the claim.
        """
        inject("queue.heartbeat", name)
        try:
            os.utime(self._path("claimed", name))
        except OSError:
            pass  # completed or requeued under us; nothing to extend

    def complete(self, name: str, result: dict, worker: dict | None) -> None:
        _write_json(self._path("done", name),
                    {"result": result, "worker": worker or {}})
        self._path("claimed", name).unlink(missing_ok=True)

    def fail(self, name: str, error: str, worker: dict | None,
             attempts: int = 1, error_type: str = "Exception",
             transient: bool = False) -> None:
        _write_json(self._path("failed", name),
                    {"error": error, "worker": worker or {},
                     "attempts": attempts, "error_type": error_type,
                     "transient": transient})
        self._path("claimed", name).unlink(missing_ok=True)

    def requeue(self, name: str, payload: dict) -> None:
        """Put a claimed job back in ``pending/`` (worker-side retry)."""
        _write_json(self._path("pending", name), payload)
        self._path("claimed", name).unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Lease recovery (any process may run this)
    # ------------------------------------------------------------------
    def requeue_stale(self, lease_seconds: float = DEFAULT_LEASE,
                      max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> list[str]:
        """Requeue claims whose heartbeat went stale; returns job names.

        A stale claim's attempt counter is bumped; once it reaches
        ``max_attempts`` the job is failed instead of requeued, so a
        spec that crashes its worker cannot bounce forever.
        """
        inject("queue.requeue")
        claimed = self._dir("claimed")
        if not claimed.is_dir():
            return []
        now = time.time()
        requeued = []
        for path in sorted(claimed.glob("*.json")):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue  # completed under us
            if now - mtime <= lease_seconds:
                continue
            payload = _read_json(path)
            name = path.stem
            if payload is None:
                path.unlink(missing_ok=True)
                continue
            payload["attempts"] = int(payload.get("attempts", 0)) + 1
            if payload["attempts"] >= max_attempts:
                self.fail(name, f"abandoned after {payload['attempts']} "
                                f"attempts (worker lease expired)",
                          worker=None, attempts=payload["attempts"],
                          error_type="LeaseExpired", transient=True)
                continue
            _write_json(self._path("pending", name), payload)
            path.unlink(missing_ok=True)
            requeued.append(name)
        return requeued

    def counts(self) -> dict[str, int]:
        """Jobs per state (introspection / CLI)."""
        return {state: len(list(self._dir(state).glob("*.json")))
                if self._dir(state).is_dir() else 0
                for state in JOB_STATES}

    def gc(self, max_age_days: float | None = None,
           remove_all: bool = False, dry_run: bool = False) -> list[Path]:
        """Prune terminal job records; returns removed (or would-be) paths.

        Without arguments only orphaned ``*.tmp`` litter goes; with
        ``max_age_days``, ``done/`` and ``failed/`` envelopes older than
        that are aged out too (the in-flight states are never touched by
        age — lease recovery owns those), and ``remove_all`` clears
        every record in every state.  ``dry_run`` reports without
        deleting.
        """
        now = time.time()
        removed: list[Path] = []

        def _remove(path: Path) -> None:
            if not dry_run:
                path.unlink(missing_ok=True)
            removed.append(path)

        for state in JOB_STATES:
            directory = self._dir(state)
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.tmp")):
                _remove(path)
            for path in sorted(directory.glob("*.json")):
                if remove_all:
                    _remove(path)
                    continue
                if state not in ("done", "failed") or max_age_days is None:
                    continue
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    continue
                if age > max_age_days * 86400:
                    _remove(path)
        return removed


@register_backend
class QueueBackend(ExecutorBackend):
    """Executor backend draining specs through a :class:`FileWorkQueue`.

    Args:
        queue_dir: Queue directory (default :func:`default_queue_dir`).
        workers: Worker processes to spawn per batch when none are
            given at ``run_specs`` time; ``0`` spawns none and relies on
            externally started ``repro-smarts worker`` processes
            draining the same directory (the multi-host shape).
        poll: Submitter poll interval in seconds.
        lease: Heartbeat lease passed to stale-claim recovery.
        timeout: Overall seconds to wait for a batch (None = forever).
    """

    name = "queue"
    prebuild = True

    def __init__(self, queue_dir: Path | str | None = None,
                 workers: int | None = None, poll: float = 0.1,
                 lease: float = DEFAULT_LEASE,
                 timeout: float | None = 600.0):
        self.queue_dir = Path(queue_dir) if queue_dir else None
        self.workers = workers
        self.poll = poll
        self.lease = lease
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _spawn_workers(self, queue: FileWorkQueue, count: int) -> list:
        """Start local worker subprocesses draining ``queue``.

        Workers are real fresh interpreters (not forks) — the same
        execution shape as remote hosts — launched through the CLI
        entry point with the repository's package root on PYTHONPATH.
        """
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (package_root + os.pathsep + existing
                                 if existing else package_root)
        command = [sys.executable, "-m", "repro", "worker",
                   "--queue-dir", str(queue.directory),
                   "--poll", str(self.poll),
                   "--lease", str(self.lease),
                   "--max-idle", "20"]
        return [subprocess.Popen(command, env=env) for _ in range(count)]

    def run_specs(self, specs, *, max_workers=None, use_cache=True):
        from repro.api.spec import RunResult
        from repro.reliability.report import SpecFailure

        queue = FileWorkQueue(self.queue_dir)
        names = [queue.submit(spec, use_cache=use_cache) for spec in specs]
        by_name = {name: spec for name, spec in zip(names, specs)}
        count = max_workers if max_workers is not None else self.workers
        if count is None:
            count = 2
        processes = (self._spawn_workers(queue, min(count, len(set(names))))
                     if count > 0 else [])
        deadline = (time.monotonic() + self.timeout
                    if self.timeout is not None else None)

        def _dead_failure(name: str, reason: str, error_type: str):
            return SpecFailure(spec=by_name[name], error=reason,
                               error_type=error_type, attempts=1,
                               transient=True)

        try:
            envelopes: dict[str, object] = {}
            outstanding = set(names)
            while outstanding:
                for name in sorted(outstanding):
                    record = queue.result(name)
                    if record is None:
                        continue
                    state, payload = record
                    if state == "failed":
                        envelopes[name] = SpecFailure(
                            spec=by_name[name],
                            error=payload.get("error", "unknown error"),
                            error_type=payload.get("error_type",
                                                   "Exception"),
                            attempts=int(payload.get("attempts", 1)),
                            transient=bool(payload.get("transient", False)))
                    else:
                        envelopes[name] = RunResult.from_dict(
                            payload["result"])
                    outstanding.discard(name)
                if not outstanding:
                    break
                queue.requeue_stale(self.lease)
                if processes and all(p.poll() is not None for p in processes):
                    # Every spawned worker exited; sweep once more, then
                    # report rather than poll an unserviced queue forever.
                    if all(queue.result(n) is not None for n in outstanding):
                        continue
                    codes = [p.returncode for p in processes]
                    for name in sorted(outstanding):
                        if queue.result(name) is None:
                            envelopes[name] = _dead_failure(
                                name,
                                f"queue workers exited (codes {codes}) "
                                f"with job {name} outstanding under "
                                f"{queue.directory}", "WorkersExited")
                            outstanding.discard(name)
                    continue
                if deadline is not None and time.monotonic() > deadline:
                    for name in sorted(outstanding):
                        envelopes[name] = _dead_failure(
                            name,
                            f"queue batch timed out after {self.timeout}s "
                            f"with job {name} outstanding under "
                            f"{queue.directory}", "TimeoutError")
                    break
                time.sleep(self.poll)
            return [envelopes[name] for name in names]
        finally:
            for process in processes:
                if process.poll() is None:
                    process.terminate()
            for process in processes:
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    process.kill()
                    process.wait()
