"""Pluggable executor backends.

How a batch of cache-missing RunSpecs is executed is a transport
choice, not a semantic one: every spec is deterministic, so the serial,
local-pool, and queue backends all produce bit-identical
``estimates_dict()`` rows.  Selection is by name — constructor argument
(``Session(backend="queue")``), ``REPRO_BACKEND`` environment variable,
or an :class:`ExecutorBackend` instance for configured cases — and
unknown names raise errors listing what is registered, mirroring the
sampling-strategy registry.

Backends lean on :mod:`repro.store`: submitters prebuild checkpoint
sets into the content-addressed store (when ``prebuild`` says to), and
out-of-process workers fetch checkpoints, BBV profiles, and cached
results by key instead of recomputing them.
"""

from repro.backends.base import (
    BACKENDS,
    ExecutorBackend,
    backend_from_env,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.backends.local import LocalPoolBackend, SerialBackend
from repro.backends.queue import (
    DEFAULT_LEASE,
    DEFAULT_MAX_ATTEMPTS,
    FileWorkQueue,
    QueueBackend,
    default_queue_dir,
)
from repro.backends.worker import run_worker

__all__ = [
    "BACKENDS",
    "DEFAULT_LEASE",
    "DEFAULT_MAX_ATTEMPTS",
    "ExecutorBackend",
    "FileWorkQueue",
    "LocalPoolBackend",
    "QueueBackend",
    "SerialBackend",
    "backend_from_env",
    "default_queue_dir",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "run_worker",
]
