"""The executor-backend protocol and registry.

A backend is *how* a batch of cache-missing RunSpecs gets executed —
in-process, across a local process pool, or through a shared on-disk
work queue drained by independent worker processes.  Backends are
execution transports only: every spec is deterministic, so all backends
are bit-identical on ``RunResult.estimates_dict()`` — the same golden
contract the checkpoint subsystem carries, extended across process and
host boundaries by the content-addressed artifact store (workers fetch
checkpoint sets, BBV profiles, and cached results by key instead of
rebuilding them).

Selection mirrors the strategy registry: by name through
:func:`get_backend` (``Session(backend="queue")``), or ambiently through
the ``REPRO_BACKEND`` environment variable; an unknown name raises an
error listing what is registered.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import RunResult, RunSpec
    from repro.reliability.report import SpecFailure


class ExecutorBackend(ABC):
    """How a batch of (cache-missing) specs is executed.

    Subclasses set ``name`` (the registry key) and ``prebuild``: whether
    the submitting process should build missing checkpoint sets into the
    shared store *before* dispatch, so concurrent workers load by key
    instead of racing to rebuild one warming pass per worker.
    """

    name: ClassVar[str]
    #: Whether the submitter prebuilds checkpoint sets before dispatch.
    prebuild: ClassVar[bool] = True

    @abstractmethod
    def run_specs(self, specs: "list[RunSpec]", *,
                  max_workers: int | None = None,
                  use_cache: bool = True
                  ) -> "list[RunResult | SpecFailure]":
        """Execute ``specs``; one envelope per spec, in spec order.

        The partial-failure contract: a spec that executes resolves to
        its :class:`~repro.api.spec.RunResult`; a spec that exhausts its
        retry budget (or fails permanently — a deterministic spec error)
        resolves to a :class:`~repro.reliability.SpecFailure` carrying
        the error text, type, attempt count, and transient/permanent
        classification.  Backends never raise for a single spec's
        failure and never drop a completed sibling's result; transient
        errors are retried under the shared
        :class:`~repro.reliability.RetryPolicy` before an envelope is
        written.

        ``use_cache`` tells out-of-process workers whether results may
        be read from / written to the shared result cache (the caller's
        cache policy must reach them; in-process backends ignore it —
        the surrounding :class:`~repro.api.executor.Executor` already
        applied it).
        """


BACKENDS: dict[str, type[ExecutorBackend]] = {}


def register_backend(cls: type[ExecutorBackend]) -> type[ExecutorBackend]:
    """Class decorator adding a backend to the registry by its name."""
    BACKENDS[cls.name] = cls
    return cls


def get_backend(name: str) -> type[ExecutorBackend]:
    """Look up a registered backend class by name."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise KeyError(f"unknown backend {name!r}; "
                       f"available: {sorted(BACKENDS)}") from None


def resolve_backend(backend) -> ExecutorBackend:
    """Coerce a backend spec (name, class, or instance) to an instance."""
    if isinstance(backend, ExecutorBackend):
        return backend
    if isinstance(backend, type) and issubclass(backend, ExecutorBackend):
        return backend()
    if isinstance(backend, str):
        return get_backend(backend)()
    raise TypeError(f"backend must be a name, ExecutorBackend subclass, or "
                    f"instance, not {type(backend).__name__}")


def backend_from_env() -> ExecutorBackend | None:
    """The backend ``REPRO_BACKEND`` selects, or None when unset."""
    name = os.environ.get("REPRO_BACKEND", "").strip()
    if not name:
        return None
    try:
        return get_backend(name)()
    except KeyError:
        raise ValueError(
            f"REPRO_BACKEND names an unknown backend {name!r}; "
            f"registered backends: {sorted(BACKENDS)}") from None
