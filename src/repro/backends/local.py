"""In-process and local-process-pool executor backends.

These are the pre-backend execution paths of
:class:`~repro.api.executor.Executor`, factored behind the
:class:`~repro.backends.base.ExecutorBackend` protocol:
:class:`SerialBackend` runs specs one after another in the calling
process; :class:`LocalPoolBackend` fans them across a
``concurrent.futures`` ProcessPoolExecutor using the ``fork`` start
context where available (forked workers inherit the parent's
interpreter state, which keeps benchmark construction bit-identical
between serial and parallel execution).  Workers exchange plain dict
payloads, so nothing fancier than JSON-shaped data crosses the process
boundary.

Both backends speak the per-spec partial-failure contract: every spec
resolves to a :class:`~repro.api.spec.RunResult` or a
:class:`~repro.reliability.SpecFailure` envelope, with transient errors
retried under the shared :class:`~repro.reliability.RetryPolicy`.  The
pool backend survives worker death (``BrokenProcessPool`` — a SIGKILLed
or crashed fork worker): finished results are kept, the pool is
respawned, and only unfinished specs are resubmitted, with the
interrupted specs' attempt counters charged.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.reliability.report import SpecFailure
from repro.reliability.retry import RetryPolicy
from repro.backends.base import ExecutorBackend, register_backend


def _pool_task(payload: dict) -> dict:
    """One pool-worker task: dict spec in, dict result out.

    Module-level so it pickles under any start method; the ``pool.task``
    fault seam fires in the *worker* process, which is how chaos plans
    crash or kill real fork workers mid-batch.
    """
    from repro.api.executor import _execute_payload
    from repro.reliability.faults import inject

    inject("pool.task", payload.get("benchmark", ""))
    return _execute_payload(payload)


def _execute_with_retry(spec, policy: RetryPolicy):
    """Run one spec in-process under the policy; result or failure."""
    from repro.api.executor import execute_spec
    from repro.reliability.retry import run_with_retry

    try:
        result, _ = run_with_retry(lambda: execute_spec(spec), spec.key(),
                                   policy)
        return result
    except Exception as exc:  # noqa: BLE001 — envelope, not propagation
        attempts = 1 if not policy.transient(exc) else policy.max_attempts
        return SpecFailure.from_exception(spec, exc, attempts=attempts)


@register_backend
class SerialBackend(ExecutorBackend):
    """Execute every spec in the calling process, one at a time."""

    name = "serial"
    #: Serial execution builds checkpoint sets lazily as specs need
    #: them; there are no concurrent workers to race.
    prebuild = False

    def __init__(self, retry: RetryPolicy | None = None):
        self.retry = retry

    def run_specs(self, specs, *, max_workers=None, use_cache=True):
        policy = self.retry if self.retry is not None \
            else RetryPolicy.from_env()
        return [_execute_with_retry(spec, policy) for spec in specs]


@register_backend
class LocalPoolBackend(ExecutorBackend):
    """Fan specs across a single-host process pool (the default).

    Executes through ``submit()`` with per-future error capture rather
    than ``pool.map``: one worker death no longer aborts the batch.  On
    :class:`BrokenProcessPool` the pool is respawned and only the specs
    without a captured outcome are resubmitted; a spec that keeps
    breaking the pool exhausts its attempt budget and becomes a
    :class:`~repro.reliability.SpecFailure` while every other spec's
    result is kept.
    """

    name = "local-pool"
    prebuild = True

    def __init__(self, max_workers: int | None = None,
                 retry: RetryPolicy | None = None):
        self.max_workers = max_workers
        self.retry = retry

    def run_specs(self, specs, *, max_workers=None, use_cache=True):
        from repro.api.spec import RunResult

        policy = self.retry if self.retry is not None \
            else RetryPolicy.from_env()
        workers = (max_workers if max_workers is not None
                   else self.max_workers)
        if workers is None:
            workers = os.cpu_count() or 2
        workers = min(workers, len(specs))
        if workers <= 1:
            return SerialBackend(retry=policy).run_specs(
                specs, use_cache=use_cache)
        payloads = [spec.to_dict() for spec in specs]
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            context = multiprocessing.get_context()

        outcomes: dict[int, object] = {}
        #: attempts already consumed per unfinished spec index.
        attempts = {i: 0 for i in range(len(specs))}
        while attempts:
            todo = sorted(attempts)
            with ProcessPoolExecutor(max_workers=min(workers, len(todo)),
                                     mp_context=context) as pool:
                futures = {i: pool.submit(_pool_task, payloads[i])
                           for i in todo}
                backoff = 0.0
                for i, future in futures.items():
                    spec = specs[i]
                    try:
                        outcomes[i] = RunResult.from_dict(future.result())
                        del attempts[i]
                    except BrokenProcessPool:
                        # A worker died; this future never finished.
                        # Charge the attempt and leave the spec in the
                        # resubmission set — unless its budget is gone.
                        attempts[i] += 1
                        if attempts[i] >= policy.max_attempts:
                            outcomes[i] = SpecFailure(
                                spec=spec,
                                error=f"process pool broken "
                                      f"{attempts[i]} time(s) while "
                                      f"executing this spec (worker "
                                      f"killed or crashed)",
                                error_type="BrokenProcessPool",
                                attempts=attempts[i], transient=True)
                            del attempts[i]
                        else:
                            backoff = max(backoff,
                                          policy.delay(spec.key(),
                                                       attempts[i]))
                    except Exception as exc:  # noqa: BLE001 — captured
                        attempts[i] += 1
                        if policy.should_retry(exc, attempts[i]):
                            backoff = max(backoff,
                                          policy.delay(spec.key(),
                                                       attempts[i]))
                        else:
                            outcomes[i] = SpecFailure.from_exception(
                                spec, exc, attempts=attempts[i])
                            del attempts[i]
            if attempts and backoff:
                time.sleep(backoff)
        return [outcomes[i] for i in range(len(specs))]
