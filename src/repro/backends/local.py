"""In-process and local-process-pool executor backends.

These are the pre-backend execution paths of
:class:`~repro.api.executor.Executor`, factored behind the
:class:`~repro.backends.base.ExecutorBackend` protocol:
:class:`SerialBackend` runs specs one after another in the calling
process; :class:`LocalPoolBackend` fans them across a
``concurrent.futures`` ProcessPoolExecutor using the ``fork`` start
context where available (forked workers inherit the parent's
interpreter state, which keeps benchmark construction bit-identical
between serial and parallel execution).  Workers exchange plain dict
payloads, so nothing fancier than JSON-shaped data crosses the process
boundary.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from repro.backends.base import ExecutorBackend, register_backend


@register_backend
class SerialBackend(ExecutorBackend):
    """Execute every spec in the calling process, one at a time."""

    name = "serial"
    #: Serial execution builds checkpoint sets lazily as specs need
    #: them; there are no concurrent workers to race.
    prebuild = False

    def run_specs(self, specs, *, max_workers=None, use_cache=True):
        from repro.api.executor import execute_spec

        return [execute_spec(spec) for spec in specs]


@register_backend
class LocalPoolBackend(ExecutorBackend):
    """Fan specs across a single-host process pool (the default)."""

    name = "local-pool"
    prebuild = True

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers

    def run_specs(self, specs, *, max_workers=None, use_cache=True):
        from repro.api.executor import _execute_payload, execute_spec
        from repro.api.spec import RunResult

        workers = (max_workers if max_workers is not None
                   else self.max_workers)
        if workers is None:
            workers = os.cpu_count() or 2
        workers = min(workers, len(specs))
        if workers <= 1:
            return [execute_spec(spec) for spec in specs]
        payloads = [spec.to_dict() for spec in specs]
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            context = multiprocessing.get_context()
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            return [RunResult.from_dict(data)
                    for data in pool.map(_execute_payload, payloads)]
