"""The queue-worker loop behind ``repro-smarts worker``.

A worker is a plain process pointed at a :class:`FileWorkQueue`
directory.  It claims pending spec files one at a time, executes them
with the same :func:`~repro.api.executor.execute_spec` the in-process
backends use, and writes a ``done/`` envelope containing the result
dict plus a small worker report (pid, whether the result came from the
shared cache, and the instruction-accounting pass events the job
produced — tests use the pass log to prove a worker *fetched*
checkpoints by key rather than rebuilding them).

While a job runs, a daemon thread refreshes the claim's mtime every
quarter lease so crash recovery (:meth:`FileWorkQueue.requeue_stale`)
can tell a slow worker from a dead one.
"""

from __future__ import annotations

import os
import threading
import time
import traceback

from repro.backends.queue import DEFAULT_LEASE, FileWorkQueue


class _Heartbeat:
    """Daemon thread touching a claimed job's mtime every interval."""

    def __init__(self, queue: FileWorkQueue, name: str, interval: float):
        self._queue = queue
        self._name = name
        self._interval = max(interval, 0.05)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._queue.heartbeat(self._name)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5)


def process_job(queue: FileWorkQueue, name: str, payload: dict) -> None:
    """Execute one claimed job and write its terminal record."""
    from repro.api.executor import ResultCache, execute_spec
    from repro.api.spec import RunSpec
    from repro.reliability.faults import inject
    from repro.store import pass_events

    spec = RunSpec.from_dict(payload["spec"])
    # Fault seam: chaos plans crash/kill/stall the worker here — mid-job,
    # after the claim — which is what exercises lease-expiry requeues.
    inject("worker.execute", spec.benchmark)
    use_cache = bool(payload.get("use_cache", True))
    cache = ResultCache(enabled=use_cache)
    mark = len(pass_events())
    result = cache.get(spec)
    cached = result is not None
    if result is None:
        result = execute_spec(spec)
        cache.put(result)
    queue.complete(name, result.to_dict(), worker={
        "pid": os.getpid(),
        "cached": cached,
        "passes": [event.to_dict() for event in pass_events()[mark:]],
    })


def run_worker(queue_dir=None, *, poll: float = 0.2,
               lease: float = DEFAULT_LEASE,
               max_idle: float | None = None,
               max_jobs: int | None = None,
               retry=None) -> int:
    """Drain jobs from the queue until idle; returns jobs processed.

    In-worker exceptions go through the shared
    :class:`~repro.reliability.RetryPolicy`: a *transient* error
    (injected fault, I/O trouble) requeues the job with its attempt
    counter bumped — the same budget lease-expiry recovery charges — so
    a later claim retries it; a *permanent* error (bad spec) or an
    exhausted budget writes a ``failed/`` envelope carrying the
    traceback, the attempt count, and the classification.

    Args:
        queue_dir: Queue directory (default ``REPRO_QUEUE_DIR`` /
            ``<artifact root>/queue``).
        poll: Seconds to sleep when the queue is empty.
        lease: Heartbeat lease; claims are refreshed every quarter of
            it, and other processes may requeue claims staler than it.
        max_idle: Exit after this many consecutive idle seconds
            (None = run until killed, the long-lived-fleet shape).
        max_jobs: Exit after this many jobs (None = unlimited).
        retry: :class:`~repro.reliability.RetryPolicy` override
            (default: from the environment — ``REPRO_MAX_ATTEMPTS``).
    """
    from repro.reliability.retry import RetryPolicy

    policy = retry if retry is not None else RetryPolicy.from_env()
    queue = FileWorkQueue(queue_dir)
    queue.ensure_dirs()
    processed = 0
    idle_since = time.monotonic()
    while True:
        queue.requeue_stale(lease, max_attempts=policy.max_attempts)
        claim = queue.claim_next()
        if claim is None:
            if (max_idle is not None
                    and time.monotonic() - idle_since >= max_idle):
                return processed
            time.sleep(poll)
            continue
        name, payload = claim
        with _Heartbeat(queue, name, interval=lease / 4):
            try:
                process_job(queue, name, payload)
            except Exception as exc:  # noqa: BLE001 — classified below
                attempts = int(payload.get("attempts", 0)) + 1
                if policy.should_retry(exc, attempts):
                    payload["attempts"] = attempts
                    queue.requeue(name, payload)
                    time.sleep(policy.delay(name, attempts))
                else:
                    queue.fail(name, traceback.format_exc(),
                               worker={"pid": os.getpid()},
                               attempts=attempts,
                               error_type=type(exc).__name__,
                               transient=policy.transient(exc))
        processed += 1
        idle_since = time.monotonic()
        if max_jobs is not None and processed >= max_jobs:
            return processed
