"""Command line interface for the SMARTS reproduction.

The CLI is a thin veneer over :mod:`repro.api` (the library's unified
session layer) and exposes the main workflows without writing any
Python:

* ``repro-smarts list`` — show the synthetic benchmark suite.
* ``repro-smarts estimate gcc.syn`` — estimate CPI (or EPI) with the
  SMARTS two-step procedure, optionally validating against a full
  detailed run.
* ``repro-smarts sweep --benchmarks gcc.syn,mcf.syn --workers 4`` — run
  a batch of estimates across benchmarks and machines in parallel.
* ``repro-smarts reference gcc.syn`` — run the full-stream detailed
  simulation and report CPI, EPI, and miss rates.
* ``repro-smarts simpoint gcc.syn`` — run the SimPoint baseline.
* ``repro-smarts study run|ls|report`` — the declarative experiment
  layer: list the registered studies, execute one through
  ``Session.run_study`` (parallel batches, result caching, checkpoints
  all apply), and export its tidy rows as CSV/JSON.
* ``repro-smarts experiment fig6`` — regenerate one of the paper's
  tables/figures and print its report (same registry as ``study run``).
* ``repro-smarts checkpoint build|ls|gc`` — manage the warm-state
  checkpoint store that ``--checkpoints`` runs restore from;
  ``build --benchmarks all --machines 8-way,16-way`` batch-builds the
  whole suite for warm-up.
* ``repro-smarts serve`` — run the simulation-as-a-service HTTP job
  server (``repro.server``): submit RunSpecs and studies as JSON over
  REST, poll jobs, fetch results; ``--host/--port/--workers/
  --queue-depth/--job-timeout`` tune the service.
* ``repro-smarts jobs ls|gc`` — inspect and clean the on-disk ``.jobs/``
  records the server persists across restarts.
* ``repro-smarts store ls|stats|gc`` — inspect and collect the unified
  content-addressed artifact store (``.artifacts/``) every cache lives
  in: run results, checkpoint sets, BBV profiles, reference traces.
* ``repro-smarts worker`` — run a queue worker process draining the
  file-based work queue of the ``queue`` executor backend (started by
  ``QueueBackend`` per batch, or by hand for a standing worker fleet);
  ``--backend``/``REPRO_BACKEND`` select the backend for ``sweep`` and
  ``serve``.

Every command accepts ``--machine {8-way,16-way}`` (the scaled Table 3
configurations) and ``--scale`` to control benchmark length.
``estimate``, ``sweep``, and ``experiment`` accept ``--json`` to emit
machine-readable payloads (``RunResult.to_dict()`` for estimates and
sweeps) instead of text tables, and ``--checkpoints`` to replace
functional fast-forwarding with checkpointed warm-state restore
(estimates are bit-identical either way).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.api import (
    DEFAULT_STRIDE,
    EXPERIMENTS,
    EXTRA_NAMES,
    STRATEGIES,
    STUDIES,
    AdaptiveStrategy,
    CheckpointStore,
    RunSpec,
    Session,
    SystematicStrategy,
    SUITE_NAMES,
    default_context,
    format_table,
    resolve_benchmark,
    resolve_machine,
    run_reference,
    run_simpoint,
    run_study,
    get_benchmark,
    suite_specs,
    to_jsonable,
)


#: Machine configurations the CLI accepts (the scaled Table 3 pair).
MACHINE_NAMES = ("8-way", "16-way")

#: Benchmarks the single-run commands accept: the SPEC2K stand-in suite
#: plus the extra stress-test workloads (phase-shifting / irregular).
ESTIMATE_BENCHMARKS = (*SUITE_NAMES, *EXTRA_NAMES)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--machine", choices=list(MACHINE_NAMES),
                        default="8-way", help="machine configuration")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="benchmark length scale factor")


def _split_names(raw: str) -> list[str]:
    return [name.strip() for name in raw.split(",") if name.strip()]


def _reject_unknown(names: list[str], known: Sequence[str],
                    kind: str) -> bool:
    """True (and an error on stderr) when ``names`` has unknown entries."""
    unknown = [name for name in names if name not in known]
    if unknown:
        print(f"error: unknown {kind}(s) {', '.join(unknown)}; "
              f"available: {', '.join(known)}", file=sys.stderr)
    return bool(unknown)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-smarts",
        description="SMARTS sampling microarchitecture simulation "
                    "(ISCA 2003 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the synthetic benchmark suite")

    estimate = sub.add_parser(
        "estimate", help="estimate CPI/EPI with the SMARTS procedure")
    estimate.add_argument("benchmark", choices=ESTIMATE_BENCHMARKS)
    _add_common(estimate)
    estimate.add_argument("--metric", choices=["cpi", "epi"], default="cpi")
    estimate.add_argument("--strategy", choices=["systematic", "adaptive"],
                          default="systematic",
                          help="two-round n-tuning (systematic) or "
                               "run-to-target-CI batching (adaptive)")
    estimate.add_argument("--unit-size", type=int, default=50,
                          help="sampling unit size U (instructions)")
    estimate.add_argument("--warming", type=int, default=None,
                          help="detailed warming W (default: recommended)")
    estimate.add_argument("--no-functional-warming", action="store_true",
                          help="disable functional warming (not recommended)")
    estimate.add_argument("--epsilon", type=float, default=0.075,
                          help="target relative confidence interval")
    estimate.add_argument("--confidence", type=float, default=0.997)
    estimate.add_argument("--n-init", type=int, default=300,
                          help="initial sample size (systematic)")
    estimate.add_argument("--rounds", type=int, default=2,
                          help="maximum sampling rounds (systematic)")
    estimate.add_argument("--n-min", type=int, default=30,
                          help="adaptive: smallest sample before a "
                               "stopping decision")
    estimate.add_argument("--n-max", type=int, default=None,
                          help="adaptive: hard cap on sampled units "
                               "(default: the whole population)")
    estimate.add_argument("--batch-size", type=int, default=100,
                          help="adaptive: units simulated between CI "
                               "re-checks")
    estimate.add_argument("--validate", action="store_true",
                          help="also run the full detailed reference and "
                               "report the actual error")
    estimate.add_argument("--json", action="store_true",
                          help="emit the RunResult payload as JSON")
    estimate.add_argument("--no-cache", action="store_true",
                          help="bypass the on-disk run-result cache")
    estimate.add_argument("--checkpoints", action="store_true",
                          help="restore checkpointed warm state at each "
                               "sampling unit instead of fast-forwarding "
                               "(builds the checkpoint set on first use)")

    sweep = sub.add_parser(
        "sweep", help="run a batch of estimates across benchmarks/machines")
    sweep.add_argument("--benchmarks", default=None,
                       help="comma-separated benchmark names (default: all)")
    sweep.add_argument("--machines", default="8-way",
                       help="comma-separated machine names")
    sweep.add_argument("--strategy", choices=sorted(STRATEGIES),
                       default="systematic")
    sweep.add_argument("--scale", type=float, default=0.25,
                       help="benchmark length scale factor")
    sweep.add_argument("--metric", choices=["cpi", "epi"], default="cpi")
    sweep.add_argument("--epsilon", type=float, default=0.075)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--workers", type=int, default=None,
                       help="parallel worker processes (default: serial)")
    sweep.add_argument("--backend", default=None,
                       help="executor backend for cache misses (serial, "
                            "local-pool, queue; default: REPRO_BACKEND or "
                            "automatic)")
    sweep.add_argument("--json", action="store_true",
                       help="emit the RunResult payloads as JSON")
    sweep.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk run-result cache")
    sweep.add_argument("--checkpoints", action="store_true",
                       help="restore checkpointed warm state at each "
                            "sampling unit (sets are built once and "
                            "shared across workers)")

    reference = sub.add_parser(
        "reference", help="run full-stream detailed simulation")
    reference.add_argument("benchmark", choices=ESTIMATE_BENCHMARKS)
    _add_common(reference)
    reference.add_argument("--no-cache", action="store_true",
                           help="ignore the on-disk reference cache")

    simpoint = sub.add_parser("simpoint", help="run the SimPoint baseline")
    simpoint.add_argument("benchmark", choices=SUITE_NAMES)
    _add_common(simpoint)
    simpoint.add_argument("--interval-size", type=int, default=2500)
    simpoint.add_argument("--max-clusters", type=int, default=8)

    study = sub.add_parser(
        "study", help="run and inspect the declarative study registry")
    study_sub = study.add_subparsers(dest="study_command", required=True)
    study_run = study_sub.add_parser(
        "run", help="execute a registered study and print its report")
    study_run.add_argument("name", choices=sorted(STUDIES))
    study_run.add_argument("--json", action="store_true",
                           help="emit {study, title, rows, data} as JSON "
                                "(without the text report)")
    study_run.add_argument("--checkpoints", action="store_true",
                           help="run the study's estimation grid with "
                                "checkpointed functional warming")
    study_run.add_argument("--workers", type=int, default=None,
                           help="worker processes for the study's grid, "
                                "overriding REPRO_WORKERS for this "
                                "invocation (estimates are identical "
                                "either way; wall-clock speedup is "
                                "host-dependent)")
    study_ls = study_sub.add_parser(
        "ls", help="list the registered studies")
    study_ls.add_argument("--json", action="store_true",
                          help="emit the study metadata as JSON")
    study_report = study_sub.add_parser(
        "report", help="execute a study and emit its tidy rows")
    study_report.add_argument("name", choices=sorted(STUDIES))
    study_report.add_argument("--format", choices=["csv", "json"],
                              default="csv", help="tidy-row output format")
    study_report.add_argument("--output", default=None,
                              help="write rows to this file instead of stdout")
    study_report.add_argument("--checkpoints", action="store_true",
                              help="run the study's estimation grid with "
                                   "checkpointed functional warming")
    study_report.add_argument("--workers", type=int, default=None,
                              help="worker processes for the study's grid, "
                                   "overriding REPRO_WORKERS for this "
                                   "invocation")

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--json", action="store_true",
                            help="emit the experiment data as JSON "
                                 "(without the text report)")
    experiment.add_argument("--checkpoints", action="store_true",
                            help="run the experiment's estimation sweeps "
                                 "with checkpointed functional warming")

    checkpoint = sub.add_parser(
        "checkpoint", help="manage the warm-state checkpoint store")
    ckpt_sub = checkpoint.add_subparsers(dest="checkpoint_command",
                                         required=True)
    build = ckpt_sub.add_parser(
        "build", help="build (or refresh) checkpoint sets; one benchmark "
                      "positionally, or a batch via --benchmarks/--machines")
    build.add_argument("benchmark", nargs="?", default=None,
                       choices=[*SUITE_NAMES, "micro.syn"])
    _add_common(build)
    build.add_argument("--benchmarks", default=None,
                       help="comma-separated benchmark names, or 'all' for "
                            "the whole suite (batch build)")
    build.add_argument("--machines", default=None,
                       help="comma-separated machine names (default: "
                            "--machine)")
    build.add_argument("--unit-size", type=int, default=50,
                       help="sampling unit size U the set is keyed by")
    build.add_argument("--stride", type=int, default=None,
                       help="snapshot stride in sampling units; omit to "
                            "keep an existing set's grid (new builds "
                            f"default to {DEFAULT_STRIDE})")
    ls = ckpt_sub.add_parser("ls", help="list the stored checkpoint sets")
    ls.add_argument("--json", action="store_true",
                    help="emit the set metadata as JSON")
    gc = ckpt_sub.add_parser(
        "gc", help="remove stale checkpoint sets (old versions, tmp files)")
    gc.add_argument("--all", action="store_true",
                    help="remove every checkpoint set")
    gc.add_argument("--max-age-days", type=float, default=None,
                    help="also remove sets older than this many days")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be removed without deleting "
                         "(delegates to the artifact store's gc)")

    store = sub.add_parser(
        "store", help="inspect and collect the unified artifact store")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_ls = store_sub.add_parser(
        "ls", help="list stored artifacts per namespace")
    store_ls.add_argument("--json", action="store_true",
                          help="emit the artifact listing as JSON")
    store_stats = store_sub.add_parser(
        "stats", help="per-namespace entry counts and sizes")
    store_stats.add_argument("--json", action="store_true",
                             help="emit the stats payload as JSON")
    store_gc = store_sub.add_parser(
        "gc", help="remove stale artifacts (old versions, tmp litter, "
                   "quarantined blobs)")
    store_gc.add_argument("--all", action="store_true",
                          help="remove every stored artifact")
    store_gc.add_argument("--max-age-days", type=float, default=None,
                          help="also remove artifacts older than this "
                               "many days")
    store_gc.add_argument("--dry-run", action="store_true",
                          help="report what would be removed without "
                               "deleting")
    store_gc.add_argument("--namespaces", default=None,
                          help="comma-separated namespaces to collect "
                               "(default: all)")

    worker = sub.add_parser(
        "worker", help="run a queue-backend worker draining the shared "
                       "file work queue")
    worker.add_argument("--queue-dir", default=None,
                        help="work-queue directory (default: "
                             "REPRO_QUEUE_DIR or <artifacts>/queue)")
    worker.add_argument("--poll", type=float, default=0.2,
                        help="seconds between queue polls when idle")
    worker.add_argument("--lease", type=float, default=None,
                        help="claim lease in seconds; claims with no "
                             "heartbeat for this long are requeued")
    worker.add_argument("--max-idle", type=float, default=None,
                        help="exit after this many consecutive idle "
                             "seconds (default: run forever)")
    worker.add_argument("--max-jobs", type=int, default=None,
                        help="exit after processing this many jobs")

    serve = sub.add_parser(
        "serve", help="run the simulation-as-a-service HTTP job server")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8023,
                       help="bind port (0 picks an ephemeral port)")
    serve.add_argument("--workers", type=int, default=2,
                       help="background job worker threads")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="max queued jobs before submissions get 429")
    serve.add_argument("--job-timeout", type=float, default=None,
                       help="per-job timeout in seconds (default: none)")
    serve.add_argument("--no-cache", action="store_true",
                       help="bypass the shared run-result cache (every "
                            "submission simulates)")
    serve.add_argument("--backend", default=None,
                       help="executor backend for spec execution (serial, "
                            "local-pool, queue; default: REPRO_BACKEND or "
                            "automatic)")

    jobs = sub.add_parser(
        "jobs", help="inspect and clean the server's on-disk job records")
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)
    jobs_ls = jobs_sub.add_parser("ls", help="list persisted job records")
    jobs_ls.add_argument("--json", action="store_true",
                         help="emit the job records as JSON")
    jobs_gc = jobs_sub.add_parser(
        "gc", help="remove finished job records (and stray tmp files)")
    jobs_gc.add_argument("--max-age-days", type=float, default=None,
                         help="remove done/failed records older than this")
    jobs_gc.add_argument("--all", action="store_true",
                         help="remove every job record")
    jobs_gc.add_argument("--dry-run", action="store_true",
                         help="report what would be removed without "
                              "deleting")

    return parser


#: JSON coercion for study payloads (shared with the server layer).
_to_jsonable = to_jsonable


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_list() -> int:
    rows = [[spec.name, spec.category, spec.description]
            for spec in suite_specs()]
    print(format_table(["benchmark", "category", "description"], rows,
                       title="Synthetic benchmark suite (SPEC2K stand-ins)"))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    machine = resolve_machine(args.machine)
    # Leave detailed_warming=None when not given explicitly: the strategy
    # defers to the machine recommendation, and the spec hash stays
    # shareable with sweep/example runs that also use the default.
    if args.strategy == "adaptive":
        strategy = AdaptiveStrategy(
            unit_size=args.unit_size,
            n_min=args.n_min,
            n_max=args.n_max,
            batch_size=args.batch_size,
            detailed_warming=args.warming,
            functional_warming=not args.no_functional_warming,
        )
    else:
        strategy = SystematicStrategy(
            unit_size=args.unit_size,
            n_init=args.n_init,
            max_rounds=args.rounds,
            detailed_warming=args.warming,
            functional_warming=not args.no_functional_warming,
        )
    warming = strategy.effective_warming(machine)
    spec = RunSpec(
        benchmark=args.benchmark,
        machine=args.machine,
        strategy=strategy,
        scale=args.scale,
        metric=args.metric,
        epsilon=args.epsilon,
        confidence=args.confidence,
        checkpoints="auto" if args.checkpoints else "off",
    )
    session = Session(use_cache=not args.no_cache)
    result = session.run(spec)

    validation = None
    if args.validate:
        benchmark = get_benchmark(args.benchmark, scale=args.scale)
        reference = run_reference(benchmark.program, machine)
        true_value = reference.cpi if args.metric == "cpi" else reference.epi
        validation = {
            "true_value": true_value,
            "error": (result.estimate_mean - true_value) / true_value,
        }

    if args.json:
        payload = result.to_dict()
        if validation is not None:
            payload["validation"] = validation
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    label = args.metric.upper()
    print(f"benchmark            : {args.benchmark} "
          f"({result.benchmark_length:,} instructions)")
    print(f"machine              : {machine.name}")
    print(f"U / W / warming mode : {args.unit_size} / {warming} / "
          f"{'functional' if not args.no_functional_warming else 'detailed-only'}")
    print(f"{label} estimate         : {result.estimate_mean:.4f}")
    print(f"coefficient of var.  : {result.estimate_cv:.3f}")
    print(f"confidence interval  : ±{result.confidence_interval:.2%} "
          f"at {args.confidence:.1%} confidence "
          f"({'target met' if result.target_met else 'target NOT met'})")
    print(f"sampling rounds      : {result.rounds} "
          f"(n = {[r['sample_size'] for r in result.round_estimates]})")
    print(f"measured instructions: {result.instructions_measured:,} "
          f"({result.instructions_measured / result.benchmark_length:.2%} "
          f"of the stream)")
    if result.checkpoint_restores:
        print(f"checkpoint restores  : {result.checkpoint_restores} "
              f"({result.instructions_restored:,} instructions skipped, "
              f"{result.instructions_fastforwarded:,} still fast-forwarded)")
    if validation is not None:
        print(f"true {label} (full run)  : {validation['true_value']:.4f}")
        print(f"actual error         : {validation['error']:+.2%}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    benchmarks = (_split_names(args.benchmarks) if args.benchmarks
                  else list(SUITE_NAMES))
    if _reject_unknown(benchmarks, ESTIMATE_BENCHMARKS, "benchmark"):
        return 2
    machines = _split_names(args.machines)
    if _reject_unknown(machines, MACHINE_NAMES, "machine"):
        return 2
    strategy = STRATEGIES[args.strategy]()
    session = Session(use_cache=not args.no_cache, backend=args.backend)
    specs = session.sweep_specs(
        benchmarks=benchmarks, machines=machines, strategy=strategy,
        scale=args.scale, metric=args.metric, seed=args.seed,
        epsilon=args.epsilon,
        checkpoints="auto" if args.checkpoints else "off")
    batch = session.run_batch_report(specs, max_workers=args.workers)
    results = batch.completed

    if args.json:
        if batch.ok:
            # Fully-successful sweeps keep the historical schema: a
            # plain list of result dicts.
            print(json.dumps([r.to_dict() for r in results],
                             indent=2, sort_keys=True))
            return 0
        print(json.dumps({"results": [r.to_dict() for r in results],
                          "failures": [f.to_dict()
                                       for f in batch.failures]},
                         indent=2, sort_keys=True))
        return 1

    rows = []
    for result in results:
        rows.append([
            result.spec.benchmark,
            result.spec.machine,
            f"{result.estimate_mean:.4f}",
            f"±{result.confidence_interval:.2%}",
            "yes" if result.target_met else "no",
            result.sample_size,
            f"{result.detailed_fraction:.2%}",
            f"{result.wall_seconds:.1f}s",
        ])
    print(format_table(
        ["benchmark", "machine", f"{args.metric.upper()}", "99.7% CI",
         "target met", "n", "detailed fraction", "wall"],
        rows,
        title=f"Sweep: {args.strategy} strategy over "
              f"{len(benchmarks)} benchmarks x {len(machines)} machines"))
    if not batch.ok:
        _print_failure_table(batch.failures)
        return 1
    return 0


def _print_failure_table(failures) -> None:
    """Render per-spec failure envelopes to stderr as a table."""
    rows = [[row["benchmark"], row["machine"], row["error_type"],
             row["attempts"], "yes" if row["transient"] else "no",
             row["error"][:60]]
            for row in (f.row() for f in failures)]
    print(format_table(
        ["benchmark", "machine", "error", "attempts", "transient",
         "detail"], rows,
        title=f"Failed specs ({len(failures)})"), file=sys.stderr)


def _cmd_reference(args: argparse.Namespace) -> int:
    machine = resolve_machine(args.machine)
    benchmark = get_benchmark(args.benchmark, scale=args.scale)
    reference = run_reference(benchmark.program, machine,
                              use_cache=not args.no_cache)
    print(f"benchmark    : {benchmark.name}")
    print(f"machine      : {machine.name}")
    print(f"instructions : {reference.instructions:,}")
    print(f"cycles       : {reference.cycles:,}")
    print(f"CPI          : {reference.cpi:.4f}")
    print(f"EPI (nJ)     : {reference.epi:.4f}")
    print(f"wall seconds : {reference.seconds:.1f}")
    return 0


def _cmd_simpoint(args: argparse.Namespace) -> int:
    machine = resolve_machine(args.machine)
    benchmark = get_benchmark(args.benchmark, scale=args.scale)
    result = run_simpoint(benchmark.program, machine,
                          interval_size=args.interval_size,
                          max_clusters=args.max_clusters)
    print(f"benchmark          : {benchmark.name}")
    print(f"machine            : {machine.name}")
    print(f"clusters           : {result.num_clusters}")
    print(f"intervals simulated: {len(result.simpoints)} x "
          f"{result.interval_size} instructions")
    print(f"CPI estimate       : {result.cpi:.4f}")
    print(f"EPI estimate (nJ)  : {result.epi:.4f}")
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    store = CheckpointStore()
    if args.checkpoint_command == "build":
        return _cmd_checkpoint_build(args, store)
    if args.checkpoint_command == "ls":
        rows = store.entries()
        profiles = store.bbv_entries()
        if args.json:
            print(json.dumps({"directory": str(store.directory),
                              "sets": rows, "bbv_profiles": profiles},
                             indent=2, sort_keys=True))
            return 0
        table_rows = [[r["benchmark"], r["machine"], r["unit_size"],
                       r["stride"], r["snapshots"],
                       f"{r['benchmark_length']:,}", r["machine_hash"],
                       f"{r['size_bytes'] / 1024:.0f} KiB"]
                      for r in rows]
        print(format_table(
            ["benchmark", "machine", "U", "stride", "snapshots", "length",
             "geometry", "size"],
            table_rows,
            title=f"Checkpoint store: {store.directory} "
                  f"({len(rows)} sets)"))
        if profiles:
            print()
            print(format_table(
                ["benchmark", "interval", "limit", "intervals", "size"],
                [[p["benchmark"], p["interval_size"],
                  p["limit"] if p["limit"] is not None else "full",
                  p["intervals"], f"{p['size_bytes'] / 1024:.0f} KiB"]
                 for p in profiles],
                title=f"BBV profiles ({len(profiles)})"))
        return 0
    # gc — delegates to the unified artifact store (checkpoint + bbv
    # namespaces only; `repro-smarts store gc` collects everything).
    removed = store.gc(max_age_days=args.max_age_days, remove_all=args.all,
                       dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(f"{verb} {len(removed)} file(s) from {store.directory}")
    for path in removed:
        print(f"  {path.name}")
    return 0


def _cmd_checkpoint_build(args: argparse.Namespace,
                          store: CheckpointStore) -> int:
    if args.benchmarks:
        if args.benchmark is not None:
            print("error: give a positional benchmark or --benchmarks, "
                  "not both", file=sys.stderr)
            return 2
        if args.benchmarks.strip() == "all":
            benchmarks = list(SUITE_NAMES)
        else:
            benchmarks = _split_names(args.benchmarks)
        if _reject_unknown(benchmarks, (*SUITE_NAMES, "micro.syn"),
                           "benchmark"):
            return 2
    elif args.benchmark is not None:
        benchmarks = [args.benchmark]
    else:
        print("error: a benchmark (positional) or --benchmarks is required",
              file=sys.stderr)
        return 2
    machines = (_split_names(args.machines) if args.machines
                else [args.machine])
    if _reject_unknown(machines, MACHINE_NAMES, "machine"):
        return 2

    kwargs = {} if args.stride is None else {"stride": args.stride}
    single = len(benchmarks) == 1 and len(machines) == 1
    rows = []
    for benchmark_name in benchmarks:
        program = resolve_benchmark(benchmark_name, args.scale)
        for machine_name in machines:
            machine = resolve_machine(machine_name)
            ckpt = store.get_or_build(program, machine, args.unit_size,
                                      **kwargs)
            path = store.path_for(program, machine, args.unit_size)
            if single:
                chunk = ckpt.stride * ckpt.unit_size
                aligned = any(snap.position % chunk
                              for snap in ckpt.snapshots)
                print(f"benchmark       : {benchmark_name} "
                      f"({ckpt.benchmark_length:,} instructions)")
                print(f"machine         : {machine.name} (warm geometry "
                      f"{ckpt.machine_hash})")
                print(f"unit size       : {ckpt.unit_size}")
                print(f"snapshots       : {len(ckpt.snapshots)} "
                      f"(base grid every {chunk:,} instructions"
                      f"{', plus warm-aligned points' if aligned else ''})")
                print(f"file            : {path} "
                      f"({path.stat().st_size / 1024:.0f} KiB)")
                return 0
            rows.append([
                benchmark_name, machine_name, ckpt.unit_size,
                len(ckpt.snapshots), f"{ckpt.benchmark_length:,}",
                f"{path.stat().st_size / 1024:.0f} KiB",
            ])
    print(format_table(
        ["benchmark", "machine", "U", "snapshots", "length", "size"],
        rows,
        title=f"Checkpoint batch build: {len(rows)} sets under "
              f"{store.directory}"))
    return 0


def _study_context(checkpoints: bool):
    """The process-wide context, with checkpoint mode applied on request.

    Returns ``(ctx, restore)``: ``restore()`` puts the prior mode back —
    ``default_context()`` is process-cached, so the flag must never leak
    into later runs in the same process.
    """
    ctx = default_context()
    previous = ctx.checkpoints
    if checkpoints:
        ctx.checkpoints = "auto"

    def restore() -> None:
        ctx.checkpoints = previous

    return ctx, restore


def _cmd_study(args: argparse.Namespace) -> int:
    if args.study_command == "ls":
        rows = [study.describe() for study in STUDIES.values()]
        if args.json:
            print(json.dumps({"studies": rows}, indent=2, sort_keys=True))
            return 0
        print(format_table(
            ["name", "title", "grid", "legacy shim"],
            [[r["name"], r["title"], "yes" if r["has_grid"] else "-",
              r["legacy"]] for r in rows],
            title=f"Registered studies ({len(rows)})"))
        return 0

    from repro.reliability import BatchExecutionError

    ctx, restore = _study_context(args.checkpoints)
    try:
        report = run_study(args.name, ctx, max_workers=args.workers)
    except BatchExecutionError as exc:
        print(f"study {args.name!r} could not complete: {exc}",
              file=sys.stderr)
        _print_failure_table(exc.report.failures)
        return 1
    finally:
        restore()

    if args.study_command == "run":
        if args.json:
            print(json.dumps({"study": report.study, "title": report.title,
                              "rows": _to_jsonable(report.rows),
                              "data": {k: _to_jsonable(v)
                                       for k, v in report.data.items()
                                       if k != "report"}},
                             indent=2, sort_keys=True))
            return 0
        print(report.report)
        return 0

    # report: tidy rows as CSV/JSON, to stdout or a file.
    text = (report.rows_csv() if args.format == "csv"
            else report.rows_json() + "\n")
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"wrote {len(report.rows)} rows to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    ctx, restore = _study_context(args.checkpoints)
    try:
        data = EXPERIMENTS[args.name](ctx)
    finally:
        restore()
    if args.json:
        payload = {key: _to_jsonable(value)
                   for key, value in data.items() if key != "report"}
        print(json.dumps({"experiment": args.name, "data": payload},
                         indent=2, sort_keys=True))
        return 0
    print(data["report"])
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import NAMESPACES, ArtifactStore

    store = ArtifactStore()
    if args.store_command == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        rows = [[name, ns["entries"], ns["files"],
                 f"{ns['size_bytes'] / 1024:.0f} KiB", ns["directory"]]
                for name, ns in sorted(stats["namespaces"].items())]
        print(format_table(
            ["namespace", "entries", "files", "size", "directory"], rows,
            title=f"Artifact store: {stats['root']} "
                  f"({stats['size_bytes'] / 1024:.0f} KiB, "
                  f"{stats['quarantined']} quarantined)"))
        return 0
    if args.store_command == "ls":
        entries = []
        for namespace in NAMESPACES:
            directory = store.namespace_dir(namespace)
            if not directory.is_dir():
                continue
            for path in sorted(directory.iterdir()):
                if path.is_file() and not path.name.endswith(".tmp"):
                    entries.append({"namespace": namespace,
                                    "name": path.name,
                                    "size_bytes": path.stat().st_size})
        if args.json:
            print(json.dumps({"root": str(store.root), "artifacts": entries},
                             indent=2, sort_keys=True))
            return 0
        print(format_table(
            ["namespace", "artifact", "size"],
            [[e["namespace"], e["name"],
              f"{e['size_bytes'] / 1024:.0f} KiB"] for e in entries],
            title=f"Artifact store: {store.root} "
                  f"({len(entries)} artifacts)"))
        return 0
    # gc
    namespaces = (tuple(_split_names(args.namespaces)) if args.namespaces
                  else None)
    if namespaces and _reject_unknown(list(namespaces), NAMESPACES,
                                      "namespace"):
        return 2
    removed = store.gc(namespaces=namespaces,
                       max_age_days=args.max_age_days,
                       remove_all=args.all, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(f"{verb} {len(removed)} file(s) from {store.root}")
    for path in removed:
        print(f"  {path.name}")
    if namespaces is None:
        # The work queue lives under the same artifact root; its
        # terminal done/failed envelopes age out with the same flags.
        from repro.backends.queue import FileWorkQueue

        queue = FileWorkQueue()
        queue_removed = queue.gc(max_age_days=args.max_age_days,
                                 remove_all=args.all, dry_run=args.dry_run)
        print(f"{verb} {len(queue_removed)} queue record(s) from "
              f"{queue.directory}")
        for path in queue_removed:
            print(f"  {path.name}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.backends import DEFAULT_LEASE, run_worker

    lease = DEFAULT_LEASE if args.lease is None else args.lease
    processed = run_worker(args.queue_dir, poll=args.poll, lease=lease,
                           max_idle=args.max_idle, max_jobs=args.max_jobs)
    print(f"worker exiting after {processed} job(s)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import ServerConfig, serve

    return serve(ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        job_timeout=args.job_timeout,
        use_cache=not args.no_cache,
        backend=args.backend,
    ))


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.server import JobStore

    store = JobStore()
    if args.jobs_command == "ls":
        records = store.load_all()
        if args.json:
            print(json.dumps({"directory": str(store.directory),
                              "jobs": [r.describe() for r in records]},
                             indent=2, sort_keys=True))
            return 0
        rows = [[r.id, r.kind, r.status,
                 r.payload.get("benchmark") or r.payload.get("study", ""),
                 "yes" if r.cached else "-",
                 "-" if r.error is None else r.error[:40]]
                for r in records]
        print(format_table(
            ["id", "kind", "status", "target", "cached", "error"], rows,
            title=f"Job store: {store.directory} ({len(records)} records)"))
        return 0
    # gc
    removed = store.gc(max_age_days=args.max_age_days, remove_all=args.all,
                       dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(f"{verb} {len(removed)} file(s) from {store.directory}")
    for path in removed:
        print(f"  {path.name}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "estimate":
            return _cmd_estimate(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "reference":
            return _cmd_reference(args)
        if args.command == "simpoint":
            return _cmd_simpoint(args)
        if args.command == "checkpoint":
            return _cmd_checkpoint(args)
        if args.command == "study":
            return _cmd_study(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "store":
            return _cmd_store(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "jobs":
            return _cmd_jobs(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `... | head`) closed the pipe; point
        # stdout at devnull so interpreter shutdown doesn't re-raise.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
