"""Command line interface for the SMARTS reproduction.

The CLI exposes the library's main workflows without writing any Python:

* ``repro-smarts list`` — show the synthetic benchmark suite.
* ``repro-smarts estimate gcc.syn`` — estimate CPI (or EPI) with the
  SMARTS two-step procedure, optionally validating against a full
  detailed run.
* ``repro-smarts reference gcc.syn`` — run the full-stream detailed
  simulation and report CPI, EPI, and miss rates.
* ``repro-smarts simpoint gcc.syn`` — run the SimPoint baseline.
* ``repro-smarts experiment fig6`` — regenerate one of the paper's
  tables/figures and print its report.

Every command accepts ``--machine {8-way,16-way}`` (the scaled Table 3
configurations) and ``--scale`` to control benchmark length.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.config import scaled_16way, scaled_8way
from repro.core.procedure import estimate_metric, recommended_warming
from repro.harness import experiments as exp
from repro.harness.reference import run_reference
from repro.harness.reporting import format_table
from repro.simpoint import run_simpoint
from repro.workloads import SUITE_NAMES, get_benchmark, suite_specs

#: Experiment name -> harness entry point.
EXPERIMENTS = {
    "table3": exp.table3_configurations,
    "fig2": exp.figure2_cv_curves,
    "fig3": exp.figure3_minimum_instructions,
    "fig4": exp.figure4_speed_model,
    "fig5": exp.figure5_optimal_unit_size,
    "table4": exp.table4_detailed_warming,
    "table5": exp.table5_functional_warming_bias,
    "fig6": exp.figure6_cpi_estimates,
    "fig7": exp.figure7_epi_estimates,
    "table6": exp.table6_runtimes,
    "fig8": exp.figure8_simpoint_comparison,
}


def _machine(name: str):
    return scaled_8way() if name == "8-way" else scaled_16way()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--machine", choices=["8-way", "16-way"],
                        default="8-way", help="machine configuration")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="benchmark length scale factor")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-smarts",
        description="SMARTS sampling microarchitecture simulation "
                    "(ISCA 2003 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the synthetic benchmark suite")

    estimate = sub.add_parser(
        "estimate", help="estimate CPI/EPI with the SMARTS procedure")
    estimate.add_argument("benchmark", choices=SUITE_NAMES)
    _add_common(estimate)
    estimate.add_argument("--metric", choices=["cpi", "epi"], default="cpi")
    estimate.add_argument("--unit-size", type=int, default=50,
                          help="sampling unit size U (instructions)")
    estimate.add_argument("--warming", type=int, default=None,
                          help="detailed warming W (default: recommended)")
    estimate.add_argument("--no-functional-warming", action="store_true",
                          help="disable functional warming (not recommended)")
    estimate.add_argument("--epsilon", type=float, default=0.075,
                          help="target relative confidence interval")
    estimate.add_argument("--confidence", type=float, default=0.997)
    estimate.add_argument("--n-init", type=int, default=300,
                          help="initial sample size")
    estimate.add_argument("--rounds", type=int, default=2,
                          help="maximum sampling rounds")
    estimate.add_argument("--validate", action="store_true",
                          help="also run the full detailed reference and "
                               "report the actual error")

    reference = sub.add_parser(
        "reference", help="run full-stream detailed simulation")
    reference.add_argument("benchmark", choices=SUITE_NAMES)
    _add_common(reference)
    reference.add_argument("--no-cache", action="store_true",
                           help="ignore the on-disk reference cache")

    simpoint = sub.add_parser("simpoint", help="run the SimPoint baseline")
    simpoint.add_argument("benchmark", choices=SUITE_NAMES)
    _add_common(simpoint)
    simpoint.add_argument("--interval-size", type=int, default=2500)
    simpoint.add_argument("--max-clusters", type=int, default=8)

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))

    return parser


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_list() -> int:
    rows = [[spec.name, spec.category, spec.description]
            for spec in suite_specs()]
    print(format_table(["benchmark", "category", "description"], rows,
                       title="Synthetic benchmark suite (SPEC2K stand-ins)"))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    machine = _machine(args.machine)
    benchmark = get_benchmark(args.benchmark, scale=args.scale)
    warming = args.warming
    if warming is None:
        warming = recommended_warming(machine)
    result = estimate_metric(
        benchmark.program, machine,
        metric=args.metric,
        unit_size=args.unit_size,
        detailed_warming=warming,
        functional_warming=not args.no_functional_warming,
        epsilon=args.epsilon,
        confidence=args.confidence,
        n_init=args.n_init,
        max_rounds=args.rounds,
    )
    estimate = result.estimate
    label = args.metric.upper()
    print(f"benchmark            : {benchmark.name} "
          f"({result.benchmark_length:,} instructions)")
    print(f"machine              : {machine.name}")
    print(f"U / W / warming mode : {args.unit_size} / {warming} / "
          f"{'functional' if not args.no_functional_warming else 'detailed-only'}")
    print(f"{label} estimate         : {estimate.mean:.4f}")
    print(f"coefficient of var.  : {estimate.coefficient_of_variation:.3f}")
    print(f"confidence interval  : ±{result.confidence_interval:.2%} "
          f"at {args.confidence:.1%} confidence "
          f"({'target met' if result.target_met else 'target NOT met'})")
    print(f"sampling rounds      : {len(result.runs)} "
          f"(n = {[run.sample_size for run in result.runs]})")
    print(f"measured instructions: {result.total_measured_instructions:,} "
          f"({result.total_measured_instructions / result.benchmark_length:.2%} "
          f"of the stream)")
    if args.validate:
        reference = run_reference(benchmark.program, machine)
        true_value = reference.cpi if args.metric == "cpi" else reference.epi
        error = (estimate.mean - true_value) / true_value
        print(f"true {label} (full run)  : {true_value:.4f}")
        print(f"actual error         : {error:+.2%}")
    return 0


def _cmd_reference(args: argparse.Namespace) -> int:
    machine = _machine(args.machine)
    benchmark = get_benchmark(args.benchmark, scale=args.scale)
    reference = run_reference(benchmark.program, machine,
                              use_cache=not args.no_cache)
    print(f"benchmark    : {benchmark.name}")
    print(f"machine      : {machine.name}")
    print(f"instructions : {reference.instructions:,}")
    print(f"cycles       : {reference.cycles:,}")
    print(f"CPI          : {reference.cpi:.4f}")
    print(f"EPI (nJ)     : {reference.epi:.4f}")
    print(f"wall seconds : {reference.seconds:.1f}")
    return 0


def _cmd_simpoint(args: argparse.Namespace) -> int:
    machine = _machine(args.machine)
    benchmark = get_benchmark(args.benchmark, scale=args.scale)
    result = run_simpoint(benchmark.program, machine,
                          interval_size=args.interval_size,
                          max_clusters=args.max_clusters)
    print(f"benchmark          : {benchmark.name}")
    print(f"machine            : {machine.name}")
    print(f"clusters           : {result.num_clusters}")
    print(f"intervals simulated: {len(result.simpoints)} x "
          f"{result.interval_size} instructions")
    print(f"CPI estimate       : {result.cpi:.4f}")
    print(f"EPI estimate (nJ)  : {result.epi:.4f}")
    return 0


def _cmd_experiment(name: str) -> int:
    ctx = exp.default_context()
    data = EXPERIMENTS[name](ctx)
    print(data["report"])
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "estimate":
        return _cmd_estimate(args)
    if args.command == "reference":
        return _cmd_reference(args)
    if args.command == "simpoint":
        return _cmd_simpoint(args)
    if args.command == "experiment":
        return _cmd_experiment(args.name)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
