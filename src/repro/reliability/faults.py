"""Deterministic, seeded fault injection for the execution seams.

Robustness only counts when it is *tested*, and testing it requires
failures that are reproducible.  This module provides a
:class:`FaultInjector` driven by a declarative :class:`FaultPlan`: a
seed plus a list of :class:`FaultRule`\\ s naming *where* (an injection
site), *what* (crash, delay, ``OSError``, byte corruption), and *how
often* (deterministic pseudo-probability, firing budgets).  The same
plan against the same call sequence injects the same faults — which is
what lets the chaos-campaign tests assert bit-identical estimates for
every spec that survives.

Injection sites are threaded through the seams the repository already
owns (all cheap no-ops without an active plan — one module attribute
check plus one ``os.environ`` lookup):

===================  ====================================================
Site                 Where it fires
===================  ====================================================
``store.write``      :meth:`repro.store.ArtifactStore.write_path`
``store.read``       :meth:`repro.store.ArtifactStore.read_path`
``queue.claim``      :meth:`repro.backends.queue.FileWorkQueue.claim_next`
``queue.heartbeat``  :meth:`repro.backends.queue.FileWorkQueue.heartbeat`
``queue.requeue``    :meth:`FileWorkQueue.requeue_stale`
``worker.execute``   :func:`repro.backends.worker.process_job`
``pool.task``        the local-pool worker, before executing a spec
``server.job``       :meth:`repro.server.jobs.JobQueue._execute`
===================  ====================================================

Activation is explicit: either the ``REPRO_FAULT_PLAN`` environment
variable (inline JSON, or a path to a JSON file — inherited by spawned
pool/queue workers, which is how faults reach them) or
:func:`install_plan` from a test fixture.  Fault *kinds*:

* ``"raise"`` — raise :class:`InjectedFault` (classified transient).
* ``"oserror"`` — raise a real ``OSError`` with a named errno
  (``EIO``, ``ENOSPC``, ...), exercising production error paths.
* ``"crash"`` — ``os._exit(code)``: abrupt process death, the shape a
  killed fork-pool or queue worker leaves behind.
* ``"kill"`` — ``SIGKILL`` the calling process (the hardest death).
* ``"delay"`` — sleep; models stalled I/O and wedged heartbeats.
* ``"corrupt"`` — flip bytes in data passing through
  :func:`corrupt_bytes` (store writes/reads); checksum framing and
  JSON parsing must catch it downstream.

Cross-process firing budgets (``scope="shared"`` with a plan
``state_dir``) are claimed through exclusive-create *fuse files*, so
"crash exactly once, then succeed" holds even when each attempt runs in
a fresh worker process.
"""

from __future__ import annotations

import errno as errno_module
import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Environment variable carrying the active plan (inline JSON or path).
PLAN_ENV = "REPRO_FAULT_PLAN"

#: The injection sites the repository threads through its seams.
SITES = (
    "store.write", "store.read",
    "queue.claim", "queue.heartbeat", "queue.requeue",
    "worker.execute", "pool.task", "server.job",
)

#: The fault kinds a rule may request.
KINDS = ("raise", "oserror", "crash", "kill", "delay", "corrupt")


class InjectedFault(RuntimeError):
    """A fault raised by the injector; transient by default.

    Modeled as infrastructure trouble (a flaky disk, a dropped
    connection), so the retry layer classifies it transient unless the
    rule says otherwise.
    """

    def __init__(self, message: str, transient: bool = True):
        super().__init__(message)
        self.transient = transient


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault: where, what, and how often.

    Args:
        site: Injection-site name (see :data:`SITES`).
        kind: Fault kind (see :data:`KINDS`).
        match: Substring the site's key (artifact filename, benchmark
            name, job id) must contain; ``""`` matches every key.
        probability: Deterministic firing probability per consideration
            — drawn from a seeded hash of (seed, site, key, rule,
            counter), never from global RNG state.
        times: Maximum firings (``None`` = unlimited).
        scope: ``"process"`` counts firings per process; ``"shared"``
            claims them through fuse files in the plan's ``state_dir``,
            making the budget hold across worker processes.
        errno_name: Errno for ``kind="oserror"`` (``"EIO"``,
            ``"ENOSPC"``, ...).
        delay: Seconds for ``kind="delay"``.
        exit_code: Status for ``kind="crash"``.
        transient: Classification carried by ``kind="raise"`` faults.
    """

    site: str
    kind: str
    match: str = ""
    probability: float = 1.0
    times: int | None = 1
    scope: str = "process"
    errno_name: str = "EIO"
    delay: float = 0.05
    exit_code: int = 137
    transient: bool = True

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"available: {list(SITES)}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"available: {list(KINDS)}")
        if self.scope not in ("process", "shared"):
            raise ValueError("scope must be 'process' or 'shared'")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault-rule field(s) "
                             f"{sorted(unknown)}; known: {sorted(known)}")
        return cls(**data)

    def to_dict(self) -> dict:
        return {
            "site": self.site, "kind": self.kind, "match": self.match,
            "probability": self.probability, "times": self.times,
            "scope": self.scope, "errno_name": self.errno_name,
            "delay": self.delay, "exit_code": self.exit_code,
            "transient": self.transient,
        }


@dataclass
class FaultPlan:
    """A seed, a rule list, and (optionally) shared fuse-file state."""

    rules: list[FaultRule] = field(default_factory=list)
    seed: int = 0
    state_dir: str | None = None

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        rules = [rule if isinstance(rule, FaultRule)
                 else FaultRule.from_dict(rule)
                 for rule in data.get("rules", [])]
        return cls(rules=rules, seed=int(data.get("seed", 0)),
                   state_dir=data.get("state_dir"))

    @classmethod
    def from_raw(cls, raw: str) -> "FaultPlan":
        """Parse ``REPRO_FAULT_PLAN``: inline JSON or a JSON file path."""
        text = raw.strip()
        if not text.startswith("{"):
            text = Path(text).read_text()
        return cls.from_dict(json.loads(text))

    def to_dict(self) -> dict:
        return {"seed": self.seed, "state_dir": self.state_dir,
                "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


def _fraction(seed: int, site: str, key: str, rule_index: int,
              counter: int) -> float:
    """Deterministic pseudo-uniform draw in [0, 1) for one consideration."""
    digest = hashlib.sha256(
        f"{seed}|{site}|{key}|{rule_index}|{counter}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at the injection sites."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: Per-rule consideration counters (drives the seeded draws).
        self._considered: dict[int, int] = {}
        #: Per-rule firing counters (``scope="process"`` budgets).
        self._fired: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Budget accounting
    # ------------------------------------------------------------------
    def _claim_budget(self, index: int, rule: FaultRule) -> bool:
        """Consume one firing from the rule's budget; False = exhausted."""
        if rule.times is None:
            return True
        if rule.scope == "shared" and self.plan.state_dir:
            state = Path(self.plan.state_dir)
            state.mkdir(parents=True, exist_ok=True)
            for slot in range(rule.times):
                fuse = state / f"rule{index}-slot{slot}.fuse"
                try:
                    fd = os.open(fuse, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    continue
                os.close(fd)
                return True
            return False
        fired = self._fired.get(index, 0)
        if fired >= rule.times:
            return False
        self._fired[index] = fired + 1
        return True

    def _should_fire(self, index: int, rule: FaultRule, site: str,
                     key: str) -> bool:
        if rule.site != site or (rule.match and rule.match not in key):
            return False
        counter = self._considered.get(index, 0)
        self._considered[index] = counter + 1
        if rule.probability < 1.0 and _fraction(
                self.plan.seed, site, key, index, counter) >= rule.probability:
            return False
        return self._claim_budget(index, rule)

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def fire(self, site: str, key: str = "") -> None:
        """Evaluate every matching non-corrupt rule at one site."""
        for index, rule in enumerate(self.plan.rules):
            if rule.kind == "corrupt":
                continue
            if not self._should_fire(index, rule, site, key):
                continue
            if rule.kind == "delay":
                time.sleep(rule.delay)
            elif rule.kind == "raise":
                raise InjectedFault(
                    f"injected fault at {site} ({key or 'any'})",
                    transient=rule.transient)
            elif rule.kind == "oserror":
                code = getattr(errno_module, rule.errno_name, errno_module.EIO)
                raise OSError(code, f"injected {rule.errno_name} at {site} "
                                    f"({key or 'any'})")
            elif rule.kind == "crash":
                os._exit(rule.exit_code)
            elif rule.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)

    def corrupt(self, site: str, key: str, data: bytes) -> bytes:
        """Apply matching ``corrupt`` rules to bytes passing a site.

        Flips one byte (XOR ``0xFF``) at a seeded position.  For
        checksum-framed blobs the digest catches it; for the raw-ASCII
        JSON of the result cache a flipped byte is always an invalid
        UTF-8 sequence, so decoding catches it — either way the corrupt
        artifact can never be *served*, only rebuilt.
        """
        for index, rule in enumerate(self.plan.rules):
            if rule.kind != "corrupt" or not data:
                continue
            if not self._should_fire(index, rule, site, key):
                continue
            position = int(_fraction(self.plan.seed, site, key, index,
                                     len(data)) * len(data))
            mutated = bytearray(data)
            mutated[position] ^= 0xFF
            data = bytes(mutated)
        return data


# ----------------------------------------------------------------------
# Process-global activation
# ----------------------------------------------------------------------
_installed: FaultInjector | None = None
_env_injector: FaultInjector | None = None
_env_raw: str | None = None


def install_plan(plan: FaultPlan | dict | None) -> FaultInjector | None:
    """Install a plan directly (test fixtures); overrides the env var."""
    global _installed
    if plan is None:
        _installed = None
        return None
    if isinstance(plan, dict):
        plan = FaultPlan.from_dict(plan)
    _installed = FaultInjector(plan)
    return _installed


def clear_plan() -> None:
    """Remove any installed plan and drop the env-derived cache."""
    global _installed, _env_injector, _env_raw
    _installed = None
    _env_injector = None
    _env_raw = None


def active_injector() -> FaultInjector | None:
    """The injector in force, or None (the common, near-free case)."""
    if _installed is not None:
        return _installed
    raw = os.environ.get(PLAN_ENV)
    if not raw:
        return None
    global _env_injector, _env_raw
    if raw != _env_raw:
        _env_injector = FaultInjector(FaultPlan.from_raw(raw))
        _env_raw = raw
    return _env_injector


def inject(site: str, key: str = "") -> None:
    """The seam call: no-op without a plan, else evaluate it at ``site``."""
    injector = active_injector()
    if injector is not None:
        injector.fire(site, key)


def corrupt_bytes(site: str, key: str, data: bytes) -> bytes:
    """The corrupting seam call: identity without a plan."""
    injector = active_injector()
    if injector is None:
        return data
    return injector.corrupt(site, key, data)
