"""The partial-failure contract: BatchReport and failure envelopes.

A batch of specs used to be all-or-nothing: one worker death aborted
``Executor.run`` and discarded every finished result.  The contract is
now per-spec:

* every spec resolves to either a :class:`~repro.api.spec.RunResult`
  or a :class:`SpecFailure` envelope (error text, type, attempt count,
  transient classification), in submission order;
* :class:`BatchReport` carries both; ``report.completed`` is every
  result that exists, ``report.failures`` everything that does not;
* callers that cannot use a partial grid (``Session.run_batch``,
  studies) call :meth:`BatchReport.raise_failures`, which raises
  :class:`BatchExecutionError` — *carrying the report*, so even the
  raising path discards nothing.

Both envelope types serialize to plain JSON, so failure detail crosses
process boundaries (queue workers, the HTTP job server) unchanged.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import RunResult, RunSpec


@dataclass
class SpecFailure:
    """Why one spec produced no result, and how hard we tried.

    Args:
        spec: The failed spec.
        error: Human-readable error text (message, or a traceback for
            queue-worker failures).
        error_type: Exception class name (``"OSError"``).
        attempts: Execution attempts consumed (1-based).
        transient: The retry layer's classification of the final error —
            True means a healthy re-run could succeed (lease expiry,
            timeout), False means the spec itself is bad.
    """

    spec: "RunSpec"
    error: str
    error_type: str = "Exception"
    attempts: int = 1
    transient: bool = False

    @classmethod
    def from_exception(cls, spec: "RunSpec", exc: BaseException,
                       attempts: int = 1) -> "SpecFailure":
        from repro.reliability.retry import classify_transient

        return cls(spec=spec, error=str(exc) or type(exc).__name__,
                   error_type=type(exc).__name__, attempts=attempts,
                   transient=classify_transient(exc))

    @classmethod
    def from_current_exception(cls, spec: "RunSpec", exc: BaseException,
                               attempts: int = 1) -> "SpecFailure":
        """Like :meth:`from_exception` but keeps the full traceback text."""
        failure = cls.from_exception(spec, exc, attempts)
        failure.error = "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__)).strip()
        return failure

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "error": self.error,
            "error_type": self.error_type,
            "attempts": self.attempts,
            "transient": self.transient,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpecFailure":
        from repro.api.spec import RunSpec

        return cls(spec=RunSpec.from_dict(data["spec"]),
                   error=data["error"],
                   error_type=data.get("error_type", "Exception"),
                   attempts=int(data.get("attempts", 1)),
                   transient=bool(data.get("transient", False)))

    def row(self) -> dict:
        """A flat row for failure tables (CLI, server job records)."""
        first_line = self.error.strip().splitlines()[-1] \
            if self.error.strip() else self.error_type
        return {
            "benchmark": self.spec.benchmark,
            "machine": self.spec.machine,
            "error_type": self.error_type,
            "attempts": self.attempts,
            "transient": self.transient,
            "error": first_line,
        }


class BatchExecutionError(RuntimeError):
    """Some specs in a batch failed; the report (with every completed
    result) rides on the exception, so nothing is discarded even on the
    raising path."""

    def __init__(self, report: "BatchReport"):
        failures = report.failures
        lines = [f"{len(failures)} of {len(report.entries)} spec(s) failed "
                 f"({len(report.completed)} completed)"]
        for failure in failures[:5]:
            detail = failure.row()["error"]
            lines.append(f"  - {failure.spec.benchmark}/"
                         f"{failure.spec.machine} after "
                         f"{failure.attempts} attempt(s): "
                         f"{failure.error_type}: {detail}")
        if len(failures) > 5:
            lines.append(f"  ... and {len(failures) - 5} more")
        super().__init__("\n".join(lines))
        self.report = report


@dataclass
class BatchReport:
    """Everything one batch produced: results and failures, in order.

    ``entries`` is aligned with the submitted specs; each element is a
    :class:`~repro.api.spec.RunResult` or a :class:`SpecFailure`.
    """

    entries: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def completed(self) -> "list[RunResult]":
        from repro.api.spec import RunResult

        return [e for e in self.entries if isinstance(e, RunResult)]

    @property
    def failures(self) -> list[SpecFailure]:
        return [e for e in self.entries if isinstance(e, SpecFailure)]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def results(self) -> "list[RunResult]":
        """All results, in spec order; raises unless every spec completed."""
        self.raise_failures()
        return list(self.entries)

    def raise_failures(self) -> None:
        if not self.ok:
            raise BatchExecutionError(self)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator:
        return iter(self.entries)

    def result_for(self, spec: "RunSpec"):
        """The entry (result or failure) a spec resolved to, or None."""
        for entry in self.entries:
            if entry.spec == spec:
                return entry
        return None

    def failure_rows(self) -> list[dict]:
        return [failure.row() for failure in self.failures]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        from repro.api.spec import RunResult

        entries = []
        for entry in self.entries:
            if isinstance(entry, RunResult):
                entries.append({"result": entry.to_dict()})
            else:
                entries.append({"failure": entry.to_dict()})
        return {"entries": entries,
                "completed": len(self.completed),
                "failed": len(self.failures)}

    @classmethod
    def from_dict(cls, data: dict) -> "BatchReport":
        from repro.api.spec import RunResult

        entries = []
        for entry in data["entries"]:
            if "result" in entry:
                entries.append(RunResult.from_dict(entry["result"]))
            else:
                entries.append(SpecFailure.from_dict(entry["failure"]))
        return cls(entries=entries)
