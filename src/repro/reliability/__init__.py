"""repro.reliability — faults, retries, and partial-failure contracts.

Thousand-spec sweeps only pay off if they survive the failures scale
brings: crashed fork workers, stalled queue leases, torn artifact
writes.  This package makes robustness a *tested invariant* rather than
scattered best-effort code:

* :mod:`repro.reliability.faults` — a deterministic, seeded
  :class:`FaultInjector` with named injection points threaded through
  the store, all three executor backends, and the job server; activated
  only via ``REPRO_FAULT_PLAN`` or a test fixture (production paths pay
  one dict lookup).
* :mod:`repro.reliability.retry` — one :class:`RetryPolicy` (attempt
  budget, exponential backoff with deterministic jitter, transient vs.
  permanent error classification) applied per-spec by every backend;
  ``REPRO_MAX_ATTEMPTS`` tunes it ambiently.
* :mod:`repro.reliability.report` — the :class:`BatchReport`
  partial-failure contract: every spec resolves to a result or a
  :class:`SpecFailure` envelope, and even the raising path
  (:class:`BatchExecutionError`) carries every completed result.

The chaos-campaign tests (``tests/test_chaos_campaign.py``) assert the
system-level invariants under injected faults: no corrupt artifact is
ever served, no queue job is lost or double-completed, and every
completed spec's ``estimates_dict()`` is bit-identical to a fault-free
run.
"""

from repro.reliability.faults import (
    KINDS,
    PLAN_ENV,
    SITES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_injector,
    clear_plan,
    corrupt_bytes,
    inject,
    install_plan,
)
from repro.reliability.report import (
    BatchExecutionError,
    BatchReport,
    SpecFailure,
)
from repro.reliability.retry import (
    DEFAULT_MAX_ATTEMPTS,
    MAX_ATTEMPTS_ENV,
    RetryPolicy,
    classify_transient,
    run_with_retry,
)

__all__ = [
    "BatchExecutionError",
    "BatchReport",
    "DEFAULT_MAX_ATTEMPTS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "KINDS",
    "MAX_ATTEMPTS_ENV",
    "PLAN_ENV",
    "RetryPolicy",
    "SITES",
    "SpecFailure",
    "active_injector",
    "classify_transient",
    "clear_plan",
    "corrupt_bytes",
    "inject",
    "install_plan",
    "run_with_retry",
]
