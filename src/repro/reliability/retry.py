"""Retry policy: attempts, deterministic backoff, error classification.

One :class:`RetryPolicy` is shared by all three executor backends, so
"how many times is a flaky spec retried, and when do we give up" is a
single contract instead of per-backend folklore.  Two pieces:

* **Transient vs. permanent classification.**  Infrastructure trouble —
  ``OSError`` (EIO, ENOSPC, stale NFS handles), timeouts, connection
  drops, a broken process pool, an :class:`InjectedFault` — is
  *transient*: the same deterministic spec can succeed on a healthy
  retry.  Everything else (``ValueError`` from a bad strategy dict, a
  ``KeyError`` on an unknown benchmark) is *permanent*: the computation
  itself is deterministic, so re-running it reproduces the error and
  retrying only burns cycles.
* **Exponential backoff with deterministic jitter.**  Delays double per
  attempt and carry a jitter factor drawn from a seeded hash of
  (seed, key, attempt) — never from global RNG state — so runs are
  reproducible while concurrent retries still decorrelate.

``REPRO_MAX_ATTEMPTS`` overrides the attempt budget ambiently (it
reaches spawned pool and queue workers through the environment).
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.reliability.faults import InjectedFault

#: Attempt budget when neither constructor nor environment says.
DEFAULT_MAX_ATTEMPTS = 3

#: Environment variable overriding the attempt budget everywhere.
MAX_ATTEMPTS_ENV = "REPRO_MAX_ATTEMPTS"


def classify_transient(exc: BaseException) -> bool:
    """True when retrying the failed operation could plausibly succeed."""
    if isinstance(exc, InjectedFault):
        return exc.transient
    if isinstance(exc, (BrokenProcessPool, TimeoutError, ConnectionError)):
        return True
    if isinstance(exc, MemoryError):
        return False
    if isinstance(exc, OSError):
        return True
    return False


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget + backoff schedule + classification.

    Args:
        max_attempts: Total tries per spec (first run included).
        base_delay: Backoff before the second attempt, in seconds;
            doubles per further attempt.
        max_delay: Backoff ceiling.
        seed: Seed for the deterministic jitter draw.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    base_delay: float = 0.05
    max_delay: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")

    @classmethod
    def from_env(cls, **overrides) -> "RetryPolicy":
        """A policy honoring ``REPRO_MAX_ATTEMPTS`` when set."""
        if "max_attempts" not in overrides:
            raw = os.environ.get(MAX_ATTEMPTS_ENV, "").strip()
            if raw:
                try:
                    overrides["max_attempts"] = int(raw)
                except ValueError:
                    raise ValueError(
                        f"{MAX_ATTEMPTS_ENV} must be an integer, "
                        f"got {raw!r}") from None
        return cls(**overrides)

    # ------------------------------------------------------------------
    def transient(self, exc: BaseException) -> bool:
        return classify_transient(exc)

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) gets a successor."""
        return attempt < self.max_attempts and self.transient(exc)

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1``; deterministic jitter.

        ``base_delay * 2**(attempt-1)`` scaled by a jitter factor in
        [1, 2) drawn from a seeded hash — the same (seed, key, attempt)
        always backs off identically.
        """
        digest = hashlib.sha256(
            f"{self.seed}|{key}|{attempt}".encode()).digest()
        jitter = 1.0 + int.from_bytes(digest[:8], "big") / 2 ** 64
        return min(self.base_delay * (2 ** (attempt - 1)) * jitter,
                   self.max_delay)


def run_with_retry(fn, key: str, policy: RetryPolicy,
                   sleep=time.sleep) -> tuple:
    """Call ``fn`` under the policy; returns ``(value, attempts)``.

    Transient errors are retried (with backoff) while the budget lasts;
    the final error — permanent, or budget exhausted — propagates to the
    caller, which turns it into a failure envelope.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn(), attempt
        except Exception as exc:  # noqa: BLE001 — classified below
            if not policy.should_retry(exc, attempt):
                raise
            sleep(policy.delay(key, attempt))
