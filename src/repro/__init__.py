"""repro — a full reproduction of SMARTS (Wunderlich et al., ISCA 2003).

SMARTS (Sampling Microarchitecture Simulation) accelerates detailed
microarchitecture simulation by measuring only a statistically chosen
systematic sample of tiny sampling units, keeping long-history
microarchitectural state warm with functional warming in between, and
reporting estimates with quantified confidence.

This package provides:

* ``repro.core`` — the SMARTS framework itself: sampling statistics,
  systematic sampling plans, the sampling simulation engine, the
  two-step estimation procedure, and the analytical speed model.
* ``repro.isa`` / ``repro.functional`` / ``repro.detailed`` /
  ``repro.memory`` / ``repro.branch`` / ``repro.energy`` /
  ``repro.config`` — the simulation substrate: a small RISC-like ISA, a
  functional simulator with functional warming, a detailed out-of-order
  superscalar timing model with caches, TLBs, MSHRs, store buffer and
  branch prediction, a Wattch-style energy model, and the paper's 8-way
  and 16-way machine configurations.
* ``repro.workloads`` — a synthetic benchmark suite standing in for
  SPEC CPU2000.
* ``repro.simpoint`` — the SimPoint baseline (BBV clustering).
* ``repro.harness`` — reference simulations and supporting analyses
  (bias, CV curves, rate measurement); the per-figure entry points are
  deprecated shims over the registered studies in ``repro.api.studies``.

Quickstart (the unified session layer; see API.md)::

    from repro import RunSpec, Session

    session = Session()
    result = session.run(RunSpec(benchmark="gcc.syn", scale=0.2))
    print(result.estimate_mean, result.confidence_interval)

The lower-level building blocks remain available::

    from repro import estimate_metric, get_benchmark, scaled_8way

    benchmark = get_benchmark("gcc.syn", scale=0.2)
    result = estimate_metric(benchmark.program, scaled_8way(), metric="cpi")
    print(result.estimate.mean, result.confidence_interval)
"""

from repro.api import (
    CheckpointSet,
    CheckpointStore,
    Executor,
    RandomStrategy,
    ResultCache,
    ResultSet,
    RunResult,
    RunSpec,
    SamplingStrategy,
    Session,
    StratifiedStrategy,
    Study,
    StudyContext,
    StudyReport,
    SystematicStrategy,
    build_checkpoints,
    get_strategy,
    get_study,
    register_strategy,
    register_study,
    run_study,
    strategy_from_dict,
)
from repro.config import (
    MachineConfig,
    get_config,
    scaled_16way,
    scaled_8way,
    table3_16way,
    table3_8way,
)
from repro.core import (
    CONFIDENCE_95,
    CONFIDENCE_997,
    MetricEstimate,
    ProcedureResult,
    SamplingWorkload,
    SimulatorRates,
    SmartsEngine,
    SmartsRunResult,
    SystematicSamplingPlan,
    estimate_metric,
    recommended_warming,
    required_sample_size,
    run_smarts,
)
from repro.detailed import DetailedSimulator, MicroarchState, PipelineCounters
from repro.energy import EnergyModel
from repro.functional import (
    FastCore,
    FunctionalCore,
    FunctionalWarmer,
    create_core,
    engine_name,
    measure_program_length,
)
from repro.harness import ExperimentContext, run_reference
from repro.simpoint import run_simpoint
from repro.workloads import SUITE_NAMES, build_suite, get_benchmark, micro_benchmark

__version__ = "1.0.0"

__all__ = [
    "CONFIDENCE_95",
    "CONFIDENCE_997",
    "CheckpointSet",
    "CheckpointStore",
    "DetailedSimulator",
    "EnergyModel",
    "Executor",
    "ExperimentContext",
    "FastCore",
    "FunctionalCore",
    "FunctionalWarmer",
    "MachineConfig",
    "MetricEstimate",
    "MicroarchState",
    "PipelineCounters",
    "ProcedureResult",
    "RandomStrategy",
    "ResultCache",
    "ResultSet",
    "RunResult",
    "RunSpec",
    "SUITE_NAMES",
    "SamplingStrategy",
    "SamplingWorkload",
    "Session",
    "SimulatorRates",
    "SmartsEngine",
    "SmartsRunResult",
    "StratifiedStrategy",
    "Study",
    "StudyContext",
    "StudyReport",
    "SystematicSamplingPlan",
    "SystematicStrategy",
    "build_checkpoints",
    "build_suite",
    "create_core",
    "engine_name",
    "estimate_metric",
    "get_benchmark",
    "get_config",
    "get_strategy",
    "get_study",
    "measure_program_length",
    "micro_benchmark",
    "recommended_warming",
    "register_strategy",
    "register_study",
    "required_sample_size",
    "run_reference",
    "run_simpoint",
    "run_smarts",
    "run_study",
    "scaled_16way",
    "scaled_8way",
    "strategy_from_dict",
    "table3_16way",
    "table3_8way",
    "__version__",
]
