"""repro.store — the unified content-addressed artifact store.

Every persistent artifact the simulator produces — cached run results,
warm-state checkpoint sets, BBV profiles, reference traces — lives in
one store under one directory (default ``.artifacts/``, overridable with
``REPRO_ARTIFACT_DIR``), organized into typed namespaces::

    .artifacts/
        result/      RunResult JSON, keyed by RunSpec content hash
        checkpoint/  CheckpointSet blobs, keyed by program/geometry
        bbv/         BBV profiles, keyed by program fingerprint
        reftrace/    full-stream reference traces (npz)
        quarantine/  corrupt blobs moved aside on checksum mismatch

All artifacts are *content addressed*: their filenames embed content
fingerprints (program bytes, machine warm geometry, spec hash) plus a
format version, so a blob is immutable once written — concurrent writers
of the same key produce identical bytes and last-rename-wins is safe.
Writes are atomic and durable (per-writer tmp file, fsync, ``os.replace``);
binary blobs carry a checksum header that reads verify, quarantining any
corrupt or truncated file instead of crashing on it.

The legacy cache classes (``ResultCache``, ``CheckpointStore``, the
reference-trace cache in ``repro.harness.reference``) are thin adapters
over this store, and the legacy per-cache environment variables
(``REPRO_RUN_CACHE_DIR``, ``REPRO_CHECKPOINT_DIR``, ``REPRO_CACHE_DIR``)
keep working as per-namespace directory overrides.

:mod:`repro.store.accounting` records every full-stream functional or
detailed pass (kind, benchmark, instruction count), which is how tests
assert that work is fetched from the store instead of recomputed.
"""

from repro.store.accounting import (
    PassEvent,
    instructions_by_kind,
    pass_events,
    record_pass,
    reset_pass_log,
)
from repro.store.artifacts import (
    NAMESPACES,
    ArtifactCorruptionWarning,
    ArtifactStore,
    default_artifact_dir,
    fingerprint,
    register_artifact_kind,
    registered_kinds,
)

__all__ = [
    "NAMESPACES",
    "ArtifactCorruptionWarning",
    "ArtifactStore",
    "PassEvent",
    "default_artifact_dir",
    "fingerprint",
    "instructions_by_kind",
    "pass_events",
    "record_pass",
    "register_artifact_kind",
    "registered_kinds",
    "reset_pass_log",
]
