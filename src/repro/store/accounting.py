"""Instruction-count accounting of full-stream simulation passes.

SMARTS runtime is dominated by full passes over the instruction stream
(functional warming, reference simulation, checkpoint builds, BBV
profiling).  The artifact store exists to make each such pass happen
*once*; this module is the ledger that proves it.  Every producer of a
full-stream pass calls :func:`record_pass` with the pass kind and the
number of instructions it executed, and tests (plus queue-worker result
envelopes) read the log back to assert that work was fetched by key
from the store instead of recomputed — e.g. that one reference pass
with checkpoint capture enabled leaves no ``checkpoint_build`` pass
behind it.

The log is process-local and append-only; it is bookkeeping, not a
side channel — nothing in the simulator reads it back to make
decisions, so recording is always safe.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

#: Pass kinds currently recorded (informational; the log is open-ended).
PASS_KINDS = (
    "reference",        # full-stream detailed simulation (harness.reference)
    "checkpoint_build",  # functional-warming checkpoint build pass
    "measure_length",   # functional pass measuring dynamic length
    "bbv_profile",      # BBV profiling pass (stratified/SimPoint)
)


@dataclass(frozen=True)
class PassEvent:
    """One recorded full-stream pass."""

    kind: str
    benchmark: str
    instructions: int

    def to_dict(self) -> dict:
        return asdict(self)


_EVENTS: list[PassEvent] = []


def record_pass(kind: str, benchmark: str, instructions: int) -> PassEvent:
    """Append one full-stream pass to the process-local ledger."""
    event = PassEvent(kind=kind, benchmark=str(benchmark),
                      instructions=int(instructions))
    _EVENTS.append(event)
    return event


def pass_events() -> list[PassEvent]:
    """The recorded passes, in order (a copy; safe to mutate)."""
    return list(_EVENTS)


def reset_pass_log() -> None:
    """Clear the ledger (test isolation)."""
    _EVENTS.clear()


def instructions_by_kind() -> dict[str, int]:
    """Total instructions executed per pass kind."""
    totals: dict[str, int] = {}
    for event in _EVENTS:
        totals[event.kind] = totals.get(event.kind, 0) + event.instructions
    return totals
