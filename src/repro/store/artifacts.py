"""The content-addressed artifact store behind every on-disk cache.

One :class:`ArtifactStore` owns one root directory with typed namespace
subdirectories (``result/``, ``checkpoint/``, ``bbv/``, ``reftrace/``).
Artifacts are files whose *names* carry their identity — content
fingerprints plus a format version — so the store never needs an index:
a key either resolves to a file or it does not, and concurrent writers
of the same key write identical bytes.

Three disciplines apply to every artifact:

* **Atomic, durable writes** — payload goes to a per-writer tmp file
  (pid + thread id in the name), is flushed and fsynced, then renamed
  over the final path with ``os.replace``.  A reader can only ever see
  a complete artifact; a killed writer leaves at worst a ``*.tmp``
  file that ``gc`` sweeps.
* **Checksum-verified reads** — binary blobs are framed with a header
  (``REPROART1`` magic + SHA-256 of the payload); reads verify the
  digest and move any corrupt or truncated blob into ``quarantine/``
  instead of failing on it, so the caller simply rebuilds.  Headerless
  files (artifacts written before the store existed, or formats that
  must stay directly parseable, like the result cache's raw JSON) are
  returned as-is.
* **Version-based gc** — adapters register their filename suffixes
  (:func:`register_artifact_kind`), and :meth:`ArtifactStore.gc`
  removes artifacts whose names carry a stale format version, plus tmp
  litter and (optionally) old or quarantined files.

Legacy environment variables remain per-namespace overrides (see
``NAMESPACE_ENV``), which is also what keeps existing tests isolated.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import warnings
from pathlib import Path
from typing import Callable

from repro.paths import project_cache_dir
from repro.reliability.faults import corrupt_bytes, inject

#: The typed namespaces of the store (subdirectories of the root).
NAMESPACES = ("result", "checkpoint", "bbv", "reftrace")

#: Legacy per-cache environment variables, honored as per-namespace
#: directory overrides (first set variable wins).  ``checkpoint`` and
#: ``bbv`` share ``REPRO_CHECKPOINT_DIR`` because the pre-store layout
#: kept ``.ckpt`` and ``.bbvp`` files in one flat directory.
NAMESPACE_ENV: dict[str, tuple[str, ...]] = {
    "result": ("REPRO_RUN_CACHE_DIR",),
    "checkpoint": ("REPRO_CHECKPOINT_DIR",),
    "bbv": ("REPRO_CHECKPOINT_DIR",),
    "reftrace": ("REPRO_REF_CACHE_DIR", "REPRO_CACHE_DIR"),
}

#: Checksum frame: magic line, hex SHA-256 line, then the payload.
_MAGIC = b"REPROART1\n"
_DIGEST_LEN = 64  # hex sha256


class ArtifactCorruptionWarning(UserWarning):
    """A stored blob failed its checksum and was quarantined."""


def default_artifact_dir() -> Path:
    """The store root (``REPRO_ARTIFACT_DIR``, default ``.artifacts/``)."""
    return project_cache_dir("REPRO_ARTIFACT_DIR", ".artifacts")


def fingerprint(payload) -> str:
    """The store's one fingerprint scheme: sha256 of canonical JSON.

    Matches :meth:`repro.api.spec.RunSpec.key` (sorted-key JSON, first
    16 hex digits), so every artifact key in the repository is derived
    the same way from JSON-shaped content.
    """
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


#: namespace -> {extension: current-version filename suffix}, populated
#: by the adapter modules at import time (idempotent).  gc uses it to
#: recognize version-stale artifacts by name alone.
_KINDS: dict[str, dict[str, str]] = {}


def register_artifact_kind(namespace: str, extension: str,
                           current_suffix: str) -> None:
    """Declare the current filename suffix of one artifact kind.

    ``extension`` (e.g. ``".ckpt"``) selects the files the kind owns in
    its namespace; ``current_suffix`` (e.g. ``"--v2.ckpt"``) is what a
    current-format artifact's name ends with — anything else with the
    extension is version-stale and eligible for gc.
    """
    if namespace not in NAMESPACES:
        raise ValueError(f"unknown namespace {namespace!r}; "
                         f"available: {list(NAMESPACES)}")
    _KINDS.setdefault(namespace, {})[extension] = current_suffix


def registered_kinds() -> dict[str, dict[str, str]]:
    """The registered artifact kinds (a copy; for introspection)."""
    return {ns: dict(kinds) for ns, kinds in _KINDS.items()}


class ArtifactStore:
    """One content-addressed directory serving every artifact namespace.

    Args:
        root: Store root directory; default :func:`default_artifact_dir`.
        enabled: When False, reads miss and writes are dropped (the
            store never touches the filesystem).
        overrides: Explicit per-namespace directory overrides, taking
            precedence over both the root and the legacy environment
            variables — this is how the adapter classes honor their
            ``directory=...`` constructor arguments.
    """

    def __init__(self, root: Path | str | None = None, enabled: bool = True,
                 overrides: dict[str, Path | str] | None = None):
        self.root = Path(root) if root else default_artifact_dir()
        self.enabled = enabled
        self._overrides = {ns: Path(path)
                           for ns, path in (overrides or {}).items()
                           if path is not None}

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def namespace_dir(self, namespace: str) -> Path:
        """The directory one namespace's artifacts live in.

        Resolution order: explicit constructor override, legacy
        environment variable, ``<root>/<namespace>/``.
        """
        if namespace not in NAMESPACES:
            raise ValueError(f"unknown namespace {namespace!r}; "
                             f"available: {list(NAMESPACES)}")
        override = self._overrides.get(namespace)
        if override is not None:
            return override
        for env_var in NAMESPACE_ENV.get(namespace, ()):
            env = os.environ.get(env_var)
            if env:
                return Path(env)
        return self.root / namespace

    def path(self, namespace: str, filename: str) -> Path:
        """The full path of one artifact."""
        return self.namespace_dir(namespace) / filename

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    # ------------------------------------------------------------------
    # Raw blob I/O (path level)
    # ------------------------------------------------------------------
    def write_path(self, path: Path, data: bytes,
                   checksum: bool = True) -> Path:
        """Atomically, durably write one artifact file.

        With ``checksum`` the payload is framed with the store's magic
        and SHA-256 header, which :meth:`read_path` verifies; without it
        the bytes land verbatim (formats that must stay directly
        parseable, e.g. the result cache's JSON).  Raises ``OSError``
        on failure — degrade policy is the caller's (the result cache
        warns and continues; checkpoint builds propagate).
        """
        if not self.enabled:
            return path
        inject("store.write", path.name)
        if checksum:
            digest = hashlib.sha256(data).hexdigest().encode()
            data = _MAGIC + digest + b"\n" + data
        # Fault seam: a plan may corrupt the bytes as they land (torn
        # write, bit rot) — the checksum frame / JSON parse must catch
        # it on read, never serve it.
        data = corrupt_bytes("store.write", path.name, data)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(
            f".{os.getpid()}-{threading.get_ident()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise
        return path

    def read_path(self, path: Path) -> bytes | None:
        """Read and verify one artifact file; None on miss or corruption.

        A blob carrying the store's checksum header is verified against
        its digest; on mismatch (truncation, bit rot, torn legacy write)
        the file is moved into ``quarantine/`` — with an
        :class:`ArtifactCorruptionWarning` — so the caller rebuilds and
        the bad bytes stay available for inspection.  Headerless files
        are returned as-is (legacy artifacts and unframed formats).
        """
        if not self.enabled:
            return None
        try:
            inject("store.read", path.name)
            raw = path.read_bytes()
        except OSError:
            return None
        data = corrupt_bytes("store.read", path.name, raw)
        if not data.startswith(_MAGIC):
            if data is not raw and raw.startswith(_MAGIC):
                # Injected read-rot hit the frame header itself: the
                # blob is framed on disk, so treat it as corrupt rather
                # than returning mangled bytes as a headerless artifact.
                self._quarantine(path)
                return None
            return data
        header_end = len(_MAGIC) + _DIGEST_LEN
        digest = data[len(_MAGIC):header_end]
        payload = data[header_end + 1:]
        if (len(data) > header_end and data[header_end:header_end + 1] == b"\n"
                and hashlib.sha256(payload).hexdigest().encode() == digest):
            return payload
        self._quarantine(path)
        return None

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt blob aside (best effort) and warn."""
        target = self.quarantine_dir / f"{int(time.time())}--{path.name}"
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
            detail = f"quarantined to {target}"
        except OSError as exc:
            detail = f"quarantine failed ({exc}); left in place"
        warnings.warn(
            f"artifact {path} failed its checksum ({detail}); "
            f"it will be rebuilt", ArtifactCorruptionWarning, stacklevel=3)

    # ------------------------------------------------------------------
    # Namespace-level helpers
    # ------------------------------------------------------------------
    def get(self, namespace: str, filename: str) -> bytes | None:
        return self.read_path(self.path(namespace, filename))

    def put(self, namespace: str, filename: str, data: bytes,
            checksum: bool = True) -> Path:
        return self.write_path(self.path(namespace, filename), data,
                               checksum=checksum)

    def get_or_create(self, namespace: str, filename: str,
                      builder: Callable[[], bytes],
                      checksum: bool = True) -> bytes:
        """Memoize one artifact: read it, else build + store + return.

        The builder's payload is returned even when the store is
        disabled or unwritable (a failed write degrades to a warning) —
        memoization must never change what the caller computes.
        """
        data = self.get(namespace, filename)
        if data is not None:
            return data
        data = builder()
        try:
            self.put(namespace, filename, data, checksum=checksum)
        except OSError as exc:
            warnings.warn(
                f"artifact store write to {self.path(namespace, filename)} "
                f"failed ({exc}); continuing without caching",
                RuntimeWarning, stacklevel=2)
        return data

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Per-namespace file counts, sizes, and current-version entries."""
        namespaces: dict[str, dict] = {}
        for namespace in NAMESPACES:
            directory = self.namespace_dir(namespace)
            files = size_bytes = entries = 0
            suffixes = tuple(_KINDS.get(namespace, {}).values())
            if directory.is_dir():
                for item in directory.iterdir():
                    if not item.is_file():
                        continue
                    try:
                        size_bytes += item.stat().st_size
                    except OSError:
                        continue
                    files += 1
                    if any(item.name.endswith(s) for s in suffixes):
                        entries += 1
            namespaces[namespace] = {
                "directory": str(directory),
                "files": files,
                "entries": entries,
                "size_bytes": size_bytes,
            }
        quarantined = 0
        if self.quarantine_dir.is_dir():
            quarantined = sum(1 for item in self.quarantine_dir.iterdir()
                              if item.is_file())
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "namespaces": namespaces,
            "quarantined": quarantined,
            "size_bytes": sum(ns["size_bytes"]
                              for ns in namespaces.values()),
        }

    def gc(self, namespaces: tuple[str, ...] | None = None,
           max_age_days: float | None = None, remove_all: bool = False,
           dry_run: bool = False) -> list[Path]:
        """Collect stale artifacts; returns the removed (or would-be) paths.

        Always removes ``*.tmp`` litter and artifacts whose filenames
        carry a stale format version (per :func:`register_artifact_kind`).
        ``max_age_days`` additionally removes artifacts not touched
        within the window, ``remove_all`` empties the namespaces, and
        ``dry_run`` reports without deleting.  Files the registry does
        not describe are never touched — the store does not delete what
        it cannot classify.  Quarantined blobs are swept by the same
        age/``remove_all`` rules.
        """
        selected = namespaces if namespaces is not None else NAMESPACES
        now = time.time()
        removed: list[Path] = []
        seen: set[Path] = set()

        def _remove(path: Path) -> None:
            if path in seen:
                return
            seen.add(path)
            if not dry_run:
                path.unlink(missing_ok=True)
            removed.append(path)

        def _too_old(path: Path) -> bool:
            if max_age_days is None:
                return False
            try:
                return now - path.stat().st_mtime > max_age_days * 86400
            except OSError:
                return False

        dir_kinds: dict[Path, dict[str, str]] = {}
        for namespace in selected:
            directory = self.namespace_dir(namespace)
            dir_kinds.setdefault(directory, {}).update(
                _KINDS.get(namespace, {}))
        directories = sorted(dir_kinds.items(), key=lambda kv: str(kv[0]))

        for directory, kinds in directories:
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.tmp")):
                _remove(path)
            for extension, current_suffix in sorted(kinds.items()):
                for path in sorted(directory.glob(f"*{extension}")):
                    stale_version = not path.name.endswith(current_suffix)
                    if remove_all or stale_version or _too_old(path):
                        _remove(path)
        if (remove_all or max_age_days is not None) \
                and self.quarantine_dir.is_dir():
            for path in sorted(self.quarantine_dir.iterdir()):
                if path.is_file() and (remove_all or _too_old(path)):
                    _remove(path)
        return removed
