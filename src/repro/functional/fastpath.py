"""Trace-compiled functional execution: the block-level fast path.

The interpreted :class:`~repro.functional.simulator.FunctionalCore` pays
a fixed per-instruction cost — decode-record unpacking, opcode dispatch
through one large ``if/elif`` chain, bound-method lookups on the
architectural state, and a :class:`~repro.isa.instruction.DynInst`
allocation — on every one of the 10^6-10^8 dynamic instructions a SMARTS
experiment fast-forwards through.  This module removes that cost for the
dominant consumer, functional warming, by compiling each *basic block*
of a program into a single specialized Python closure:

* blocks are discovered once per :class:`~repro.isa.program.Program`
  (leaders = entry, branch targets, fall-throughs) and compiled lazily
  on first execution, so indirect jumps to odd targets and mid-block
  checkpoint restores just compile an overlapping block on demand;
* each closure updates the architectural state with straight-line code
  specialized per opcode — register indices, immediates, and branch
  targets are baked in as constants, attribute lookups and tuple
  unpacking are gone;
* instead of calling into the cache/branch models per instruction, the
  warm variant of each closure appends the block's *warming event
  stream* (instruction-fetch and data addresses, branch outcomes) to
  flat integer lists, which :class:`FastCore` hands in batches to the
  bulk entry points :meth:`repro.memory.hierarchy.MemoryHierarchy.warm_many`
  and :meth:`repro.branch.unit.BranchUnit.warm_many`.

The contract is *bit-identical equivalence*: a :class:`FastCore` run
leaves exactly the architectural state, warm microarchitectural state,
and statistics counters the interpreter leaves (the golden tests in
``tests/test_engine_fastpath.py`` assert this across engines).  Memory
events preserve their interleaved I/D order because L2 is shared between
the instruction and data paths; branch-predictor state is disjoint from
cache state, so branch events batch separately without reordering risk.

Event encodings (shared with the ``warm_many`` implementations):

* memory events — one int per access, ``address << 2 | kind`` with kind
  0 = instruction fetch, 1 = load, 2 = store;
* branch events — four ints per branch, ``(kind, pc, taken, target)``
  with kind 0 = conditional, 1 = JAL, 2 = JR, 3 = JUMP.
"""

from __future__ import annotations

from repro.functional.simulator import INST_SIZE, FunctionalCore
from repro.functional.warming import FunctionalWarmer
from repro.isa.instruction import FP_REG_BASE
from repro.isa.opcodes import Opcode
from repro.isa.program import WORD_SIZE, Program

#: Upper bound on compiled-block length; longer straight-line stretches
#: chain into the lazily compiled block at the cut point.
MAX_BLOCK_LENGTH = 256

#: Memory warming events buffered before an intermediate warm_many flush.
FLUSH_EVENTS = 8192

#: Memory-event kind codes (low two bits of an event int).
EVENT_IFETCH = 0
EVENT_LOAD = 1
EVENT_STORE = 2

#: Branch-event kind codes (first int of each 4-int branch record).
BRANCH_COND = 0
BRANCH_JAL = 1
BRANCH_JR = 2
BRANCH_JUMP = 3

_WORD_SHIFT = WORD_SIZE.bit_length() - 1
_WORD_IS_POW2 = WORD_SIZE == 1 << _WORD_SHIFT

_IALU_BINOPS = {
    Opcode.ADD: "+", Opcode.SUB: "-", Opcode.AND: "&",
    Opcode.OR: "|", Opcode.XOR: "^",
}
_COND_OPS = {
    Opcode.BEQ: "==", Opcode.BNE: "!=", Opcode.BLT: "<", Opcode.BGE: ">=",
}


# ----------------------------------------------------------------------
# Code generation helpers
# ----------------------------------------------------------------------
def _iread(reg: int | None) -> str:
    """Expression reading a register as an int (write_reg invariant:
    ``ir`` always holds ints, ``fr`` always holds floats)."""
    if reg is None or reg == 0:
        return "0"
    if reg >= FP_REG_BASE:
        return f"int(fr[{reg - FP_REG_BASE}])"
    return f"ir[{reg}]"


def _fread(reg: int | None) -> str:
    """Expression reading a register as a float."""
    if reg is None:
        return "0.0"
    if reg >= FP_REG_BASE:
        return f"fr[{reg - FP_REG_BASE}]"
    if reg == 0:
        return "0.0"
    return f"float(ir[{reg}])"


def _raw_read(reg: int) -> str:
    """Expression reading a register without conversion (store data)."""
    if reg >= FP_REG_BASE:
        return f"fr[{reg - FP_REG_BASE}]"
    if reg == 0:
        return "0"
    return f"ir[{reg}]"


def _write(rd: int, expr: str, kind: str) -> str | None:
    """Assignment statement mirroring ``ArchState.write_reg``.

    ``kind`` declares the value type of ``expr`` ("int" / "float") so
    the no-op conversions the interpreter performs on already-typed
    values can be skipped without changing results.
    """
    if rd >= FP_REG_BASE:
        value = expr if kind == "float" else f"float({expr})"
        return f"fr[{rd - FP_REG_BASE}] = {value}"
    if rd == 0:
        return None  # writes to integer r0 are discarded
    value = expr if kind == "int" else f"int({expr})"
    return f"ir[{rd}] = {value}"


def _align(expr: str) -> str:
    """Word-align expression matching ``ArchState.align`` exactly."""
    if _WORD_IS_POW2:
        return f"({expr}) >> {_WORD_SHIFT} << {_WORD_SHIFT}"
    return f"({expr}) // {WORD_SIZE} * {WORD_SIZE}"


class CompiledBlock:
    """One compiled basic block: metadata plus the two closures."""

    __slots__ = ("start", "length", "halts", "run_plain", "run_warm")

    def __init__(self, start: int, length: int, halts: bool,
                 run_plain, run_warm) -> None:
        self.start = start
        self.length = length
        self.halts = halts
        #: ``run_plain(ir, fr, mem) -> next_pc`` — architectural update only.
        self.run_plain = run_plain
        #: ``run_warm(ir, fr, mem, ev, ev2) -> next_pc`` — also appends
        #: the block's warming events to ``ev`` (memory) / ``ev2`` (branch).
        self.run_warm = run_warm


def _compile_block(program: Program, start: int,
                   leaders: frozenset[int]) -> CompiledBlock:
    """Compile the block beginning at static index ``start``.

    The block extends until a control-flow instruction, ``HALT``, the
    next leader, the end of the program, or :data:`MAX_BLOCK_LENGTH`.
    """
    instructions = program.instructions
    size = len(instructions)
    arch: list[str] = []        # statements shared by both variants
    warm_extra: dict[int, list[str]] = {}  # event statements keyed by arch pos
    pending: list[int] = []     # static memory events awaiting a flush
    load_count = 0

    def emit(line: str | None) -> None:
        if line is not None:
            arch.append(line)

    def emit_event(line: str) -> None:
        warm_extra.setdefault(len(arch), []).append(line)

    def flush_statics() -> None:
        if not pending:
            return
        if len(pending) == 1:
            emit_event(f"ap({pending[0]})")
        else:
            emit_event(f"ev.extend(({', '.join(map(str, pending))}))")
        pending.clear()

    pc = start
    length = 0
    halts = False
    terminator_plain: list[str] = []
    terminator_warm: list[str] = []

    while pc < size and length < MAX_BLOCK_LENGTH:
        if length and pc in leaders:
            break  # fall into the next block; keep blocks non-overlapping
        inst = instructions[pc]
        op = inst.op
        pending.append((pc * INST_SIZE) << 2 | EVENT_IFETCH)
        rd, rs1, rs2, imm = inst.rd, inst.rs1, inst.rs2, inst.imm

        if op is Opcode.ADDI:
            a = _iread(rs1)
            emit(_write(rd, a if imm == 0 else f"{a} + {imm}", "int"))
        elif op is Opcode.SLTI:
            emit(_write(rd, f"1 if {_iread(rs1)} < {imm} else 0", "int"))
        elif op in _IALU_BINOPS:
            emit(_write(rd, f"{_iread(rs1)} {_IALU_BINOPS[op]} {_iread(rs2)}",
                        "int"))
        elif op is Opcode.SLL:
            emit(_write(rd, f"{_iread(rs1)} << ({_iread(rs2)} & 63)", "int"))
        elif op is Opcode.SRL:
            emit(_write(rd, f"{_iread(rs1)} >> ({_iread(rs2)} & 63)", "int"))
        elif op is Opcode.SLT:
            emit(_write(rd, f"1 if {_iread(rs1)} < {_iread(rs2)} else 0",
                        "int"))
        elif op is Opcode.MUL:
            emit(_write(rd, f"{_iread(rs1)} * {_iread(rs2)}", "int"))
        elif op is Opcode.DIV:
            a, b = _iread(rs1), _iread(rs2)
            emit(_write(rd, f"({a} // {b} if {b} != 0 else 0)", "int"))
        elif op is Opcode.MOD:
            a, b = _iread(rs1), _iread(rs2)
            emit(_write(rd, f"({a} % {b} if {b} != 0 else 0)", "int"))
        elif op is Opcode.FADD:
            emit(_write(rd, f"{_fread(rs1)} + {_fread(rs2)}", "float"))
        elif op is Opcode.FSUB:
            emit(_write(rd, f"{_fread(rs1)} - {_fread(rs2)}", "float"))
        elif op is Opcode.FMUL:
            emit(_write(rd, f"{_fread(rs1)} * {_fread(rs2)}", "float"))
        elif op is Opcode.FDIV:
            a, b = _fread(rs1), _fread(rs2)
            emit(_write(rd, f"({a} / {b} if {b} != 0.0 else 0.0)", "float"))
        elif op is Opcode.FSQRT:
            emit(_write(rd, f"abs({_fread(rs1)}) ** 0.5", "float"))
        elif op is Opcode.FNEG:
            emit(_write(rd, f"-{_fread(rs1)}", "float"))
        elif op is Opcode.CVTIF:
            emit(_write(rd, f"float(int({_fread(rs1)}))", "float"))
        elif op is Opcode.CVTFI:
            emit(_write(rd, f"int({_fread(rs1)})", "int"))
        elif inst.is_load:
            base = _iread(rs1)
            address = base if imm == 0 else f"{base} + {imm}"
            emit(f"a = {_align(address)}")
            flush_statics()
            emit_event(f"ap(a << 2 | {EVENT_LOAD})")
            load_count += 1
            if rd is not None:
                emit(_write(rd, "mg(a, 0)", "raw"))
        elif inst.is_store:
            base = _iread(rs1)
            address = base if imm == 0 else f"{base} + {imm}"
            emit(f"a = {_align(address)}")
            flush_statics()
            emit_event(f"ap(a << 2 | {EVENT_STORE})")
            emit(f"mem[a] = {_raw_read(rs2)}")
        elif inst.is_conditional:
            cmp = _COND_OPS[op]
            target = inst.target
            fall = pc + 1
            flush_statics()
            terminator_plain = [
                f"return {target} if {_iread(rs1)} {cmp} {_iread(rs2)} "
                f"else {fall}",
            ]
            terminator_warm = [
                f"if {_iread(rs1)} {cmp} {_iread(rs2)}:",
                f"    ev2.extend(({BRANCH_COND}, {pc}, 1, {target}))",
                f"    return {target}",
                f"ev2.extend(({BRANCH_COND}, {pc}, 0, {fall}))",
                f"return {fall}",
            ]
        elif op is Opcode.JUMP:
            flush_statics()
            terminator_plain = [f"return {inst.target}"]
            terminator_warm = [
                f"ev2.extend(({BRANCH_JUMP}, {pc}, 1, {inst.target}))",
                f"return {inst.target}",
            ]
        elif op is Opcode.JAL:
            if rd is not None:
                emit(_write(rd, str(pc + 1), "int"))
            flush_statics()
            terminator_plain = [f"return {inst.target}"]
            terminator_warm = [
                f"ev2.extend(({BRANCH_JAL}, {pc}, 1, {inst.target}))",
                f"return {inst.target}",
            ]
        elif op is Opcode.JR:
            emit(f"t = {_iread(rs1)}")
            flush_statics()
            terminator_plain = ["return t"]
            terminator_warm = [
                f"ev2.extend(({BRANCH_JR}, {pc}, 1, t))",
                "return t",
            ]
        elif op is Opcode.HALT:
            halts = True
            flush_statics()
            terminator_plain = [f"return {pc + 1}"]
            terminator_warm = [f"return {pc + 1}"]
        elif op is Opcode.NOP:
            pass
        else:  # pragma: no cover - defensive, mirrors the interpreter
            raise ValueError(f"unhandled opcode {op!r} at {pc}")

        length += 1
        pc += 1
        if terminator_plain:
            break

    if not terminator_plain:
        # Fall through into the instruction after the block (possibly one
        # past the end of the program — the run loop halts there exactly
        # as the interpreter's bounds check does).
        flush_statics()
        terminator_plain = [f"return {pc}"]
        terminator_warm = [f"return {pc}"]

    def render(body: list[str], extra: dict[int, list[str]] | None,
               terminator: list[str], name: str, params: str) -> list[str]:
        lines = [f"def {name}({params}):"]
        if extra is not None and any("ap(" in s for stmts in extra.values()
                                     for s in stmts):
            lines.append("    ap = ev.append")
        if load_count:
            lines.append("    mg = mem.get")
        for position, statement in enumerate(body):
            if extra is not None:
                for event_line in extra.get(position, ()):
                    lines.append(f"    {event_line}")
            lines.append(f"    {statement}")
        if extra is not None:
            for event_line in extra.get(len(body), ()):
                lines.append(f"    {event_line}")
        for statement in terminator:
            lines.append(f"    {statement}")
        return lines

    source = "\n".join(
        render(arch, None, terminator_plain, "_plain", "ir, fr, mem")
        + [""]
        + render(arch, warm_extra, terminator_warm, "_warm",
                 "ir, fr, mem, ev, ev2")
    )
    namespace: dict = {}
    exec(compile(source, f"<fastpath:{program.name}:{start}>", "exec"),
         namespace)
    return CompiledBlock(start, length, halts,
                         namespace["_plain"], namespace["_warm"])


class CompiledProgram:
    """All compiled blocks of one program, filled lazily by start pc."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.static_size = len(program.instructions)
        self.leaders = frozenset(program.basic_block_leaders())
        self._blocks: dict[int, CompiledBlock] = {}

    def block_at(self, pc: int) -> CompiledBlock:
        block = self._blocks.get(pc)
        if block is None:
            block = _compile_block(self.program, pc, self.leaders)
            self._blocks[pc] = block
        return block

    @property
    def compiled_blocks(self) -> int:
        return len(self._blocks)


def compiled_program(program: Program) -> CompiledProgram:
    """The (memoized) compiled form of ``program``.

    Programs are immutable once built, so the compilation — like
    ``program_fingerprint`` — is cached on the program object itself and
    shared by every core over the program's lifetime.
    """
    cached = getattr(program, "_fastpath_compiled", None)
    if cached is None:
        cached = CompiledProgram(program)
        program._fastpath_compiled = cached
    return cached


# ----------------------------------------------------------------------
# The fast core
# ----------------------------------------------------------------------
class FastCore(FunctionalCore):
    """Drop-in :class:`FunctionalCore` executing block-at-a-time.

    ``step`` (used by the detailed timing model, which needs per-
    instruction :class:`DynInst` records) is inherited unchanged; the
    bulk entry points ``run`` and ``run_warmed`` execute compiled blocks
    whenever the remaining budget covers a whole block and fall back to
    the interpreter for partial-block remainders and foreign callbacks.

    ``blocks_executed`` / ``fallback_instructions`` count closure calls
    and interpreter-stepped instructions — the count-based dispatch
    metric CI guards instead of wall-clock.
    """

    def __init__(self, program: Program,
                 max_instructions: int | None = None) -> None:
        super().__init__(program, max_instructions)
        self._compiled = compiled_program(program)
        self.blocks_executed = 0
        self.fallback_instructions = 0

    def _budget(self, count: int) -> int:
        if self.max_instructions is not None:
            return min(count, self.max_instructions - self.instructions_retired)
        return count

    # ------------------------------------------------------------------
    # Bulk execution
    # ------------------------------------------------------------------
    def run(self, count, callback=None):
        if callback is None:
            return self._run_plain(count)
        if isinstance(callback, FunctionalWarmer):
            return self.run_warmed(count, callback)
        executed = super().run(count, callback)
        self.fallback_instructions += executed
        return executed

    def _run_plain(self, count: int) -> int:
        if count <= 0:
            return 0
        state = self.state
        budget = self._budget(count)
        executed = 0
        ir, fr, mem = state.int_regs, state.fp_regs, state.memory
        block_at = self._compiled.block_at
        size = self._compiled.static_size
        pc = state.pc
        halted = state.halted
        while executed < budget and not halted:
            if pc < 0 or pc >= size:
                state.halted = halted = True
                break
            block = block_at(pc)
            length = block.length
            if executed + length > budget:
                break
            pc = block.run_plain(ir, fr, mem)
            executed += length
            self.blocks_executed += 1
            if block.halts:
                state.halted = halted = True
        state.pc = pc
        self.instructions_retired += executed
        if executed < count and not self.halted:
            stepped = FunctionalCore.run(self, count - executed)
            self.fallback_instructions += stepped
            executed += stepped
        return executed

    def run_warmed(self, count, warmer, written=None):
        if count <= 0:
            return 0
        state = self.state
        budget = self._budget(count)
        executed = 0
        ir, fr, mem = state.int_regs, state.fp_regs, state.memory
        block_at = self._compiled.block_at
        size = self._compiled.static_size
        microarch = warmer.microarch
        hierarchy = microarch.hierarchy
        branch_unit = microarch.branch_unit
        events: list[int] = []
        branch_events: list[int] = []
        pc = state.pc
        halted = state.halted
        while executed < budget and not halted:
            if pc < 0 or pc >= size:
                state.halted = halted = True
                break
            block = block_at(pc)
            length = block.length
            if executed + length > budget:
                break
            pc = block.run_warm(ir, fr, mem, events, branch_events)
            executed += length
            self.blocks_executed += 1
            if block.halts:
                state.halted = halted = True
            if len(events) >= FLUSH_EVENTS:
                self._flush_events(hierarchy, branch_unit,
                                   events, branch_events, written)
        state.pc = pc
        self.instructions_retired += executed
        self._flush_events(hierarchy, branch_unit, events, branch_events,
                           written)
        warmer.instructions_warmed += executed
        if executed < count and not self.halted:
            stepped = FunctionalCore.run_warmed(self, count - executed,
                                                warmer, written)
            self.fallback_instructions += stepped
            executed += stepped
        return executed

    @staticmethod
    def _flush_events(hierarchy, branch_unit, events, branch_events,
                      written) -> None:
        """Drain buffered warming events into the bulk warmers.

        Memory events must drain before any per-instruction fallback
        touches the hierarchy, so callers flush at every boundary.
        """
        if events:
            hierarchy.warm_many(events)
            if written is not None:
                add = written.add
                for event in events:
                    if event & 3 == EVENT_STORE:
                        add(event >> 2)
            events.clear()
        if branch_events:
            branch_unit.warm_many(branch_events)
            branch_events.clear()
