"""Functional warming: keeping long-history microarchitectural state warm.

During fast-forwarding between sampling units, SMARTS can either update
nothing but architectural state (plain functional simulation) or also
keep the cache hierarchy, TLBs and branch predictors warm (functional
warming, Section 4.1 of the paper).  The :class:`FunctionalWarmer`
implements the latter: it observes every dynamic instruction produced by
the functional core and applies the corresponding state updates to the
shared :class:`~repro.detailed.state.MicroarchState`.

The paper reports that functional warming adds roughly 75% overhead over
plain functional simulation in SMARTSim; :data:`WARMING_OVERHEAD` records
that reference value for the analytical performance model.
"""

from __future__ import annotations

from repro.isa.instruction import DynInst

#: Paper-reported relative overhead of functional warming over plain
#: functional simulation (Section 4.1): "functional warming operations
#: introduce an overhead of approximately 75%".
WARMING_OVERHEAD = 0.75

#: Bytes per instruction for forming fetch addresses (matches
#: :data:`repro.functional.simulator.INST_SIZE`).
from repro.functional.simulator import INST_SIZE  # noqa: E402


class FunctionalWarmer:
    """Applies warming updates for each functionally executed instruction."""

    def __init__(self, microarch) -> None:
        """``microarch`` is a :class:`repro.detailed.state.MicroarchState`."""
        self.microarch = microarch
        self.instructions_warmed = 0

    def observe(self, dyn: DynInst) -> None:
        """Warm caches, TLBs and branch predictors with one instruction."""
        hierarchy = self.microarch.hierarchy
        hierarchy.access_instruction(dyn.pc * INST_SIZE)
        if dyn.mem_addr is not None:
            hierarchy.access_data(dyn.mem_addr, dyn.is_store)
        if dyn.is_branch:
            self.microarch.branch_unit.warm(dyn)
        self.instructions_warmed += 1

    # The warmer is designed to be passed directly as the per-instruction
    # callback of :meth:`repro.functional.simulator.FunctionalCore.run`.
    __call__ = observe


def _boundaries(start: int, chunk_size: int, offsets: tuple[int, ...]):
    """Ascending snapshot positions: the stride grid plus shifted points.

    Yields ``start + i*chunk_size + r`` for every ``r`` in ``offsets``
    (each in ``(0, chunk_size)``) interleaved with the plain stride grid
    ``start + i*chunk_size`` — the grid :func:`warming_pass` snapshots at.
    """
    base = start
    while True:
        for offset in offsets:
            yield base + offset
        base += chunk_size
        yield base


def warming_pass(core, warmer: FunctionalWarmer, chunk_size: int,
                 limit: int | None = None,
                 extra_offsets: tuple[int, ...] = ()):
    """Functionally warm ``core`` in strides, yielding at boundaries.

    The generator drives one functional-warming pass over the program in
    ``chunk_size``-instruction strides and yields ``(position,
    written_addresses)`` after every *complete* stride — the snapshot
    points of the checkpoint subsystem.  ``written_addresses`` is the set
    of (word-aligned) memory addresses stored to during that stride, so
    consumers can record compact per-stride memory deltas.  The pass ends
    when the program halts (no partial-stride snapshot is emitted; a
    restore point past the halt would never be used) or when ``limit``
    instructions have executed.

    ``extra_offsets`` adds snapshot points *within* each stride, at the
    given offsets from the stride start (each in ``(0, chunk_size)``).
    The checkpoint builder uses this to align snapshots with the
    ``unit.start - W`` positions a systematic sampling run warms from,
    so the residual per-unit fast-forward drops to zero whenever the
    sampling grid lands on the snapshot stride (see
    :func:`repro.checkpoint.store.build_checkpoints`).

    Warming runs through :meth:`FunctionalCore.run_warmed`, which the
    trace-compiled engine overrides with block-at-a-time execution and
    bulk ``warm_many`` calls — this generator is the checkpoint-build
    hot loop.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    offsets = tuple(sorted({int(r) for r in extra_offsets
                            if 0 < int(r) < chunk_size}))
    written: set[int] = set()
    position = core.instructions_retired
    for target in _boundaries(position, chunk_size, offsets):
        if core.halted or (limit is not None and position >= limit):
            break
        budget = target - position
        if limit is not None:
            budget = min(budget, limit - position)
        executed = core.run_warmed(budget, warmer, written)
        position += executed
        if executed < budget or executed == 0:
            break
        yield position, written
        written = set()
