"""Functional simulation: fast-forwarding and functional warming.

Two engines execute the functional stream — the per-instruction
interpreter (:class:`FunctionalCore`) and the trace-compiled block-level
fast path (:class:`FastCore`) — selected process-wide by the
``REPRO_ENGINE`` environment variable through :func:`create_core`
(default: ``fastpath``).  They are bit-identical in architectural state,
warm microarchitectural state, and statistics.
"""

from repro.functional.simulator import INST_SIZE, FunctionalCore, measure_program_length
from repro.functional.warming import WARMING_OVERHEAD, FunctionalWarmer, warming_pass
from repro.functional.fastpath import CompiledProgram, FastCore, compiled_program
from repro.functional.engine import (
    DEFAULT_ENGINE,
    ENGINE_ENV,
    ENGINES,
    create_core,
    engine_class,
    engine_name,
)

__all__ = [
    "CompiledProgram",
    "DEFAULT_ENGINE",
    "ENGINES",
    "ENGINE_ENV",
    "FastCore",
    "FunctionalCore",
    "FunctionalWarmer",
    "INST_SIZE",
    "WARMING_OVERHEAD",
    "compiled_program",
    "create_core",
    "engine_class",
    "engine_name",
    "measure_program_length",
    "warming_pass",
]
