"""Functional simulation: fast-forwarding and functional warming."""

from repro.functional.simulator import INST_SIZE, FunctionalCore, measure_program_length
from repro.functional.warming import WARMING_OVERHEAD, FunctionalWarmer, warming_pass

__all__ = [
    "FunctionalCore",
    "FunctionalWarmer",
    "INST_SIZE",
    "WARMING_OVERHEAD",
    "measure_program_length",
    "warming_pass",
]
