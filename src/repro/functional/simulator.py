"""Functional (architectural-state-only) simulator.

The functional core is the execution oracle of the whole infrastructure:
both fast-forwarding and detailed simulation consume the dynamic
instruction stream it produces.  This mirrors SimpleScalar's
execution-driven structure, where ``sim-outorder`` executes instructions
functionally and models timing around the resulting stream, and it makes
mode switches (functional <-> detailed) trivially consistent because
there is exactly one architectural state.

Performance notes: the decode table is precomputed per static
instruction and ``step`` is written as one flat function because SMARTS
experiments execute 10^6-10^8 dynamic instructions through this loop.
"""

from __future__ import annotations

from typing import Callable

from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.program import WORD_SIZE, Program
from repro.isa.registers import ArchState

#: Bytes per static instruction, used to form instruction-fetch addresses
#: for the I-cache and I-TLB models.
INST_SIZE = 4


class FunctionalCore:
    """Executes a program one instruction at a time.

    Usage::

        core = FunctionalCore(program)
        while (dyn := core.step()) is not None:
            ...

    ``step`` returns ``None`` once the program has executed its ``HALT``
    instruction (or run off the end of the instruction sequence, which is
    treated as an implicit halt).
    """

    def __init__(self, program: Program, max_instructions: int | None = None) -> None:
        self.program = program
        self.state = ArchState()
        self.state.reset(program)
        self.instructions_retired = 0
        self.max_instructions = max_instructions
        self._decoded = [self._decode(inst) for inst in program.instructions]

    @staticmethod
    def _decode(inst) -> tuple:
        """Precompute the per-static-instruction decode record."""
        return (
            inst.op,
            inst.opclass,
            inst.rd,
            inst.source_regs(),
            inst.rs1,
            inst.rs2,
            inst.imm,
            inst.target,
            inst.is_load,
            inst.is_store,
            inst.is_branch,
            inst.is_conditional,
        )

    @property
    def halted(self) -> bool:
        if self.state.halted:
            return True
        if self.max_instructions is not None:
            return self.instructions_retired >= self.max_instructions
        return False

    def fetch_address(self, pc: int) -> int:
        """Byte address of the instruction at static index ``pc``."""
        return pc * INST_SIZE

    def step(self) -> DynInst | None:
        """Execute one instruction and return its dynamic record."""
        state = self.state
        if self.halted:
            return None
        pc = state.pc
        if pc < 0 or pc >= len(self._decoded):
            state.halted = True
            return None

        (op, opclass, rd, srcs, rs1, rs2, imm, target,
         is_load, is_store, is_branch, is_conditional) = self._decoded[pc]

        int_regs = state.int_regs
        fp_regs = state.fp_regs
        read = state.read_reg
        mem_addr: int | None = None
        taken = False
        next_pc = pc + 1

        if opclass == OpClass.IALU:
            a = read(rs1) if rs1 is not None else 0
            if op == Opcode.ADDI:
                value = int(a) + imm
            elif op == Opcode.SLTI:
                value = 1 if int(a) < imm else 0
            else:
                b = read(rs2) if rs2 is not None else 0
                a = int(a)
                b = int(b)
                if op == Opcode.ADD:
                    value = a + b
                elif op == Opcode.SUB:
                    value = a - b
                elif op == Opcode.AND:
                    value = a & b
                elif op == Opcode.OR:
                    value = a | b
                elif op == Opcode.XOR:
                    value = a ^ b
                elif op == Opcode.SLL:
                    value = a << (b & 63)
                elif op == Opcode.SRL:
                    value = a >> (b & 63)
                elif op == Opcode.SLT:
                    value = 1 if a < b else 0
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unhandled IALU opcode {op!r}")
            state.write_reg(rd, value)

        elif opclass == OpClass.IMULT:
            a = int(read(rs1))
            b = int(read(rs2))
            if op == Opcode.MUL:
                value = a * b
            elif op == Opcode.DIV:
                value = a // b if b != 0 else 0
            else:  # MOD
                value = a % b if b != 0 else 0
            state.write_reg(rd, value)

        elif opclass in (OpClass.FPALU, OpClass.FPMULT):
            a = float(read(rs1)) if rs1 is not None else 0.0
            if op == Opcode.FADD:
                value = a + float(read(rs2))
            elif op == Opcode.FSUB:
                value = a - float(read(rs2))
            elif op == Opcode.FMUL:
                value = a * float(read(rs2))
            elif op == Opcode.FDIV:
                b = float(read(rs2))
                value = a / b if b != 0.0 else 0.0
            elif op == Opcode.FSQRT:
                value = abs(a) ** 0.5
            elif op == Opcode.FNEG:
                value = -a
            elif op == Opcode.CVTIF:
                value = float(int(a))
            elif op == Opcode.CVTFI:
                value = int(a)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unhandled FP opcode {op!r}")
            state.write_reg(rd, value)

        elif is_load:
            base = int(read(rs1))
            mem_addr = ArchState.align(base + imm)
            state.write_reg(rd, state.memory.get(mem_addr, 0))

        elif is_store:
            base = int(read(rs1))
            mem_addr = ArchState.align(base + imm)
            state.memory[mem_addr] = read(rs2)

        elif is_branch:
            if is_conditional:
                a = int(read(rs1))
                b = int(read(rs2))
                if op == Opcode.BEQ:
                    taken = a == b
                elif op == Opcode.BNE:
                    taken = a != b
                elif op == Opcode.BLT:
                    taken = a < b
                else:  # BGE
                    taken = a >= b
                if taken:
                    next_pc = target
            elif op == Opcode.JUMP:
                taken = True
                next_pc = target
            elif op == Opcode.JAL:
                taken = True
                state.write_reg(rd, pc + 1)
                next_pc = target
            else:  # JR
                taken = True
                next_pc = int(read(rs1))

        elif op == Opcode.HALT:
            state.halted = True
        # NOP: nothing to do.

        state.pc = next_pc
        seq = self.instructions_retired
        self.instructions_retired = seq + 1

        return DynInst(
            seq=seq,
            pc=pc,
            op=op,
            opclass=opclass,
            rd=rd,
            srcs=srcs,
            mem_addr=mem_addr,
            is_load=is_load,
            is_store=is_store,
            is_branch=is_branch,
            is_conditional=is_conditional,
            taken=taken,
            next_pc=next_pc,
        )

    def run(self, count: int, callback: Callable[[DynInst], None] | None = None) -> int:
        """Execute up to ``count`` instructions.

        Returns the number actually executed (may be fewer if the program
        halts).  ``callback`` is invoked per dynamic instruction when
        provided; it is how functional warming hooks into fast-forwarding.
        """
        executed = 0
        step = self.step
        if callback is None:
            while executed < count:
                if step() is None:
                    break
                executed += 1
        else:
            while executed < count:
                dyn = step()
                if dyn is None:
                    break
                callback(dyn)
                executed += 1
        return executed

    def run_warmed(self, count: int, warmer, written: set | None = None) -> int:
        """Execute up to ``count`` instructions under functional warming.

        ``warmer`` is a :class:`repro.functional.warming.FunctionalWarmer`;
        ``written``, when given, collects the word-aligned addresses of
        every store executed (the checkpoint builder's per-stride memory
        delta).  This is the entry point the trace-compiled engine
        overrides with block-at-a-time execution and bulk warming; the
        implementation here observes per instruction through the
        interpreter loop (pinned to ``FunctionalCore.run``, because it
        doubles as the partial-block fallback of the fast engine).
        """
        if written is None:
            return FunctionalCore.run(self, count, warmer)
        observe = warmer.observe

        def observe_and_track(dyn) -> None:
            observe(dyn)
            if dyn.is_store:
                written.add(dyn.mem_addr)

        return FunctionalCore.run(self, count, observe_and_track)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def capture_arch(self) -> dict:
        """Serializable copy of the architectural state at this position.

        Memory is captured in full; callers that want compact snapshots
        (the checkpoint store) diff it against the program image or a
        previous capture themselves.
        """
        state = self.state
        return {
            "position": self.instructions_retired,
            "pc": state.pc,
            "halted": state.halted,
            "int_regs": list(state.int_regs),
            "fp_regs": list(state.fp_regs),
            "memory": dict(state.memory),
        }

    def restore_arch(self, position: int, pc: int, halted: bool,
                     int_regs: list[int], fp_regs: list[float],
                     memory_updates: list[dict] | None = None) -> None:
        """Jump the core to a checkpointed stream position.

        Registers, PC and halt flag are replaced wholesale;
        ``memory_updates`` is an ordered list of ``{address: value}``
        deltas applied *on top of* the current memory image (the sparse
        memory only ever grows, so forward deltas reconstruct any later
        state exactly).  Pass ``None`` to leave memory untouched.
        """
        state = self.state
        state.pc = pc
        state.halted = halted
        state.int_regs = list(int_regs)
        state.fp_regs = list(fp_regs)
        if memory_updates:
            memory = state.memory
            for delta in memory_updates:
                memory.update(delta)
        self.instructions_retired = position

    def run_to_completion(self, limit: int | None = None) -> int:
        """Execute until the program halts (or ``limit`` instructions)."""
        return self.run(limit if limit is not None else 1 << 62)


def measure_program_length(program: Program, limit: int = 200_000_000) -> int:
    """Return the dynamic instruction count of ``program``.

    Used to establish the population size ``N`` before designing a
    sampling run (the paper takes the benchmark length as known from its
    full functional simulation).
    """
    from repro.functional.engine import create_core  # deferred: avoids cycle
    from repro.store import record_pass  # deferred: avoids cycle

    core = create_core(program)
    executed = core.run_to_completion(limit=limit)
    if not core.state.halted and executed >= limit:
        raise RuntimeError(
            f"program {program.name!r} did not halt within {limit} instructions"
        )
    record_pass("measure_length", program.name, executed)
    return executed
