"""Functional-engine selection: ``REPRO_ENGINE=fastpath|interp``.

Every consumer of functional execution — the SMARTS engine's
fast-forward loop, ``measure_program_length``, reference traces,
checkpoint builds, and the rate calibration behind Table 6 / Figure 4 —
creates its core through :func:`create_core`, so one environment switch
selects the engine process-wide:

* ``fastpath`` (default) — the trace-compiled block-level engine
  (:class:`repro.functional.fastpath.FastCore`), bit-identical to the
  interpreter but several times faster on the functional-warming hot
  loop;
* ``interp`` — the original per-instruction interpreter
  (:class:`repro.functional.simulator.FunctionalCore`), kept as the
  executable specification the fastpath is verified against.

The engine cannot change estimates (the golden tests in
``tests/test_engine_fastpath.py`` enforce bit-identical architectural
state, warm state, and ``RunResult.estimates_dict()`` payloads), so it
is deliberately *not* part of RunSpec identity or any cache key.
"""

from __future__ import annotations

import os

from repro.functional.fastpath import FastCore
from repro.functional.simulator import FunctionalCore
from repro.isa.program import Program

#: Environment variable selecting the functional engine.
ENGINE_ENV = "REPRO_ENGINE"

#: Engine registry: name -> core class.
ENGINES: dict[str, type[FunctionalCore]] = {
    "interp": FunctionalCore,
    "fastpath": FastCore,
}

DEFAULT_ENGINE = "fastpath"


def engine_name(name: str | None = None) -> str:
    """Resolve (and validate) the active engine name.

    ``name=None`` reads :data:`ENGINE_ENV`, defaulting to
    :data:`DEFAULT_ENGINE`; an unknown name raises ``ValueError`` rather
    than silently running the wrong engine.
    """
    if name is None:
        name = os.environ.get(ENGINE_ENV) or DEFAULT_ENGINE
    if name not in ENGINES:
        raise ValueError(
            f"unknown functional engine {name!r} (set {ENGINE_ENV} to one "
            f"of: {', '.join(sorted(ENGINES))})")
    return name


def engine_class(name: str | None = None) -> type[FunctionalCore]:
    """The core class of the active (or explicitly named) engine."""
    return ENGINES[engine_name(name)]


def create_core(program: Program, max_instructions: int | None = None,
                engine: str | None = None) -> FunctionalCore:
    """Build a functional core with the active (or named) engine."""
    return engine_class(engine)(program, max_instructions)
