"""Detailed out-of-order timing simulation substrate."""

from repro.detailed.counters import PipelineCounters
from repro.detailed.pipeline import DECODE_STAGES, DetailedSimulator
from repro.detailed.state import MicroarchState

__all__ = [
    "DECODE_STAGES",
    "DetailedSimulator",
    "MicroarchState",
    "PipelineCounters",
]
