"""Long-history microarchitectural state shared across simulation modes.

The SMARTS engine constructs one :class:`MicroarchState` per run and
hands it to both the functional warmer and the detailed simulator.  This
is the state whose staleness causes measurement bias (Section 3.1) and
whose continuous maintenance is functional warming (Section 4.1): the
cache hierarchy, the TLBs, and the branch prediction structures.

Short-history state — pipeline occupancy, MSHRs, the store buffer,
functional unit availability — lives inside the detailed simulator and
is re-created at the start of every detailed period; warming it is
exactly the job of the W detailed-warming instructions.
"""

from __future__ import annotations

from repro.branch.unit import BranchUnit
from repro.config.machines import MachineConfig
from repro.memory.hierarchy import MemoryHierarchy


class MicroarchState:
    """Cache hierarchy + branch unit for one simulated machine."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.hierarchy = MemoryHierarchy(config)
        self.branch_unit = BranchUnit(config.branch)

    def flush(self) -> None:
        """Return all long-history state to its cold (power-on) contents."""
        self.hierarchy.flush()
        self.branch_unit.reset()

    def reset_stats(self) -> None:
        self.hierarchy.reset_stats()
        self.branch_unit.reset_stats()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable copy of all long-history warm state.

        This is exactly the state functional warming maintains (caches,
        TLBs, branch prediction structures); statistics counters are
        excluded.  Short-history pipeline state is owned by the detailed
        simulator and re-created by ``begin_period``.
        """
        return {
            "hierarchy": self.hierarchy.snapshot_state(),
            "branch": self.branch_unit.warm_state(),
        }

    def restore_state(self, saved: dict) -> None:
        """Restore warm state captured by :meth:`snapshot_state`."""
        self.hierarchy.restore_state(saved["hierarchy"])
        self.branch_unit.restore_warm_state(saved["branch"])

    def stats_summary(self) -> dict[str, float]:
        summary = self.hierarchy.stats_summary()
        summary["branch_misprediction_rate"] = self.branch_unit.misprediction_rate
        return summary
