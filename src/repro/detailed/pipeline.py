"""Detailed out-of-order superscalar timing model.

This is the repository's stand-in for SimpleScalar's ``sim-outorder``
(enhanced, per Section 3.2 of the paper, with a store buffer, MSHRs and
memory-interconnect bottlenecks).  It is an execution-driven,
timestamp-based out-of-order model: instructions are consumed in program
order from the functional core and each one is scheduled against

* fetch bandwidth, I-cache/I-TLB misses and branch-redirect stalls,
* RUU (register update unit) and LSQ occupancy,
* operand readiness through a register timestamp scoreboard,
* functional-unit availability and latency,
* D-cache/D-TLB misses through a finite MSHR file,
* store-buffer capacity at commit, and
* commit bandwidth.

Compared to a cycle-by-cycle structural simulator the model processes
each instruction exactly once, which keeps pure-Python simulation rates
high enough for SMARTS-scale experiments while still producing the
behaviour the paper studies: CPI that varies with cache and predictor
state, short-term pipeline state that needs detailed warming, and
long-history state that needs functional warming.  Wrong-path fetch is
modeled as a redirect penalty rather than by executing wrong-path
instructions; the paper (Section 4.5, citing Cain et al.) reports that
speculative wrong-path effects have minimal impact on CPI.
"""

from __future__ import annotations

from collections import deque

from repro.config.machines import MachineConfig
from repro.detailed.counters import PipelineCounters
from repro.detailed.state import MicroarchState
from repro.functional.simulator import INST_SIZE, FunctionalCore
from repro.isa.instruction import NUM_FP_REGS, NUM_INT_REGS
from repro.isa.opcodes import OpClass, Opcode
from repro.memory.hierarchy import L1, MEM
from repro.memory.mshr import MSHRFile
from repro.memory.store_buffer import StoreBuffer

#: Pipeline front-end depth between fetch and dispatch (decode/rename).
DECODE_STAGES = 2

#: Scheduling classes that execute on the memory ports.
_MEM_CLASSES = (OpClass.LOAD, OpClass.STORE)

#: Opcodes that occupy their functional unit for the full execution
#: latency (unpipelined divide/sqrt units).
_UNPIPELINED = frozenset({Opcode.DIV, Opcode.MOD, Opcode.FDIV, Opcode.FSQRT})


class DetailedSimulator:
    """Timestamp-based out-of-order timing model.

    One instance is created per SMARTS run (or per reference simulation)
    and shares its :class:`MicroarchState` with functional warming.

    Typical use::

        sim = DetailedSimulator(config, microarch)
        sim.begin_period()                      # cold pipeline
        sim.run(core, W)                        # detailed warming
        counters = sim.run(core, U)             # measured sampling unit
    """

    def __init__(self, config: MachineConfig, microarch: MicroarchState) -> None:
        self.config = config
        self.microarch = microarch
        self._num_regs = NUM_INT_REGS + NUM_FP_REGS
        self.begin_period()

    # ------------------------------------------------------------------
    # Period management
    # ------------------------------------------------------------------
    def begin_period(self) -> None:
        """Reset all short-history pipeline state (empty pipeline).

        Called when detailed simulation resumes after a stretch of
        functional simulation.  Long-history state (caches, TLBs, branch
        predictors) is *not* touched — its freshness is governed by the
        warming policy of the surrounding SMARTS run.
        """
        config = self.config
        self._clock = 0
        self._next_fetch_cycle = 0
        self._redirect_cycle = 0
        self._fetch_bw_cycle = -1
        self._fetch_bw_count = 0
        self._last_fetch_block = -1
        self._reg_ready = [0] * self._num_regs
        self._window: deque[int] = deque()
        self._lsq: deque[int] = deque()
        self._last_commit_cycle = 0
        self._commits_in_cycle = 0
        self._fu_free = {
            OpClass.IALU: [0] * config.fu_counts[OpClass.IALU],
            OpClass.IMULT: [0] * config.fu_counts[OpClass.IMULT],
            OpClass.FPALU: [0] * config.fu_counts[OpClass.FPALU],
            OpClass.FPMULT: [0] * config.fu_counts[OpClass.FPMULT],
            OpClass.LOAD: [0] * config.l1d.ports,
        }
        self._mshr_i = MSHRFile(config.l1i.mshr_entries)
        self._mshr_d = MSHRFile(config.l1d.mshr_entries)
        self._store_buffer = StoreBuffer(config.store_buffer_entries)
        self._pending_stores: dict[int, int] = {}

    @property
    def current_cycle(self) -> int:
        """Commit-time clock of the current detailed period."""
        return self._last_commit_cycle

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, core: FunctionalCore, count: int,
            written: set[int] | None = None) -> PipelineCounters:
        """Simulate up to ``count`` instructions in detail.

        Returns the counters (including elapsed cycles) for exactly the
        instructions processed by this call.  The pipeline clock carries
        over across consecutive ``run`` calls within one period, so a
        warming call followed by a measurement call behaves like one
        continuous stretch of detailed simulation.

        ``written`` (when given) collects the memory addresses stored to
        by this call, letting a full-stream reference pass record the
        same per-stride memory deltas the functional checkpoint builder
        derives from :func:`~repro.functional.warming.warming_pass`.
        """
        config = self.config
        hierarchy = self.microarch.hierarchy
        branch_unit = self.microarch.branch_unit
        counters = PipelineCounters()
        cycles_start = self._last_commit_cycle

        fetch_width = config.fetch_width
        commit_width = config.commit_width
        ruu_size = config.ruu_size
        lsq_size = config.lsq_size
        l1i_block = config.l1i.block_bytes
        l1_latency = config.l1_latency
        tlb_penalty = config.tlb_miss_latency
        mispredict_penalty = config.branch.mispredict_penalty
        single_prediction = config.branch.predictions_per_cycle < 2

        reg_ready = self._reg_ready
        window = self._window
        lsq = self._lsq
        fu_free = self._fu_free
        pending_stores = self._pending_stores

        executed = 0
        step = core.step
        while executed < count:
            dyn = step()
            if dyn is None:
                break
            executed += 1
            opclass = dyn.opclass
            op = dyn.op

            # ----------------------------------------------------------
            # Fetch
            # ----------------------------------------------------------
            fetch_cycle = self._next_fetch_cycle
            if self._redirect_cycle > fetch_cycle:
                fetch_cycle = self._redirect_cycle

            if fetch_cycle == self._fetch_bw_cycle:
                if self._fetch_bw_count >= fetch_width:
                    fetch_cycle += 1
                    self._fetch_bw_cycle = fetch_cycle
                    self._fetch_bw_count = 0
            else:
                self._fetch_bw_cycle = fetch_cycle
                self._fetch_bw_count = 0
            self._fetch_bw_count += 1

            fetch_addr = dyn.pc * INST_SIZE
            fetch_block = fetch_addr // l1i_block
            if fetch_block != self._last_fetch_block:
                self._last_fetch_block = fetch_block
                result = hierarchy.access_instruction(fetch_addr)
                counters.fetch_accesses += 1
                if result.tlb_miss:
                    counters.itlb_misses += 1
                    fetch_cycle += tlb_penalty
                if result.level != L1:
                    counters.l1i_misses += 1
                    miss_latency = (config.l2_latency if result.level == "l2"
                                    else config.mem_latency)
                    ready, stall = self._mshr_i.request(
                        fetch_block, fetch_cycle, miss_latency)
                    if stall:
                        counters.mshr_stalls += 1
                    fetch_cycle = ready
            self._next_fetch_cycle = fetch_cycle

            # ----------------------------------------------------------
            # Dispatch (decode/rename into RUU and LSQ)
            # ----------------------------------------------------------
            dispatch_cycle = fetch_cycle + DECODE_STAGES
            if len(window) >= ruu_size:
                free_at = window.popleft()
                if free_at > dispatch_cycle:
                    counters.ruu_stall_cycles += free_at - dispatch_cycle
                    dispatch_cycle = free_at
            is_mem = dyn.is_load or dyn.is_store
            if is_mem and len(lsq) >= lsq_size:
                free_at = lsq.popleft()
                if free_at > dispatch_cycle:
                    counters.lsq_stall_cycles += free_at - dispatch_cycle
                    dispatch_cycle = free_at
            counters.window_inserts += 1

            # ----------------------------------------------------------
            # Operand readiness
            # ----------------------------------------------------------
            ready_cycle = dispatch_cycle
            for src in dyn.srcs:
                src_ready = reg_ready[src]
                if src_ready > ready_cycle:
                    ready_cycle = src_ready
            counters.regfile_reads += len(dyn.srcs)

            # ----------------------------------------------------------
            # Issue and execute
            # ----------------------------------------------------------
            if opclass in _MEM_CLASSES:
                pool = fu_free[OpClass.LOAD]
            elif opclass in (OpClass.BRANCH, OpClass.NOP):
                pool = fu_free[OpClass.IALU]
            else:
                pool = fu_free[opclass]
            unit = 0
            unit_free = pool[0]
            for i in range(1, len(pool)):
                if pool[i] < unit_free:
                    unit_free = pool[i]
                    unit = i
            issue_cycle = ready_cycle if ready_cycle >= unit_free else unit_free

            store_drain_latency = l1_latency
            if dyn.is_load:
                counters.loads += 1
                counters.l1d_accesses += 1
                result = hierarchy.access_data(dyn.mem_addr, False)
                if result.tlb_miss:
                    counters.dtlb_misses += 1
                if result.level != L1:
                    counters.l1d_misses += 1
                    counters.l2_accesses += 1
                    if result.level == MEM:
                        counters.l2_misses += 1
                forward_ready = pending_stores.get(dyn.mem_addr)
                if forward_ready is not None and forward_ready > issue_cycle:
                    counters.store_forwards += 1
                    memory_latency = l1_latency
                    if result.tlb_miss:
                        memory_latency += tlb_penalty
                    complete_cycle = issue_cycle + memory_latency
                else:
                    if result.level == L1:
                        memory_latency = l1_latency
                        if result.tlb_miss:
                            memory_latency += tlb_penalty
                        complete_cycle = issue_cycle + memory_latency
                    else:
                        latency = hierarchy.latency(result)
                        block = dyn.mem_addr // config.l1d.block_bytes
                        ready, stall = self._mshr_d.request(
                            block, issue_cycle, latency)
                        if stall:
                            counters.mshr_stalls += 1
                        complete_cycle = ready
            elif dyn.is_store:
                counters.stores += 1
                counters.l1d_accesses += 1
                if written is not None:
                    written.add(dyn.mem_addr)
                result = hierarchy.access_data(dyn.mem_addr, True)
                if result.tlb_miss:
                    counters.dtlb_misses += 1
                if result.level != L1:
                    counters.l1d_misses += 1
                    counters.l2_accesses += 1
                    if result.level == MEM:
                        counters.l2_misses += 1
                store_drain_latency = hierarchy.latency(result)
                complete_cycle = issue_cycle + 1
            else:
                latency = config.exec_latency(op, opclass)
                complete_cycle = issue_cycle + latency
                if opclass == OpClass.IALU:
                    counters.ialu_ops += 1
                elif opclass == OpClass.IMULT:
                    counters.imult_ops += 1
                elif opclass == OpClass.FPALU:
                    counters.fpalu_ops += 1
                elif opclass == OpClass.FPMULT:
                    counters.fpmult_ops += 1

            # Functional unit occupancy: pipelined units free the issue
            # slot next cycle; divides occupy the unit until completion.
            pool[unit] = complete_cycle if op in _UNPIPELINED else issue_cycle + 1

            if dyn.rd is not None:
                reg_ready[dyn.rd] = complete_cycle
                counters.regfile_writes += 1

            # ----------------------------------------------------------
            # Branch resolution
            # ----------------------------------------------------------
            if dyn.is_branch:
                counters.branches += 1
                outcome = branch_unit.resolve(dyn)
                if outcome.mispredicted:
                    counters.mispredictions += 1
                    redirect = complete_cycle + mispredict_penalty
                    if redirect > self._redirect_cycle:
                        self._redirect_cycle = redirect
                elif dyn.taken and single_prediction:
                    # A correctly predicted taken branch ends the fetch
                    # group; the target is fetched the following cycle.
                    redirect = fetch_cycle + 1
                    if redirect > self._redirect_cycle:
                        self._redirect_cycle = redirect

            # ----------------------------------------------------------
            # Commit (in order, bounded by commit width)
            # ----------------------------------------------------------
            commit_cycle = complete_cycle + 1
            if commit_cycle <= self._last_commit_cycle:
                commit_cycle = self._last_commit_cycle
                if self._commits_in_cycle >= commit_width:
                    commit_cycle += 1
                    self._commits_in_cycle = 1
                else:
                    self._commits_in_cycle += 1
            else:
                self._commits_in_cycle = 1

            if dyn.is_store:
                completion, stall = self._store_buffer.push(
                    commit_cycle, store_drain_latency)
                if stall:
                    counters.store_buffer_stalls += 1
                    commit_cycle += stall
                    self._commits_in_cycle = 1
                pending_stores[dyn.mem_addr] = completion
                if len(pending_stores) > 2048:
                    horizon = commit_cycle
                    stale = [a for a, t in pending_stores.items() if t <= horizon]
                    for addr in stale:
                        del pending_stores[addr]

            self._last_commit_cycle = commit_cycle
            window.append(commit_cycle)
            if is_mem:
                lsq.append(commit_cycle)
            counters.instructions += 1

        counters.cycles = self._last_commit_cycle - cycles_start
        return counters

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def simulate(self, core: FunctionalCore, count: int | None = None) -> PipelineCounters:
        """Simulate ``count`` instructions (or to completion) in one period."""
        self.begin_period()
        budget = count if count is not None else 1 << 62
        return self.run(core, budget)
