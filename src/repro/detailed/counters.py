"""Event counters collected by the detailed timing model.

The counters serve two purposes: they are the activity factors consumed
by the Wattch-style energy model (:mod:`repro.energy`), and they give the
tests observable internal behaviour (e.g. "a pointer-chasing loop misses
in L1D", "a biased branch is predicted well").
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class PipelineCounters:
    """Per-measurement-interval pipeline event counts."""

    instructions: int = 0
    cycles: int = 0

    fetch_accesses: int = 0
    l1i_misses: int = 0
    itlb_misses: int = 0

    loads: int = 0
    stores: int = 0
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    dtlb_misses: int = 0
    store_forwards: int = 0

    branches: int = 0
    mispredictions: int = 0

    ialu_ops: int = 0
    imult_ops: int = 0
    fpalu_ops: int = 0
    fpmult_ops: int = 0

    regfile_reads: int = 0
    regfile_writes: int = 0
    window_inserts: int = 0

    ruu_stall_cycles: int = 0
    lsq_stall_cycles: int = 0
    store_buffer_stalls: int = 0
    mshr_stalls: int = 0

    @property
    def cpi(self) -> float:
        """Cycles per committed instruction over the counted interval."""
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    def add(self, other: "PipelineCounters") -> None:
        """Accumulate ``other`` into this counter set in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def copy(self) -> "PipelineCounters":
        return PipelineCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
