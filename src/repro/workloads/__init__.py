"""Synthetic workloads standing in for SPEC CPU2000."""

from repro.workloads.kernels import KERNELS, DataAllocator, KernelInstance
from repro.workloads.suite import (
    EXTRA_NAMES,
    SUITE_NAMES,
    Benchmark,
    BenchmarkSpec,
    KernelSpec,
    PhaseSpec,
    build_program,
    build_suite,
    extra_specs,
    get_benchmark,
    micro_benchmark,
    suite_specs,
)

__all__ = [
    "Benchmark",
    "BenchmarkSpec",
    "DataAllocator",
    "EXTRA_NAMES",
    "KERNELS",
    "KernelInstance",
    "KernelSpec",
    "PhaseSpec",
    "SUITE_NAMES",
    "build_program",
    "build_suite",
    "extra_specs",
    "get_benchmark",
    "micro_benchmark",
    "suite_specs",
]
