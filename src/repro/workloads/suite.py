"""The synthetic benchmark suite standing in for SPEC CPU2000.

Each benchmark is a phased composition of kernels from
:mod:`repro.workloads.kernels`.  The suite is designed so its members
span the behaviours the paper's SPEC2K study exercises:

* cache-friendly, easily predicted codes with low CPI variability
  (``gzip.syn``, ``mesa.syn``),
* memory-bound pointer codes (``mcf.syn``),
* streaming floating-point codes (``swim.syn``, ``art.syn``),
* strongly phased codes whose coarse-grain behaviour changes over the
  run and which therefore have high coefficients of variation and large
  warming requirements (``ammp.syn``, ``mgrid.syn``, ``vpr.syn``),
* branchy integer codes (``gcc.syn``, ``bzip2.syn``, ``parser.syn``).

Benchmark names carry a ``.syn`` suffix to make explicit that they are
synthetic stand-ins, not the SPEC programs themselves (see DESIGN.md,
"Substitutions").  Dynamic instruction counts are controlled by a
``scale`` factor; at ``scale=1.0`` each benchmark executes roughly half a
million to one million instructions.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from functools import lru_cache

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.kernels import KERNELS, DataAllocator, KernelInstance


@dataclass(frozen=True)
class KernelSpec:
    """One kernel instantiation within a phase."""

    kernel: str
    params: dict = field(default_factory=dict)
    calls: int = 1

    def __post_init__(self) -> None:
        if self.kernel not in KERNELS:
            raise KeyError(f"unknown kernel {self.kernel!r}")
        if self.calls <= 0:
            raise ValueError("calls must be positive")


@dataclass(frozen=True)
class PhaseSpec:
    """One benchmark phase: a kernel mix repeated ``iterations`` times."""

    kernels: tuple[KernelSpec, ...]
    iterations: int

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("phase must contain at least one kernel")
        if self.iterations <= 0:
            raise ValueError("phase iterations must be positive")


@dataclass(frozen=True)
class BenchmarkSpec:
    """Full description of one synthetic benchmark."""

    name: str
    category: str
    description: str
    phases: tuple[PhaseSpec, ...]
    repeat: int = 1
    seed: int = 1

    def __post_init__(self) -> None:
        if self.category not in ("int", "fp"):
            raise ValueError("category must be 'int' or 'fp'")
        if self.repeat <= 0:
            raise ValueError("repeat must be positive")


@dataclass
class Benchmark:
    """A built benchmark: its spec, program, and estimated length."""

    spec: BenchmarkSpec
    program: Program
    estimated_length: int

    @property
    def name(self) -> str:
        return self.spec.name


def _scaled_iterations(iterations: int, scale: float) -> int:
    return max(1, round(iterations * scale))


def build_program(spec: BenchmarkSpec, scale: float = 1.0) -> Benchmark:
    """Build the program for ``spec`` at the requested scale."""
    builder = ProgramBuilder(spec.name)
    alloc = DataAllocator()
    rng = random.Random(spec.seed)

    # Emit every kernel instance as a subroutine, one per KernelSpec.
    instances: list[list[KernelInstance]] = []
    for phase_idx, phase in enumerate(spec.phases):
        phase_instances = []
        for kernel_idx, kspec in enumerate(phase.kernels):
            label = f"k_{phase_idx}_{kernel_idx}_{kspec.kernel}"
            emit = KERNELS[kspec.kernel]
            phase_instances.append(emit(builder, label, alloc, rng, **kspec.params))
        instances.append(phase_instances)

    # Driver: repeat { for each phase { iterate its kernel mix } }.
    builder.label("main")
    estimated = 0
    builder.addi("r22", "r0", spec.repeat)
    builder.label("repeat_top")
    for phase_idx, phase in enumerate(spec.phases):
        iterations = _scaled_iterations(phase.iterations, scale)
        builder.addi("r21", "r0", iterations)
        builder.label(f"phase_{phase_idx}_top")
        per_iteration = 0
        for kspec, instance in zip(phase.kernels, instances[phase_idx]):
            for _ in range(kspec.calls):
                builder.jal("r31", instance.label)
                per_iteration += instance.dynamic_length + 2
        builder.addi("r21", "r21", -1)
        builder.bne("r21", "r0", f"phase_{phase_idx}_top")
        estimated += (per_iteration + 2) * iterations
    builder.addi("r22", "r22", -1)
    builder.bne("r22", "r0", "repeat_top")
    builder.halt()
    builder.set_entry("main")
    estimated = (estimated + 2) * spec.repeat

    return Benchmark(spec=spec, program=builder.build(), estimated_length=estimated)


# ----------------------------------------------------------------------
# Suite definition
# ----------------------------------------------------------------------
def _spec(name, category, description, phases, repeat=1, seed=None) -> BenchmarkSpec:
    # The default seed must be stable across interpreter invocations
    # (unlike built-in str hashing, randomized by PYTHONHASHSEED), so the
    # same benchmark name always builds the same program: run results are
    # cacheable by spec hash and reproducible between processes.
    return BenchmarkSpec(
        name=name,
        category=category,
        description=description,
        phases=tuple(phases),
        repeat=repeat,
        seed=seed if seed is not None else (zlib.crc32(name.encode()) & 0xFFFF) or 1,
    )


def suite_specs() -> list[BenchmarkSpec]:
    """Specifications of the full synthetic suite (12 benchmarks)."""
    k = KernelSpec
    return [
        _spec(
            "gzip.syn", "int",
            "Cache-friendly integer streaming with well-predicted branches "
            "(low CPI variability).",
            [
                PhaseSpec((k("stream_sum", {"elems": 1024}),
                           k("branchy_walk", {"elems": 512, "taken_bias": 0.9})), 40),
                PhaseSpec((k("alu_chain", {"iters": 512}),
                           k("stream_sum", {"elems": 256})), 40),
            ],
        ),
        _spec(
            "gcc.syn", "int",
            "Branchy integer code with distinct parse/optimize/emit-like "
            "phases touching different working sets.",
            [
                PhaseSpec((k("branchy_walk", {"elems": 1024, "taken_bias": 0.6}),
                           k("sort_pass", {"elems": 256, "passes": 2})), 25),
                PhaseSpec((k("pointer_chase",
                             {"nodes": 2048, "spacing": 64, "hops": 1024}),
                           k("alu_chain", {"iters": 256})), 30),
                PhaseSpec((k("random_access",
                             {"table_words": 8192, "accesses": 512}),), 20),
            ],
        ),
        _spec(
            "mcf.syn", "int",
            "Memory-bound pointer chasing over a working set far larger "
            "than L2 (high CPI, long-history cache state).",
            [
                PhaseSpec((k("pointer_chase",
                             {"nodes": 8192, "spacing": 64, "hops": 4096}),), 30),
                PhaseSpec((k("stream_sum", {"elems": 2048}),), 10),
            ],
        ),
        _spec(
            "ammp.syn", "fp",
            "Alternating large-footprint stencil and small compute phases; "
            "the highest coarse-grain CPI variability in the suite.",
            [
                PhaseSpec((k("stencil", {"elems": 2048, "sweeps": 1}),), 4),
                PhaseSpec((k("alu_chain", {"iters": 128}),
                           k("matmul", {"n": 6})), 8),
            ],
            repeat=4,
        ),
        _spec(
            "vpr.syn", "int",
            "Scattered table accesses with poorly biased branches "
            "(place-and-route-like).",
            [
                PhaseSpec((k("random_access",
                             {"table_words": 32768, "accesses": 1024}),
                           k("branchy_walk", {"elems": 512, "taken_bias": 0.55})), 20),
                PhaseSpec((k("alu_chain", {"iters": 512}),), 30),
            ],
        ),
        _spec(
            "mesa.syn", "fp",
            "Compute-bound FP multiply-accumulate on a small working set "
            "(rendering-pipeline-like, low variability).",
            [
                PhaseSpec((k("matmul", {"n": 12}),), 16),
                PhaseSpec((k("stream_triad", {"elems": 512}),), 10),
            ],
        ),
        _spec(
            "swim.syn", "fp",
            "Streaming FP triad and stencil over large arrays "
            "(bandwidth-bound, steady behaviour).",
            [
                PhaseSpec((k("stream_triad", {"elems": 4096}),), 10),
                PhaseSpec((k("stencil", {"elems": 4096, "sweeps": 1}),), 3),
            ],
        ),
        _spec(
            "art.syn", "fp",
            "Repeated scans of moderate arrays mixed with short branchy "
            "bookkeeping (neural-net-like).",
            [
                PhaseSpec((k("stream_sum", {"elems": 4096}),
                           k("stream_triad", {"elems": 1024}),), 15),
                PhaseSpec((k("branchy_walk", {"elems": 256, "taken_bias": 0.7}),), 20),
            ],
        ),
        _spec(
            "equake.syn", "fp",
            "Sparse-like scattered accesses feeding stencil updates, with a "
            "long-latency divide tail.",
            [
                PhaseSpec((k("random_access",
                             {"table_words": 16384, "accesses": 768}),
                           k("stencil", {"elems": 1024, "sweeps": 1})), 18),
                PhaseSpec((k("divider", {"iters": 128}),
                           k("alu_chain", {"iters": 256})), 40),
            ],
        ),
        _spec(
            "mgrid.syn", "fp",
            "Multigrid-like stencil sweeps over successively smaller grids; "
            "large microarchitectural state history (hard to warm with "
            "detailed warming alone).",
            [
                PhaseSpec((k("stencil", {"elems": 8192, "sweeps": 1}),), 2),
                PhaseSpec((k("stencil", {"elems": 2048, "sweeps": 1}),), 6),
                PhaseSpec((k("stencil", {"elems": 512, "sweeps": 1}),), 20),
                PhaseSpec((k("stream_triad", {"elems": 2048}),), 5),
            ],
        ),
        _spec(
            "bzip2.syn", "int",
            "Sorting passes and biased branches over block-sized buffers "
            "(compression-like phased behaviour).",
            [
                PhaseSpec((k("sort_pass", {"elems": 512, "passes": 4}),
                           k("branchy_walk", {"elems": 1024, "taken_bias": 0.65})), 15),
                PhaseSpec((k("random_access",
                             {"table_words": 4096, "accesses": 512}),
                           k("stream_sum", {"elems": 512})), 15),
            ],
        ),
        _spec(
            "parser.syn", "int",
            "Small-footprint pointer chasing and branchy dictionary-like "
            "lookups with integer compute.",
            [
                PhaseSpec((k("pointer_chase",
                             {"nodes": 1024, "spacing": 64, "hops": 1024}),
                           k("branchy_walk", {"elems": 512, "taken_bias": 0.6}),
                           k("alu_chain", {"iters": 256})), 30),
                PhaseSpec((k("sort_pass", {"elems": 256, "passes": 2}),
                           k("divider", {"iters": 64})), 35),
            ],
        ),
    ]


def extra_specs() -> list[BenchmarkSpec]:
    """Stress-test workload families beyond the core 12-benchmark suite.

    These deliberately break the suite's "phases are long and mostly
    steady" structure — ``phaseshift.syn`` flips between compute-,
    memory-, and branch-bound behaviour at a fine grain, and
    ``irregular.syn`` chases pointers through many differently sized
    lists in bursts — giving sampling-strategy comparisons (the
    ``adaptive_vs_two_round`` study in particular) workloads whose
    per-unit CPI is genuinely hard to pin down.  They are not part of
    ``SUITE_NAMES``; figure studies and suite-wide assertions keep
    their canonical 12-benchmark population.
    """
    k = KernelSpec
    return [
        _spec(
            "phaseshift.syn", "fp",
            "Rapidly alternating compute / memory / branch phases; the "
            "coarse-grain behaviour never settles, so a fixed up-front "
            "sample size is either wasteful or insufficient.",
            [
                PhaseSpec((k("stencil", {"elems": 1024, "sweeps": 1}),), 6),
                PhaseSpec((k("alu_chain", {"iters": 512}),), 25),
                PhaseSpec((k("pointer_chase",
                             {"nodes": 4096, "spacing": 64, "hops": 2048}),), 8),
                PhaseSpec((k("matmul", {"n": 8}),), 10),
            ],
            repeat=2,
        ),
        _spec(
            "irregular.syn", "int",
            "Bursty pointer chasing through many differently sized lists "
            "(fine-grain irregular memory behaviour, high per-unit CPI "
            "variance).",
            [
                PhaseSpec((k("irregular_chase",
                             {"lists": 6, "min_nodes": 128, "max_nodes": 2048,
                              "bursts": 24, "min_hops": 64, "max_hops": 512}),), 12),
                PhaseSpec((k("irregular_chase",
                             {"lists": 3, "min_nodes": 64, "max_nodes": 512,
                              "bursts": 16, "min_hops": 32, "max_hops": 128}),
                           k("branchy_walk", {"elems": 256, "taken_bias": 0.6})), 15),
            ],
        ),
    ]


#: Names of all benchmarks in the suite, in canonical order.
SUITE_NAMES = [spec.name for spec in suite_specs()]

#: Names of the extra stress-test benchmarks (buildable via
#: :func:`get_benchmark` but excluded from the canonical suite).
EXTRA_NAMES = [spec.name for spec in extra_specs()]


@lru_cache(maxsize=None)
def _spec_by_name(name: str) -> BenchmarkSpec:
    for spec in suite_specs() + extra_specs():
        if spec.name == name:
            return spec
    raise KeyError(
        f"unknown benchmark {name!r}; available: {SUITE_NAMES + EXTRA_NAMES}")


def get_benchmark(name: str, scale: float = 1.0) -> Benchmark:
    """Build one benchmark of the suite by name."""
    return build_program(_spec_by_name(name), scale=scale)


def build_suite(scale: float = 1.0, names: list[str] | None = None) -> list[Benchmark]:
    """Build the full suite (or a named subset) at the given scale."""
    selected = names if names is not None else SUITE_NAMES
    return [get_benchmark(name, scale=scale) for name in selected]


def micro_benchmark(name: str = "micro.syn", seed: int = 7) -> Benchmark:
    """A very small benchmark (~20k instructions) for unit tests."""
    k = KernelSpec
    spec = _spec(
        name, "int",
        "Tiny mixed kernel benchmark for fast tests.",
        [
            PhaseSpec((k("stream_sum", {"elems": 64}),
                       k("branchy_walk", {"elems": 64, "taken_bias": 0.7})), 8),
            PhaseSpec((k("pointer_chase",
                         {"nodes": 128, "spacing": 64, "hops": 128}),
                       k("alu_chain", {"iters": 64})), 8),
        ],
        seed=seed,
    )
    return build_program(spec, scale=1.0)
