"""Kernel library for synthetic benchmark construction.

Each kernel emits a self-contained subroutine into a
:class:`~repro.isa.builder.ProgramBuilder`.  The subroutine is entered
with ``jal r31, <label>`` and returns with ``jr r31``.  All parameters
(array bases, element counts, constants) are baked into the emitted code,
so one benchmark may instantiate the same kernel several times with
different working sets.

Register conventions: kernels may clobber ``r1``–``r20`` and ``f1``–``f12``.
Benchmark drivers (see :mod:`repro.workloads.suite`) keep their loop
counters in ``r21``–``r29`` and the link register is ``r31``.

The kernels span the behaviours whose interaction the SMARTS paper
studies on SPEC CPU2000:

==================  ============================================================
kernel              behaviour
==================  ============================================================
``stream_sum``      sequential integer loads, high spatial locality
``stream_triad``    streaming FP loads/stores (swim/art-like bandwidth codes)
``pointer_chase``   data-dependent loads over a shuffled list (mcf-like)
``irregular_chase`` bursty chasing through lists of differing sizes
``random_access``   LCG-scattered loads/stores over a table (vpr/gap-like)
``branchy_walk``    data-dependent branches with configurable bias (gcc-like)
``matmul``          register-blocked FP multiply-accumulate (mesa-like)
``stencil``         3-point FP stencil sweeps (mgrid/swim-like)
``alu_chain``       dependent integer ALU chain (low ILP, core-bound)
``divider``         long-latency integer divide chain
``sort_pass``       compare-and-swap passes over a small array (bzip2-like)
==================  ============================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.isa.builder import ProgramBuilder
from repro.isa.program import WORD_SIZE


@dataclass
class KernelInstance:
    """Handle to an emitted kernel subroutine."""

    name: str
    label: str
    #: Approximate dynamic instructions executed per call.
    dynamic_length: int


class DataAllocator:
    """Bump allocator for benchmark data segments.

    Keeps kernel working sets in disjoint address regions so that their
    cache footprints compose the way the benchmark designer intends.
    """

    def __init__(self, base: int = 0x1000, alignment: int = 64) -> None:
        self._next = base
        self._alignment = alignment

    def alloc(self, nbytes: int) -> int:
        base = self._next
        aligned = ((nbytes + self._alignment - 1) // self._alignment) * self._alignment
        self._next += aligned + self._alignment
        return base


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def emit_stream_sum(b: ProgramBuilder, label: str, alloc: DataAllocator,
                    rng: random.Random, elems: int = 256) -> KernelInstance:
    """Sequential reduction over an integer array."""
    base = alloc.alloc(elems * WORD_SIZE)
    b.data_block(base, [rng.randrange(1, 100) for _ in range(elems)])
    b.label(label)
    b.addi("r1", "r0", base)          # cursor
    b.addi("r2", "r0", elems)         # remaining
    b.addi("r3", "r0", 0)             # accumulator
    top = f"{label}_top"
    b.label(top)
    b.load("r4", "r1", 0)
    b.add("r3", "r3", "r4")
    b.addi("r1", "r1", WORD_SIZE)
    b.addi("r2", "r2", -1)
    b.bne("r2", "r0", top)
    b.jr("r31")
    return KernelInstance("stream_sum", label, dynamic_length=5 * elems + 5)


def emit_stream_triad(b: ProgramBuilder, label: str, alloc: DataAllocator,
                      rng: random.Random, elems: int = 256) -> KernelInstance:
    """STREAM-triad style FP kernel: ``a[i] = b[i] + s * c[i]``."""
    a = alloc.alloc(elems * WORD_SIZE)
    c = alloc.alloc(elems * WORD_SIZE)
    d = alloc.alloc(elems * WORD_SIZE)
    b.data_block(c, [rng.uniform(0.0, 1.0) for _ in range(elems)])
    b.data_block(d, [rng.uniform(0.0, 1.0) for _ in range(elems)])
    b.label(label)
    b.addi("r1", "r0", a)
    b.addi("r2", "r0", c)
    b.addi("r3", "r0", d)
    b.addi("r4", "r0", elems)
    b.addi("r5", "r0", 3)
    b.cvtif("f1", "r5")               # scalar s = 3.0
    top = f"{label}_top"
    b.label(top)
    b.fload("f2", "r2", 0)
    b.fload("f3", "r3", 0)
    b.fmul("f4", "f3", "f1")
    b.fadd("f5", "f2", "f4")
    b.fstore("f5", "r1", 0)
    b.addi("r1", "r1", WORD_SIZE)
    b.addi("r2", "r2", WORD_SIZE)
    b.addi("r3", "r3", WORD_SIZE)
    b.addi("r4", "r4", -1)
    b.bne("r4", "r0", top)
    b.jr("r31")
    return KernelInstance("stream_triad", label, dynamic_length=10 * elems + 8)


def emit_pointer_chase(b: ProgramBuilder, label: str, alloc: DataAllocator,
                       rng: random.Random, nodes: int = 1024,
                       spacing: int = 64, hops: int = 512) -> KernelInstance:
    """Follow a shuffled singly-linked list for ``hops`` steps.

    The list is laid out with ``spacing`` bytes between nodes and the
    successor order is a random permutation, so consecutive loads have no
    spatial locality and each hop is a data-dependent cache access —
    the mcf-like behaviour that dominates memory-bound SPEC codes.
    """
    base = alloc.alloc(nodes * spacing)
    order = list(range(nodes))
    rng.shuffle(order)
    for i in range(nodes):
        current = order[i]
        successor = order[(i + 1) % nodes]
        b.data_word(base + current * spacing, base + successor * spacing)
    b.label(label)
    b.addi("r1", "r0", base + order[0] * spacing)  # cursor
    b.addi("r2", "r0", hops)
    b.addi("r3", "r0", 0)
    top = f"{label}_top"
    b.label(top)
    b.load("r1", "r1", 0)             # cursor = *cursor
    b.addi("r3", "r3", 1)
    b.addi("r2", "r2", -1)
    b.bne("r2", "r0", top)
    b.jr("r31")
    return KernelInstance("pointer_chase", label, dynamic_length=4 * hops + 4)


def emit_irregular_chase(b: ProgramBuilder, label: str, alloc: DataAllocator,
                         rng: random.Random, lists: int = 4,
                         min_nodes: int = 64, max_nodes: int = 1024,
                         spacing: int = 64, bursts: int = 16,
                         min_hops: int = 32, max_hops: int = 256) -> KernelInstance:
    """Bursty chasing through several shuffled lists of differing sizes.

    Where :func:`emit_pointer_chase` follows one list at a fixed hop
    count, this kernel allocates ``lists`` independent shuffled lists
    with randomly drawn node counts and then executes a baked schedule
    of ``bursts`` (head, hops) pairs: each burst picks one list and
    chases it for its own randomly drawn hop count.  Cache footprint
    and burst length both vary at a fine grain, so per-unit CPI is far
    more irregular than for any single-list chase — the stress case for
    run-to-target-CI stopping rules.
    """
    if lists <= 0 or bursts <= 0:
        raise ValueError("lists and bursts must be positive")
    if not 1 <= min_nodes <= max_nodes:
        raise ValueError("need 1 <= min_nodes <= max_nodes")
    if not 1 <= min_hops <= max_hops:
        raise ValueError("need 1 <= min_hops <= max_hops")
    heads = []
    for _ in range(lists):
        nodes = rng.randrange(min_nodes, max_nodes + 1)
        base = alloc.alloc(nodes * spacing)
        order = list(range(nodes))
        rng.shuffle(order)
        for i in range(nodes):
            current = order[i]
            successor = order[(i + 1) % nodes]
            b.data_word(base + current * spacing, base + successor * spacing)
        heads.append(base + order[0] * spacing)
    schedule = alloc.alloc(bursts * 2 * WORD_SIZE)
    total_hops = 0
    for i in range(bursts):
        head = heads[rng.randrange(lists)]
        hops = rng.randrange(min_hops, max_hops + 1)
        total_hops += hops
        b.data_word(schedule + (2 * i) * WORD_SIZE, head)
        b.data_word(schedule + (2 * i + 1) * WORD_SIZE, hops)
    b.label(label)
    b.addi("r1", "r0", schedule)      # schedule cursor
    b.addi("r2", "r0", bursts)        # bursts remaining
    b.addi("r5", "r0", 0)             # hop accumulator
    outer = f"{label}_burst"
    inner = f"{label}_hop"
    b.label(outer)
    b.load("r3", "r1", 0)             # cursor = burst head
    b.load("r4", "r1", WORD_SIZE)     # burst hop count
    b.label(inner)
    b.load("r3", "r3", 0)             # cursor = *cursor
    b.addi("r5", "r5", 1)
    b.addi("r4", "r4", -1)
    b.bne("r4", "r0", inner)
    b.addi("r1", "r1", 2 * WORD_SIZE)
    b.addi("r2", "r2", -1)
    b.bne("r2", "r0", outer)
    b.jr("r31")
    return KernelInstance("irregular_chase", label,
                          dynamic_length=4 * total_hops + 5 * bursts + 4)


def emit_random_access(b: ProgramBuilder, label: str, alloc: DataAllocator,
                       rng: random.Random, table_words: int = 1024,
                       accesses: int = 256, store_every: int = 4) -> KernelInstance:
    """LCG-scattered accesses over a table (GUPS-like).

    ``table_words`` must be a power of two so the index can be formed
    with a mask.  Every ``store_every``-th access is a store.
    """
    if table_words & (table_words - 1):
        raise ValueError("table_words must be a power of two")
    base = alloc.alloc(table_words * WORD_SIZE)
    b.data_block(base, [rng.randrange(0, 1000) for _ in range(min(table_words, 4096))])
    b.label(label)
    b.addi("r1", "r0", rng.randrange(1, 1 << 16))   # LCG state
    b.addi("r2", "r0", accesses)
    b.addi("r3", "r0", table_words - 1)              # index mask
    b.addi("r4", "r0", 1103515245)                   # LCG multiplier
    b.addi("r5", "r0", 12345)                        # LCG increment
    b.addi("r6", "r0", base)
    b.addi("r7", "r0", 0)                            # accumulator
    b.addi("r9", "r0", store_every - 1)
    top = f"{label}_top"
    skip = f"{label}_skip"
    b.label(top)
    b.mul("r1", "r1", "r4")
    b.add("r1", "r1", "r5")
    b.srl("r8", "r1", "r9")            # decorrelate low bits a little
    b.and_("r8", "r8", "r3")
    b.addi("r10", "r0", WORD_SIZE)
    b.mul("r8", "r8", "r10")
    b.add("r8", "r8", "r6")
    b.load("r11", "r8", 0)
    b.add("r7", "r7", "r11")
    b.and_("r12", "r2", "r9")
    b.bne("r12", "r0", skip)
    b.store("r7", "r8", 0)
    b.label(skip)
    b.addi("r2", "r2", -1)
    b.bne("r2", "r0", top)
    b.jr("r31")
    return KernelInstance("random_access", label, dynamic_length=14 * accesses + 9)


def emit_branchy_walk(b: ProgramBuilder, label: str, alloc: DataAllocator,
                      rng: random.Random, elems: int = 512,
                      taken_bias: float = 0.7) -> KernelInstance:
    """Walk an array and branch on each element.

    Element values are drawn so that a fraction ``taken_bias`` of the
    branches go one way; a bias near 0.5 produces gcc/crafty-like
    misprediction rates, a bias near 1.0 produces easily predicted code.
    """
    base = alloc.alloc(elems * WORD_SIZE)
    values = [1 if rng.random() < taken_bias else 0 for _ in range(elems)]
    b.data_block(base, values)
    b.label(label)
    b.addi("r1", "r0", base)
    b.addi("r2", "r0", elems)
    b.addi("r3", "r0", 0)             # accumulator A
    b.addi("r4", "r0", 1)             # accumulator B
    top = f"{label}_top"
    other = f"{label}_else"
    join = f"{label}_join"
    b.label(top)
    b.load("r5", "r1", 0)
    b.beq("r5", "r0", other)
    b.addi("r3", "r3", 3)
    b.xor("r4", "r4", "r3")
    b.jump(join)
    b.label(other)
    b.addi("r4", "r4", 7)
    b.sub("r3", "r3", "r4")
    b.label(join)
    b.addi("r1", "r1", WORD_SIZE)
    b.addi("r2", "r2", -1)
    b.bne("r2", "r0", top)
    b.jr("r31")
    return KernelInstance("branchy_walk", label, dynamic_length=9 * elems + 6)


def emit_matmul(b: ProgramBuilder, label: str, alloc: DataAllocator,
                rng: random.Random, n: int = 12) -> KernelInstance:
    """Naive ``n x n`` FP matrix multiply (compute-bound, cache friendly)."""
    mat_a = alloc.alloc(n * n * WORD_SIZE)
    mat_b = alloc.alloc(n * n * WORD_SIZE)
    mat_c = alloc.alloc(n * n * WORD_SIZE)
    b.data_block(mat_a, [rng.uniform(0.0, 1.0) for _ in range(n * n)])
    b.data_block(mat_b, [rng.uniform(0.0, 1.0) for _ in range(n * n)])
    row_bytes = n * WORD_SIZE
    b.label(label)
    b.addi("r1", "r0", 0)                 # i
    i_top = f"{label}_i"
    j_top = f"{label}_j"
    k_top = f"{label}_k"
    b.label(i_top)
    b.addi("r2", "r0", 0)                 # j
    b.label(j_top)
    b.addi("r3", "r0", 0)                 # k
    b.addi("r4", "r0", 0)
    b.cvtif("f1", "r4")                   # acc = 0.0
    b.label(k_top)
    # A[i][k]
    b.addi("r5", "r0", row_bytes)
    b.mul("r6", "r1", "r5")
    b.addi("r7", "r0", WORD_SIZE)
    b.mul("r8", "r3", "r7")
    b.add("r6", "r6", "r8")
    b.addi("r6", "r6", mat_a)
    b.fload("f2", "r6", 0)
    # B[k][j]
    b.mul("r9", "r3", "r5")
    b.mul("r10", "r2", "r7")
    b.add("r9", "r9", "r10")
    b.addi("r9", "r9", mat_b)
    b.fload("f3", "r9", 0)
    b.fmul("f4", "f2", "f3")
    b.fadd("f1", "f1", "f4")
    b.addi("r3", "r3", 1)
    b.addi("r11", "r0", n)
    b.blt("r3", "r11", k_top)
    # C[i][j] = acc
    b.addi("r12", "r0", row_bytes)
    b.mul("r13", "r1", "r12")
    b.addi("r14", "r0", WORD_SIZE)
    b.mul("r15", "r2", "r14")
    b.add("r13", "r13", "r15")
    b.addi("r13", "r13", mat_c)
    b.fstore("f1", "r13", 0)
    b.addi("r2", "r2", 1)
    b.addi("r16", "r0", n)
    b.blt("r2", "r16", j_top)
    b.addi("r1", "r1", 1)
    b.blt("r1", "r16", i_top)
    b.jr("r31")
    return KernelInstance("matmul", label, dynamic_length=17 * n * n * n + 12 * n * n)


def emit_stencil(b: ProgramBuilder, label: str, alloc: DataAllocator,
                 rng: random.Random, elems: int = 512,
                 sweeps: int = 1) -> KernelInstance:
    """3-point FP stencil: ``a[i] = (b[i-1] + 2*b[i] + b[i+1]) / 4``."""
    src = alloc.alloc((elems + 2) * WORD_SIZE)
    dst = alloc.alloc((elems + 2) * WORD_SIZE)
    b.data_block(src, [rng.uniform(0.0, 10.0) for _ in range(elems + 2)])
    b.label(label)
    b.addi("r10", "r0", sweeps)
    sweep_top = f"{label}_sweep"
    b.label(sweep_top)
    b.addi("r1", "r0", src + WORD_SIZE)
    b.addi("r2", "r0", dst + WORD_SIZE)
    b.addi("r3", "r0", elems)
    b.addi("r4", "r0", 2)
    b.cvtif("f1", "r4")                   # 2.0
    b.addi("r4", "r0", 4)
    b.cvtif("f2", "r4")                   # 4.0
    top = f"{label}_top"
    b.label(top)
    b.fload("f3", "r1", -WORD_SIZE)
    b.fload("f4", "r1", 0)
    b.fload("f5", "r1", WORD_SIZE)
    b.fmul("f6", "f4", "f1")
    b.fadd("f7", "f3", "f6")
    b.fadd("f7", "f7", "f5")
    b.fdiv("f8", "f7", "f2")
    b.fstore("f8", "r2", 0)
    b.addi("r1", "r1", WORD_SIZE)
    b.addi("r2", "r2", WORD_SIZE)
    b.addi("r3", "r3", -1)
    b.bne("r3", "r0", top)
    b.addi("r10", "r10", -1)
    b.bne("r10", "r0", sweep_top)
    b.jr("r31")
    return KernelInstance(
        "stencil", label, dynamic_length=sweeps * (12 * elems + 9) + 3)


def emit_alu_chain(b: ProgramBuilder, label: str, alloc: DataAllocator,
                   rng: random.Random, iters: int = 256) -> KernelInstance:
    """Serially dependent integer ALU chain (exposes issue latency)."""
    b.label(label)
    b.addi("r1", "r0", iters)
    b.addi("r2", "r0", rng.randrange(1, 64))
    b.addi("r3", "r0", 17)
    top = f"{label}_top"
    b.label(top)
    b.add("r2", "r2", "r3")
    b.xor("r2", "r2", "r1")
    b.sll("r4", "r2", "r0")
    b.sub("r2", "r2", "r4")
    b.or_("r2", "r2", "r3")
    b.addi("r1", "r1", -1)
    b.bne("r1", "r0", top)
    b.jr("r31")
    return KernelInstance("alu_chain", label, dynamic_length=7 * iters + 4)


def emit_divider(b: ProgramBuilder, label: str, alloc: DataAllocator,
                 rng: random.Random, iters: int = 64) -> KernelInstance:
    """Integer divide chain (long-latency, unpipelined unit pressure)."""
    b.label(label)
    b.addi("r1", "r0", iters)
    b.addi("r2", "r0", 1 << 30)
    b.addi("r3", "r0", 3)
    top = f"{label}_top"
    b.label(top)
    b.div("r2", "r2", "r3")
    b.addi("r2", "r2", 1 << 20)
    b.mod("r4", "r2", "r3")
    b.add("r2", "r2", "r4")
    b.addi("r1", "r1", -1)
    b.bne("r1", "r0", top)
    b.jr("r31")
    return KernelInstance("divider", label, dynamic_length=6 * iters + 4)


def emit_sort_pass(b: ProgramBuilder, label: str, alloc: DataAllocator,
                   rng: random.Random, elems: int = 128,
                   passes: int = 2) -> KernelInstance:
    """Bubble-sort-style compare-and-swap passes (branchy + memory)."""
    base = alloc.alloc(elems * WORD_SIZE)
    b.data_block(base, [rng.randrange(0, 10000) for _ in range(elems)])
    b.label(label)
    b.addi("r10", "r0", passes)
    pass_top = f"{label}_pass"
    b.label(pass_top)
    b.addi("r1", "r0", base)
    b.addi("r2", "r0", elems - 1)
    top = f"{label}_top"
    noswap = f"{label}_noswap"
    b.label(top)
    b.load("r3", "r1", 0)
    b.load("r4", "r1", WORD_SIZE)
    b.bge("r4", "r3", noswap)
    b.store("r4", "r1", 0)
    b.store("r3", "r1", WORD_SIZE)
    b.label(noswap)
    b.addi("r1", "r1", WORD_SIZE)
    b.addi("r2", "r2", -1)
    b.bne("r2", "r0", top)
    b.addi("r10", "r10", -1)
    b.bne("r10", "r0", pass_top)
    b.jr("r31")
    return KernelInstance(
        "sort_pass", label, dynamic_length=passes * (8 * elems + 4) + 3)


#: Registry used by the benchmark suite.  Each entry maps a kernel name
#: to its emitter function.
KERNELS: dict[str, Callable[..., KernelInstance]] = {
    "stream_sum": emit_stream_sum,
    "stream_triad": emit_stream_triad,
    "pointer_chase": emit_pointer_chase,
    "irregular_chase": emit_irregular_chase,
    "random_access": emit_random_access,
    "branchy_walk": emit_branchy_walk,
    "matmul": emit_matmul,
    "stencil": emit_stencil,
    "alu_chain": emit_alu_chain,
    "divider": emit_divider,
    "sort_pass": emit_sort_pass,
}
