"""Translation lookaside buffer model.

TLBs are part of the long-history microarchitectural state that SMARTS
keeps warm through functional warming ("SMARTSim performs in-order
functional instruction execution and maintains the state of L1/L2 I/D
caches, TLBs, and branch predictors", Section 4.1).  The model is a
set-associative tag array over virtual page numbers; a miss costs a
fixed page-walk penalty charged by the detailed timing model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TLBStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class TLB:
    """Set-associative TLB with LRU replacement.

    Args:
        name: Identifier for statistics.
        entries: Total number of entries.
        assoc: Associativity.
        page_bytes: Page size (default 4 KiB).
    """

    def __init__(self, name: str, entries: int, assoc: int, page_bytes: int = 4096) -> None:
        if entries <= 0 or assoc <= 0:
            raise ValueError("TLB entries and associativity must be positive")
        if entries % assoc != 0:
            raise ValueError("TLB entries must be a multiple of associativity")
        self.name = name
        self.entries = entries
        self.assoc = assoc
        self.page_bytes = page_bytes
        self.num_sets = entries // assoc
        self.stats = TLBStats()
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]

    def page_number(self, address: int) -> int:
        return address // self.page_bytes

    def access(self, address: int) -> bool:
        """Translate ``address``; returns True on TLB hit."""
        vpn = address // self.page_bytes
        index = vpn % self.num_sets
        tag = vpn // self.num_sets
        tlb_set = self._sets[index]
        self.stats.accesses += 1
        if tag in tlb_set:
            if tlb_set[-1] != tag:
                tlb_set.remove(tag)
                tlb_set.append(tag)
            return True
        self.stats.misses += 1
        if len(tlb_set) >= self.assoc:
            tlb_set.pop(0)
        tlb_set.append(tag)
        return False

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]

    def reset_stats(self) -> None:
        self.stats = TLBStats()

    def copy_state(self) -> list[list[int]]:
        """Deep copy of the tag sets, LRU order included (checkpointing)."""
        return [list(s) for s in self._sets]

    def restore_state(self, saved: list[list[int]]) -> None:
        if len(saved) != self.num_sets:
            raise ValueError("saved TLB state has the wrong geometry")
        self._sets = [list(s) for s in saved]
