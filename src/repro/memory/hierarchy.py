"""Two-level cache hierarchy with TLBs.

One :class:`MemoryHierarchy` instance is shared between functional
warming and detailed simulation within a SMARTS run — that sharing *is*
functional warming: the detailed simulator starts every sampling unit
with cache and TLB state that has been continuously updated during
fast-forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.machines import MachineConfig
from repro.memory.cache import SetAssociativeCache
from repro.memory.tlb import TLB

#: Service level of a memory access.
L1 = "l1"
L2 = "l2"
MEM = "mem"


@dataclass
class AccessResult:
    """Outcome of a memory access through the hierarchy."""

    level: str
    tlb_miss: bool

    @property
    def l1_hit(self) -> bool:
        return self.level == L1


class MemoryHierarchy:
    """L1 I/D caches, unified L2, and I/D TLBs."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.l1i = SetAssociativeCache(
            "l1i", config.l1i.size_bytes, config.l1i.assoc, config.l1i.block_bytes)
        self.l1d = SetAssociativeCache(
            "l1d", config.l1d.size_bytes, config.l1d.assoc, config.l1d.block_bytes)
        self.l2 = SetAssociativeCache(
            "l2", config.l2.size_bytes, config.l2.assoc, config.l2.block_bytes)
        self.itlb = TLB("itlb", config.itlb.entries, config.itlb.assoc,
                        config.itlb.page_bytes)
        self.dtlb = TLB("dtlb", config.dtlb.entries, config.dtlb.assoc,
                        config.dtlb.page_bytes)

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def access_instruction(self, address: int) -> AccessResult:
        """Fetch access: I-TLB, L1I, then L2 on miss."""
        tlb_miss = not self.itlb.access(address)
        if self.l1i.access(address):
            return AccessResult(L1, tlb_miss)
        if self.l2.access(address):
            return AccessResult(L2, tlb_miss)
        return AccessResult(MEM, tlb_miss)

    def access_data(self, address: int, is_write: bool = False) -> AccessResult:
        """Load/store access: D-TLB, L1D, then L2 on miss."""
        tlb_miss = not self.dtlb.access(address)
        if self.l1d.access(address, is_write):
            return AccessResult(L1, tlb_miss)
        if self.l2.access(address, is_write):
            return AccessResult(L2, tlb_miss)
        return AccessResult(MEM, tlb_miss)

    # ------------------------------------------------------------------
    # Latency mapping
    # ------------------------------------------------------------------
    def latency(self, result: AccessResult) -> int:
        """Cycles to service an access with the given outcome."""
        config = self.config
        if result.level == L1:
            cycles = config.l1_latency
        elif result.level == L2:
            cycles = config.l2_latency
        else:
            cycles = config.mem_latency
        if result.tlb_miss:
            cycles += config.tlb_miss_latency
        return cycles

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Invalidate all cache and TLB state (cold start)."""
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()
        self.itlb.flush()
        self.dtlb.flush()

    def snapshot_state(self) -> dict:
        """Serializable copy of all cache/TLB contents (checkpointing).

        Captures tag arrays, dirty bits and LRU order — everything that
        influences future accesses — but not the access statistics, which
        are reporting-only.
        """
        return {
            "l1i": self.l1i.copy_state(),
            "l1d": self.l1d.copy_state(),
            "l2": self.l2.copy_state(),
            "itlb": self.itlb.copy_state(),
            "dtlb": self.dtlb.copy_state(),
        }

    def restore_state(self, saved: dict) -> None:
        """Restore cache/TLB contents captured by :meth:`snapshot_state`."""
        self.l1i.restore_state(saved["l1i"])
        self.l1d.restore_state(saved["l1d"])
        self.l2.restore_state(saved["l2"])
        self.itlb.restore_state(saved["itlb"])
        self.dtlb.restore_state(saved["dtlb"])

    def reset_stats(self) -> None:
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()
        self.itlb.reset_stats()
        self.dtlb.reset_stats()

    def stats_summary(self) -> dict[str, float]:
        """Miss rates of every structure, for reporting and tests."""
        return {
            "l1i_miss_rate": self.l1i.stats.miss_rate,
            "l1d_miss_rate": self.l1d.stats.miss_rate,
            "l2_miss_rate": self.l2.stats.miss_rate,
            "itlb_miss_rate": self.itlb.stats.miss_rate,
            "dtlb_miss_rate": self.dtlb.stats.miss_rate,
            "l1i_accesses": self.l1i.stats.accesses,
            "l1d_accesses": self.l1d.stats.accesses,
            "l2_accesses": self.l2.stats.accesses,
        }
