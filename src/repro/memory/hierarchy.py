"""Two-level cache hierarchy with TLBs.

One :class:`MemoryHierarchy` instance is shared between functional
warming and detailed simulation within a SMARTS run — that sharing *is*
functional warming: the detailed simulator starts every sampling unit
with cache and TLB state that has been continuously updated during
fast-forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.machines import MachineConfig
from repro.memory.cache import SetAssociativeCache
from repro.memory.tlb import TLB

#: Service level of a memory access.
L1 = "l1"
L2 = "l2"
MEM = "mem"


@dataclass
class AccessResult:
    """Outcome of a memory access through the hierarchy."""

    level: str
    tlb_miss: bool

    @property
    def l1_hit(self) -> bool:
        return self.level == L1


class MemoryHierarchy:
    """L1 I/D caches, unified L2, and I/D TLBs."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.l1i = SetAssociativeCache(
            "l1i", config.l1i.size_bytes, config.l1i.assoc, config.l1i.block_bytes)
        self.l1d = SetAssociativeCache(
            "l1d", config.l1d.size_bytes, config.l1d.assoc, config.l1d.block_bytes)
        self.l2 = SetAssociativeCache(
            "l2", config.l2.size_bytes, config.l2.assoc, config.l2.block_bytes)
        self.itlb = TLB("itlb", config.itlb.entries, config.itlb.assoc,
                        config.itlb.page_bytes)
        self.dtlb = TLB("dtlb", config.dtlb.entries, config.dtlb.assoc,
                        config.dtlb.page_bytes)

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def access_instruction(self, address: int) -> AccessResult:
        """Fetch access: I-TLB, L1I, then L2 on miss."""
        tlb_miss = not self.itlb.access(address)
        if self.l1i.access(address):
            return AccessResult(L1, tlb_miss)
        if self.l2.access(address):
            return AccessResult(L2, tlb_miss)
        return AccessResult(MEM, tlb_miss)

    def access_data(self, address: int, is_write: bool = False) -> AccessResult:
        """Load/store access: D-TLB, L1D, then L2 on miss."""
        tlb_miss = not self.dtlb.access(address)
        if self.l1d.access(address, is_write):
            return AccessResult(L1, tlb_miss)
        if self.l2.access(address, is_write):
            return AccessResult(L2, tlb_miss)
        return AccessResult(MEM, tlb_miss)

    # ------------------------------------------------------------------
    # Bulk functional warming
    # ------------------------------------------------------------------
    def warm_many(self, events: list[int]) -> None:
        """Replay an ordered stream of warming accesses in one call.

        ``events`` holds one int per access, ``address << 2 | kind``
        with kind 0 = instruction fetch, 1 = load, 2 = store (the
        encoding produced by the trace-compiled engine, see
        :mod:`repro.functional.fastpath`).  The effect — tag arrays, LRU
        order, dirty bits, and statistics — is exactly that of calling
        :meth:`access_instruction` / :meth:`access_data` per event; the
        tag-lookup logic of :class:`SetAssociativeCache` and :class:`TLB`
        is inlined here (structure state hoisted into locals, no
        per-access :class:`AccessResult`) because this loop runs once per
        functionally warmed instruction.

        Event order is preserved, which matters: the instruction and
        data paths share L2, so their relative miss order is visible in
        its LRU state.
        """
        itlb, dtlb = self.itlb, self.dtlb
        l1i, l1d, l2 = self.l1i, self.l1d, self.l2
        if not (l1i.write_allocate and l1d.write_allocate
                and l2.write_allocate):  # pragma: no cover - not built today
            for event in events:
                kind = event & 3
                if kind == 0:
                    self.access_instruction(event >> 2)
                else:
                    self.access_data(event >> 2, kind == 2)
            return

        itlb_sets = itlb._sets
        itlb_nsets, itlb_page, itlb_assoc = (itlb.num_sets, itlb.page_bytes,
                                             itlb.assoc)
        dtlb_sets = dtlb._sets
        dtlb_nsets, dtlb_page, dtlb_assoc = (dtlb.num_sets, dtlb.page_bytes,
                                             dtlb.assoc)
        l1i_sets = l1i._sets
        l1i_nsets, l1i_block, l1i_assoc = (l1i.num_sets, l1i.block_bytes,
                                           l1i.assoc)
        l1d_sets = l1d._sets
        l1d_nsets, l1d_block, l1d_assoc = (l1d.num_sets, l1d.block_bytes,
                                           l1d.assoc)
        l2_sets = l2._sets
        l2_nsets, l2_block, l2_assoc = l2.num_sets, l2.block_bytes, l2.assoc

        itlb_acc = itlb_miss = dtlb_acc = dtlb_miss = 0
        l1i_acc = l1i_miss = l1i_evict = l1i_wb = 0
        l1d_acc = l1d_miss = l1d_evict = l1d_wb = 0
        l2_acc = l2_miss = l2_evict = l2_wb = 0

        for event in events:
            kind = event & 3
            address = event >> 2
            if kind == 0:
                # I-TLB
                vpn = address // itlb_page
                tlb_set = itlb_sets[vpn % itlb_nsets]
                tag = vpn // itlb_nsets
                itlb_acc += 1
                if tag in tlb_set:
                    if tlb_set[-1] != tag:
                        tlb_set.remove(tag)
                        tlb_set.append(tag)
                else:
                    itlb_miss += 1
                    if len(tlb_set) >= itlb_assoc:
                        tlb_set.pop(0)
                    tlb_set.append(tag)
                # L1I
                block = address // l1i_block
                cache_set = l1i_sets[block % l1i_nsets]
                tag = block // l1i_nsets
                l1i_acc += 1
                for i, entry in enumerate(cache_set):
                    if entry[0] == tag:
                        if i != len(cache_set) - 1:
                            cache_set.append(cache_set.pop(i))
                        break
                else:
                    l1i_miss += 1
                    if len(cache_set) >= l1i_assoc:
                        victim = cache_set.pop(0)
                        l1i_evict += 1
                        if victim[1]:
                            l1i_wb += 1
                    cache_set.append([tag, False])
                    # L2 (read)
                    block = address // l2_block
                    cache_set = l2_sets[block % l2_nsets]
                    tag = block // l2_nsets
                    l2_acc += 1
                    for i, entry in enumerate(cache_set):
                        if entry[0] == tag:
                            if i != len(cache_set) - 1:
                                cache_set.append(cache_set.pop(i))
                            break
                    else:
                        l2_miss += 1
                        if len(cache_set) >= l2_assoc:
                            victim = cache_set.pop(0)
                            l2_evict += 1
                            if victim[1]:
                                l2_wb += 1
                        cache_set.append([tag, False])
            else:
                is_write = kind == 2
                # D-TLB
                vpn = address // dtlb_page
                tlb_set = dtlb_sets[vpn % dtlb_nsets]
                tag = vpn // dtlb_nsets
                dtlb_acc += 1
                if tag in tlb_set:
                    if tlb_set[-1] != tag:
                        tlb_set.remove(tag)
                        tlb_set.append(tag)
                else:
                    dtlb_miss += 1
                    if len(tlb_set) >= dtlb_assoc:
                        tlb_set.pop(0)
                    tlb_set.append(tag)
                # L1D
                block = address // l1d_block
                cache_set = l1d_sets[block % l1d_nsets]
                tag = block // l1d_nsets
                l1d_acc += 1
                for i, entry in enumerate(cache_set):
                    if entry[0] == tag:
                        if i != len(cache_set) - 1:
                            cache_set.append(cache_set.pop(i))
                        if is_write:
                            cache_set[-1][1] = True
                        break
                else:
                    l1d_miss += 1
                    if len(cache_set) >= l1d_assoc:
                        victim = cache_set.pop(0)
                        l1d_evict += 1
                        if victim[1]:
                            l1d_wb += 1
                    cache_set.append([tag, is_write])
                    # L2 (same read/write flavour as the L1D access)
                    block = address // l2_block
                    cache_set = l2_sets[block % l2_nsets]
                    tag = block // l2_nsets
                    l2_acc += 1
                    for i, entry in enumerate(cache_set):
                        if entry[0] == tag:
                            if i != len(cache_set) - 1:
                                cache_set.append(cache_set.pop(i))
                            if is_write:
                                cache_set[-1][1] = True
                            break
                    else:
                        l2_miss += 1
                        if len(cache_set) >= l2_assoc:
                            victim = cache_set.pop(0)
                            l2_evict += 1
                            if victim[1]:
                                l2_wb += 1
                        cache_set.append([tag, is_write])

        itlb.stats.accesses += itlb_acc
        itlb.stats.misses += itlb_miss
        dtlb.stats.accesses += dtlb_acc
        dtlb.stats.misses += dtlb_miss
        stats = l1i.stats
        stats.accesses += l1i_acc
        stats.misses += l1i_miss
        stats.evictions += l1i_evict
        stats.writebacks += l1i_wb
        stats = l1d.stats
        stats.accesses += l1d_acc
        stats.misses += l1d_miss
        stats.evictions += l1d_evict
        stats.writebacks += l1d_wb
        stats = l2.stats
        stats.accesses += l2_acc
        stats.misses += l2_miss
        stats.evictions += l2_evict
        stats.writebacks += l2_wb

    # ------------------------------------------------------------------
    # Latency mapping
    # ------------------------------------------------------------------
    def latency(self, result: AccessResult) -> int:
        """Cycles to service an access with the given outcome."""
        config = self.config
        if result.level == L1:
            cycles = config.l1_latency
        elif result.level == L2:
            cycles = config.l2_latency
        else:
            cycles = config.mem_latency
        if result.tlb_miss:
            cycles += config.tlb_miss_latency
        return cycles

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Invalidate all cache and TLB state (cold start)."""
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()
        self.itlb.flush()
        self.dtlb.flush()

    def snapshot_state(self) -> dict:
        """Serializable copy of all cache/TLB contents (checkpointing).

        Captures tag arrays, dirty bits and LRU order — everything that
        influences future accesses — but not the access statistics, which
        are reporting-only.
        """
        return {
            "l1i": self.l1i.copy_state(),
            "l1d": self.l1d.copy_state(),
            "l2": self.l2.copy_state(),
            "itlb": self.itlb.copy_state(),
            "dtlb": self.dtlb.copy_state(),
        }

    def restore_state(self, saved: dict) -> None:
        """Restore cache/TLB contents captured by :meth:`snapshot_state`."""
        self.l1i.restore_state(saved["l1i"])
        self.l1d.restore_state(saved["l1d"])
        self.l2.restore_state(saved["l2"])
        self.itlb.restore_state(saved["itlb"])
        self.dtlb.restore_state(saved["dtlb"])

    def reset_stats(self) -> None:
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()
        self.itlb.reset_stats()
        self.dtlb.reset_stats()

    def stats_summary(self) -> dict[str, float]:
        """Miss rates of every structure, for reporting and tests."""
        return {
            "l1i_miss_rate": self.l1i.stats.miss_rate,
            "l1d_miss_rate": self.l1d.stats.miss_rate,
            "l2_miss_rate": self.l2.stats.miss_rate,
            "itlb_miss_rate": self.itlb.stats.miss_rate,
            "dtlb_miss_rate": self.dtlb.stats.miss_rate,
            "l1i_accesses": self.l1i.stats.accesses,
            "l1d_accesses": self.l1d.stats.accesses,
            "l2_accesses": self.l2.stats.accesses,
        }
