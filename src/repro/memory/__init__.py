"""Memory system substrate: caches, TLBs, MSHRs, store buffer, hierarchy."""

from repro.memory.cache import CacheStats, SetAssociativeCache
from repro.memory.hierarchy import L1, L2, MEM, AccessResult, MemoryHierarchy
from repro.memory.mshr import MSHRFile, MSHRStats
from repro.memory.store_buffer import StoreBuffer, StoreBufferStats
from repro.memory.tlb import TLB, TLBStats

__all__ = [
    "AccessResult",
    "CacheStats",
    "L1",
    "L2",
    "MEM",
    "MSHRFile",
    "MSHRStats",
    "MemoryHierarchy",
    "SetAssociativeCache",
    "StoreBuffer",
    "StoreBufferStats",
    "TLB",
    "TLBStats",
]
