"""Set-associative cache model with LRU replacement.

The cache model serves three clients:

* the detailed timing simulator, which needs hit/miss outcomes to assign
  memory latencies;
* functional warming, which only needs the state-updating side effect of
  an access (Section 3.1: "maintaining large microarchitectural state,
  such as branch predictors and the cache hierarchy, during
  fast-forwarding");
* the energy model, which consumes the access counters.

Timing (latency accumulation, MSHR occupancy) is modeled by the caller,
so a cache access here is purely a tag-array lookup plus LRU update.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Access counters for one cache instance."""

    accesses: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.accesses, self.misses, self.evictions, self.writebacks)


class SetAssociativeCache:
    """A set-associative cache with true-LRU replacement.

    Args:
        name: Identifier used in statistics and error messages.
        size_bytes: Total capacity.
        assoc: Associativity (ways per set).
        block_bytes: Cache block (line) size.
        write_allocate: Whether write misses allocate the block
            (write-back write-allocate policy, as SimpleScalar models).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        block_bytes: int = 32,
        write_allocate: bool = True,
    ) -> None:
        if size_bytes <= 0 or assoc <= 0 or block_bytes <= 0:
            raise ValueError("cache geometry parameters must be positive")
        num_blocks = size_bytes // block_bytes
        if num_blocks < assoc:
            raise ValueError(
                f"cache {name!r}: capacity {size_bytes}B holds fewer blocks "
                f"than associativity {assoc}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_bytes = block_bytes
        self.write_allocate = write_allocate
        self.num_sets = max(1, num_blocks // assoc)
        self.stats = CacheStats()
        # Each set is a list of (tag, dirty) with most-recently-used last.
        self._sets: list[list[list]] = [[] for _ in range(self.num_sets)]

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def block_address(self, address: int) -> int:
        return address // self.block_bytes

    def set_index(self, address: int) -> int:
        return (address // self.block_bytes) % self.num_sets

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def access(self, address: int, is_write: bool = False) -> bool:
        """Access the cache; returns True on hit.

        On a miss the block is allocated (unless this is a write and the
        cache is not write-allocate), possibly evicting the LRU block of
        the set.
        """
        block = address // self.block_bytes
        index = block % self.num_sets
        tag = block // self.num_sets
        cache_set = self._sets[index]
        self.stats.accesses += 1

        for i, entry in enumerate(cache_set):
            if entry[0] == tag:
                # Hit: move to MRU position, update dirty bit.
                if i != len(cache_set) - 1:
                    cache_set.append(cache_set.pop(i))
                if is_write:
                    cache_set[-1][1] = True
                return True

        self.stats.misses += 1
        if is_write and not self.write_allocate:
            return False
        if len(cache_set) >= self.assoc:
            victim = cache_set.pop(0)
            self.stats.evictions += 1
            if victim[1]:
                self.stats.writebacks += 1
        cache_set.append([tag, is_write])
        return False

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        block = address // self.block_bytes
        index = block % self.num_sets
        tag = block // self.num_sets
        return any(entry[0] == tag for entry in self._sets[index])

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Invalidate all blocks (does not reset statistics)."""
        self._sets = [[] for _ in range(self.num_sets)]

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def resident_blocks(self) -> int:
        """Number of valid blocks currently cached."""
        return sum(len(s) for s in self._sets)

    def copy_state(self) -> list[list[list]]:
        """Deep copy of the tag arrays (for checkpoint/restore in tests)."""
        return [[list(entry) for entry in s] for s in self._sets]

    def restore_state(self, saved: list[list[list]]) -> None:
        if len(saved) != self.num_sets:
            raise ValueError(f"saved state for cache {self.name!r} has the "
                             f"wrong geometry")
        self._sets = [[list(entry) for entry in s] for s in saved]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SetAssociativeCache({self.name!r}, {self.size_bytes}B, "
            f"{self.assoc}-way, {self.block_bytes}B blocks)"
        )
