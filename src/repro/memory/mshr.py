"""Miss status holding registers (MSHRs).

The paper's enhanced ``sim-outorder`` memory subsystem models MSHRs and
interconnect bottlenecks (Section 3.2).  This model is used by the
detailed timing simulator, which is timestamp-based: each outstanding
miss is an entry with the cycle at which its data returns.  Requests to a
block that already has an outstanding miss merge into the existing entry;
when all MSHRs are busy a new miss must wait for the earliest entry to
retire (a structural stall).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MSHRStats:
    allocations: int = 0
    merges: int = 0
    structural_stalls: int = 0
    stall_cycles: int = 0


class MSHRFile:
    """A bank of miss status holding registers.

    The file is consulted only by the detailed timing model; functional
    warming does not track outstanding misses (it has no notion of time).
    """

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ValueError("MSHR entry count must be positive")
        self.entries = entries
        self.stats = MSHRStats()
        # Maps block address -> completion cycle.
        self._outstanding: dict[int, int] = {}

    def _expire(self, now: int) -> None:
        if self._outstanding:
            expired = [blk for blk, t in self._outstanding.items() if t <= now]
            for blk in expired:
                del self._outstanding[blk]

    def outstanding(self, now: int) -> int:
        """Number of misses still in flight at cycle ``now``."""
        self._expire(now)
        return len(self._outstanding)

    def request(self, block: int, now: int, latency: int) -> tuple[int, int]:
        """Issue a miss request for ``block`` at cycle ``now``.

        Returns ``(ready_cycle, stall_cycles)`` where ``ready_cycle`` is
        when the data becomes available and ``stall_cycles`` is any delay
        incurred waiting for a free MSHR (zero when one was available or
        the request merged with an outstanding miss).
        """
        self._expire(now)
        existing = self._outstanding.get(block)
        if existing is not None and existing > now:
            self.stats.merges += 1
            return existing, 0

        stall = 0
        if len(self._outstanding) >= self.entries:
            earliest = min(self._outstanding.values())
            stall = max(0, earliest - now)
            self.stats.structural_stalls += 1
            self.stats.stall_cycles += stall
            self._expire(earliest)
            # If expiry did not free an entry (all completions in the
            # future beyond ``earliest``), drop the oldest entry anyway --
            # its data has been requested and will arrive regardless; we
            # only lose merge opportunities, not correctness.
            if len(self._outstanding) >= self.entries:
                oldest = min(self._outstanding, key=self._outstanding.get)
                del self._outstanding[oldest]
        ready = now + stall + latency
        self._outstanding[block] = ready
        self.stats.allocations += 1
        return ready, stall

    def flush(self) -> None:
        self._outstanding.clear()

    def reset_stats(self) -> None:
        self.stats = MSHRStats()
