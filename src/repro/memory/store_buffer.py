"""Store buffer model.

Committed stores drain through a finite store buffer to the cache
hierarchy.  The paper uses the store buffer to derive the analytic bound
on detailed warming W (Section 4.4): "a worst-case bound on W is the
product of store-buffer depth, memory latency in cycles, and the maximum
IPC".  The model is timestamp-based to match the detailed simulator: each
occupied entry carries the cycle at which it finishes writing back.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class StoreBufferStats:
    stores: int = 0
    full_stalls: int = 0
    stall_cycles: int = 0


class StoreBuffer:
    """Finite store buffer draining committed stores to the memory system."""

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ValueError("store buffer entry count must be positive")
        self.entries = entries
        self.stats = StoreBufferStats()
        # Completion cycles of in-flight stores (unsorted; small).
        self._inflight: list[int] = []

    def _expire(self, now: int) -> None:
        if self._inflight:
            self._inflight = [t for t in self._inflight if t > now]

    def occupancy(self, now: int) -> int:
        self._expire(now)
        return len(self._inflight)

    def push(self, now: int, drain_latency: int) -> tuple[int, int]:
        """Insert a committed store at cycle ``now``.

        Returns ``(completion_cycle, stall_cycles)``.  When the buffer is
        full the store (and therefore commit) stalls until the oldest
        entry drains.
        """
        self._expire(now)
        stall = 0
        if len(self._inflight) >= self.entries:
            earliest = min(self._inflight)
            stall = max(0, earliest - now)
            self.stats.full_stalls += 1
            self.stats.stall_cycles += stall
            self._expire(earliest)
            if len(self._inflight) >= self.entries:
                self._inflight.remove(min(self._inflight))
        completion = now + stall + drain_latency
        self._inflight.append(completion)
        self.stats.stores += 1
        return completion, stall

    def flush(self) -> None:
        self._inflight.clear()

    def reset_stats(self) -> None:
        self.stats = StoreBufferStats()
