"""SimPoint baseline: BBV profiling, clustering, weighted estimation."""

from repro.simpoint.bbv import BBVProfile, profile_bbv, project_vectors
from repro.simpoint.estimator import (
    SimPoint,
    SimPointResult,
    run_simpoint,
    select_simpoints,
)
from repro.simpoint.kmeans import KMeansResult, bic_score, choose_clustering, kmeans

__all__ = [
    "BBVProfile",
    "KMeansResult",
    "SimPoint",
    "SimPointResult",
    "bic_score",
    "choose_clustering",
    "kmeans",
    "profile_bbv",
    "project_vectors",
    "run_simpoint",
    "select_simpoints",
]
