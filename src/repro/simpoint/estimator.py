"""The SimPoint baseline estimator (Section 5.3 of the SMARTS paper).

SimPoint picks a handful of large representative intervals by clustering
basic block vectors, simulates each chosen interval once in detail, and
forms a weighted CPI estimate.  Its key properties relative to SMARTS —
no warming requirement thanks to large intervals, early termination, but
no statistical confidence bound and potentially large error when
same-BBV regions behave differently on a given microarchitecture — are
what Figure 8 of the paper contrasts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.config.machines import MachineConfig
from repro.detailed.pipeline import DetailedSimulator
from repro.detailed.state import MicroarchState
from repro.energy.wattch import EnergyModel
from repro.functional.simulator import FunctionalCore
from repro.isa.program import Program
from repro.simpoint.bbv import BBVProfile, profile_bbv, project_vectors
from repro.simpoint.kmeans import KMeansResult, choose_clustering


@dataclass
class SimPoint:
    """One selected representative interval."""

    interval_index: int
    weight: float
    cpi: float = 0.0
    epi: float = 0.0
    instructions: int = 0


@dataclass
class SimPointResult:
    """Outcome of a SimPoint estimation run."""

    benchmark: str
    machine: str
    interval_size: int
    num_clusters: int
    simpoints: list[SimPoint] = field(default_factory=list)
    instructions_detailed: int = 0
    instructions_fastforwarded: int = 0
    seconds: float = 0.0

    @property
    def cpi(self) -> float:
        """Weighted CPI estimate over the chosen intervals."""
        total_weight = sum(p.weight for p in self.simpoints)
        if total_weight == 0:
            return 0.0
        return sum(p.cpi * p.weight for p in self.simpoints) / total_weight

    @property
    def epi(self) -> float:
        total_weight = sum(p.weight for p in self.simpoints)
        if total_weight == 0:
            return 0.0
        return sum(p.epi * p.weight for p in self.simpoints) / total_weight


def select_simpoints(profile: BBVProfile, max_clusters: int = 10,
                     projected_dimensions: int = 15, seed: int = 0
                     ) -> tuple[list[SimPoint], KMeansResult]:
    """Cluster a BBV profile and select one representative per cluster."""
    projected = project_vectors(profile, dimensions=projected_dimensions, seed=seed)
    clustering = choose_clustering(projected, max_k=max_clusters, seed=seed)
    weights_total = float(profile.interval_lengths.sum())
    simpoints: list[SimPoint] = []
    for cluster in range(clustering.k):
        member_indices = np.flatnonzero(clustering.labels == cluster)
        if member_indices.size == 0:
            continue
        centroid = clustering.centroids[cluster]
        distances = ((projected[member_indices] - centroid) ** 2).sum(axis=1)
        representative = int(member_indices[int(distances.argmin())])
        weight = float(
            profile.interval_lengths[member_indices].sum()) / weights_total
        simpoints.append(SimPoint(interval_index=representative, weight=weight))
    simpoints.sort(key=lambda p: p.interval_index)
    return simpoints, clustering


def run_simpoint(
    program: Program,
    machine: MachineConfig,
    interval_size: int,
    max_clusters: int = 10,
    seed: int = 0,
    measure_energy: bool = True,
    profile: BBVProfile | None = None,
) -> SimPointResult:
    """Full SimPoint flow: profile, cluster, simulate, weight.

    The chosen intervals are simulated in ascending order in a single
    forward pass: functional fast-forwarding (without warming — SimPoint
    relies on its large intervals to amortize cold state) between them,
    detailed simulation of each interval.  Simulation terminates after
    the last chosen interval (SimPoint's early-termination advantage).
    """
    start = time.perf_counter()
    if profile is None:
        profile = profile_bbv(program, interval_size)
    simpoints, clustering = select_simpoints(
        profile, max_clusters=max_clusters, seed=seed)

    core = FunctionalCore(program)
    microarch = MicroarchState(machine)
    detailed = DetailedSimulator(machine, microarch)
    energy_model = EnergyModel(machine) if measure_energy else None

    result = SimPointResult(
        benchmark=program.name,
        machine=machine.name,
        interval_size=interval_size,
        num_clusters=clustering.k,
    )

    for point in simpoints:
        target = point.interval_index * interval_size
        gap = target - core.instructions_retired
        if gap > 0:
            executed = core.run(gap)
            result.instructions_fastforwarded += executed
            if executed < gap:
                break
        detailed.begin_period()
        counters = detailed.run(core, interval_size)
        if counters.instructions == 0:
            break
        point.instructions = counters.instructions
        point.cpi = counters.cpi
        if energy_model is not None:
            point.epi = energy_model.epi(counters)
        result.instructions_detailed += counters.instructions
        result.simpoints.append(point)
        if core.halted:
            break

    result.seconds = time.perf_counter() - start
    return result
