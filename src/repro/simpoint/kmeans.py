"""K-means clustering with BIC-based model selection.

A small, dependency-free (numpy-only) implementation of the clustering
machinery SimPoint uses: k-means with k-means++ seeding, run for several
values of k, scored with the Bayesian Information Criterion, keeping the
smallest k whose BIC is within a fraction of the best observed BIC
(SimPoint's published heuristic).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class KMeansResult:
    """Result of one k-means run."""

    k: int
    labels: np.ndarray
    centroids: np.ndarray
    inertia: float

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.k)


def _kmeans_plus_plus_init(data: np.ndarray, k: int,
                           rng: np.random.Generator) -> np.ndarray:
    """k-means++ centroid seeding."""
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]), dtype=float)
    first = rng.integers(n)
    centroids[0] = data[first]
    closest_sq = ((data - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            centroids[i] = data[rng.integers(n)]
        else:
            probabilities = closest_sq / total
            choice = rng.choice(n, p=probabilities)
            centroids[i] = data[choice]
        distances = ((data - centroids[i]) ** 2).sum(axis=1)
        closest_sq = np.minimum(closest_sq, distances)
    return centroids


def kmeans(data: np.ndarray, k: int, max_iterations: int = 100,
           seed: int = 0) -> KMeansResult:
    """Cluster ``data`` (rows are points) into ``k`` clusters."""
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty data set")
    k = min(k, n)
    if k <= 0:
        raise ValueError("k must be positive")
    rng = np.random.default_rng(seed)
    centroids = _kmeans_plus_plus_init(data, k, rng)
    labels = np.zeros(n, dtype=int)

    for _ in range(max_iterations):
        # Assignment step.
        distances = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        # Update step; re-seed empty clusters on the farthest points.
        for cluster in range(k):
            members = data[labels == cluster]
            if len(members) == 0:
                farthest = distances.min(axis=1).argmax()
                centroids[cluster] = data[farthest]
            else:
                centroids[cluster] = members.mean(axis=0)

    distances = ((data - centroids[labels]) ** 2).sum(axis=1)
    return KMeansResult(k=k, labels=labels, centroids=centroids,
                        inertia=float(distances.sum()))


def bic_score(data: np.ndarray, result: KMeansResult) -> float:
    """Bayesian Information Criterion of a clustering (higher is better).

    Uses the spherical-Gaussian likelihood approximation from the
    x-means/SimPoint literature.
    """
    n, d = data.shape
    k = result.k
    if n <= k:
        return float("-inf")
    variance = result.inertia / max(1e-12, (n - k))
    variance = max(variance, 1e-12)
    sizes = result.cluster_sizes()
    log_likelihood = 0.0
    for size in sizes:
        if size <= 0:
            continue
        log_likelihood += (
            size * np.log(size / n)
            - size * d / 2.0 * np.log(2.0 * np.pi * variance)
            - (size - 1) * d / 2.0 / max(1, (n - k)) * 0  # absorbed in variance term
        )
    log_likelihood -= (n - k) * d / 2.0
    parameters = k * (d + 1)
    return float(log_likelihood - parameters / 2.0 * np.log(n))


def choose_clustering(data: np.ndarray, max_k: int = 10, seed: int = 0,
                      bic_threshold: float = 0.9) -> KMeansResult:
    """Pick a clustering following SimPoint's BIC heuristic.

    Runs k-means for k = 1..max_k, scores each with BIC, and returns the
    clustering with the smallest k whose BIC reaches ``bic_threshold`` of
    the way from the worst to the best observed score.
    """
    data = np.asarray(data, dtype=float)
    max_k = max(1, min(max_k, data.shape[0]))
    results: list[KMeansResult] = []
    scores: list[float] = []
    for k in range(1, max_k + 1):
        result = kmeans(data, k, seed=seed + k)
        results.append(result)
        scores.append(bic_score(data, result))
    best = max(scores)
    worst = min(scores)
    span = best - worst
    if span <= 0:
        return results[0]
    for result, score in zip(results, scores):
        if (score - worst) / span >= bic_threshold:
            return result
    return results[int(np.argmax(scores))]
