"""Basic block vector (BBV) profiling for the SimPoint baseline.

SimPoint (Sherwood et al., ASPLOS 2002; Section 5.3 of the SMARTS paper)
selects representative simulation regions by clustering per-interval
basic block vectors: for each fixed-size interval of the dynamic
instruction stream, the number of times each static basic block executes
(weighted by block length) forms a vector; intervals with similar vectors
are assumed to behave similarly.

Profiling runs entirely in functional simulation, matching SimPoint's
offline, microarchitecture-independent analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.functional.simulator import FunctionalCore
from repro.isa.program import Program


@dataclass
class BBVProfile:
    """Per-interval basic block vectors for one benchmark."""

    benchmark: str
    interval_size: int
    #: Matrix of shape (num_intervals, num_blocks); rows L1-normalized.
    vectors: np.ndarray
    #: Instructions actually executed in each interval (the final
    #: interval may be short).
    interval_lengths: np.ndarray

    @property
    def num_intervals(self) -> int:
        return int(self.vectors.shape[0])

    @property
    def num_blocks(self) -> int:
        return int(self.vectors.shape[1])

    @property
    def total_instructions(self) -> int:
        return int(self.interval_lengths.sum())


def profile_bbv(program: Program, interval_size: int,
                max_instructions: int | None = None) -> BBVProfile:
    """Profile ``program`` into per-interval basic block vectors.

    Args:
        program: The benchmark to profile.
        interval_size: Instructions per profiling interval (SimPoint uses
            10M-100M at SPEC scale; scaled down here with everything else).
        max_instructions: Optional cap on profiled instructions.

    Returns:
        A :class:`BBVProfile` with one L1-normalized row per interval.
    """
    if interval_size <= 0:
        raise ValueError("interval_size must be positive")
    block_of = program.basic_block_map()
    num_blocks = max(block_of.values()) + 1 if block_of else 1

    core = FunctionalCore(program)
    rows: list[np.ndarray] = []
    lengths: list[int] = []
    current = np.zeros(num_blocks, dtype=float)
    count = 0
    total = 0
    limit = max_instructions if max_instructions is not None else float("inf")

    while total < limit:
        dyn = core.step()
        if dyn is None:
            break
        current[block_of[dyn.pc]] += 1.0
        count += 1
        total += 1
        if count == interval_size:
            rows.append(current)
            lengths.append(count)
            current = np.zeros(num_blocks, dtype=float)
            count = 0

    if count > 0:
        rows.append(current)
        lengths.append(count)

    if not rows:
        raise ValueError(f"program {program.name!r} executed no instructions")

    matrix = np.vstack(rows)
    row_sums = matrix.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0.0] = 1.0
    matrix = matrix / row_sums
    from repro.store import record_pass  # deferred: avoids cycle

    record_pass("bbv_profile", program.name, total)
    return BBVProfile(
        benchmark=program.name,
        interval_size=interval_size,
        vectors=matrix,
        interval_lengths=np.asarray(lengths, dtype=int),
    )


def project_vectors(profile: BBVProfile, dimensions: int = 15,
                    seed: int = 0) -> np.ndarray:
    """Randomly project BBVs to a lower dimension (as SimPoint does).

    SimPoint projects the (very sparse, high-dimensional) BBVs down to
    ~15 dimensions before clustering; this keeps k-means cheap and
    insensitive to the raw dimensionality.
    """
    if dimensions <= 0:
        raise ValueError("dimensions must be positive")
    if profile.num_blocks <= dimensions:
        return profile.vectors.copy()
    rng = np.random.default_rng(seed)
    projection = rng.normal(size=(profile.num_blocks, dimensions))
    projection /= np.sqrt(dimensions)
    return profile.vectors @ projection
