"""Resolution of the repository-level on-disk cache directories.

Every persistent cache (run results, reference traces, checkpoint sets)
resolves its directory the same way: an environment variable wins,
otherwise the repository root of a src-layout checkout, falling back to
the working directory for installed packages (where the package's
grandparent is a site-packages tree, not a writable project root).
"""

from __future__ import annotations

import os
from pathlib import Path


def project_cache_dir(env_var: str | tuple[str, ...], dirname: str) -> Path:
    """Resolve a cache directory from env overrides or the project root.

    ``env_var`` may be a single variable name or a chain tried in order
    (first set one wins) — the chains are how legacy per-cache variables
    keep working while their caches move into the unified artifact
    store.
    """
    names = (env_var,) if isinstance(env_var, str) else env_var
    for name in names:
        env = os.environ.get(name)
        if env:
            return Path(env)
    root = Path(__file__).resolve().parents[2]
    if (root / "src" / "repro").is_dir():
        return root / dirname
    return Path.cwd() / dirname
