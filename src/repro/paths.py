"""Resolution of the repository-level on-disk cache directories.

Every persistent cache (run results, reference traces, checkpoint sets)
resolves its directory the same way: an environment variable wins,
otherwise the repository root of a src-layout checkout, falling back to
the working directory for installed packages (where the package's
grandparent is a site-packages tree, not a writable project root).
"""

from __future__ import annotations

import os
from pathlib import Path


def project_cache_dir(env_var: str, dirname: str) -> Path:
    env = os.environ.get(env_var)
    if env:
        return Path(env)
    root = Path(__file__).resolve().parents[2]
    if (root / "src" / "repro").is_dir():
        return root / dirname
    return Path.cwd() / dirname
