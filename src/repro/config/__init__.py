"""Machine and simulation configurations."""

from repro.config.machines import (
    CONFIGURATIONS,
    BranchConfig,
    CacheConfig,
    MachineConfig,
    TLBConfig,
    get_config,
    scaled_16way,
    scaled_8way,
    table3_16way,
    table3_8way,
)

__all__ = [
    "BranchConfig",
    "CONFIGURATIONS",
    "CacheConfig",
    "MachineConfig",
    "TLBConfig",
    "get_config",
    "scaled_16way",
    "scaled_8way",
    "table3_16way",
    "table3_8way",
]
