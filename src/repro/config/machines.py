"""Machine configurations (Table 3 of the paper).

Two families of configurations are provided:

* :func:`table3_8way` / :func:`table3_16way` — the literal parameters the
  paper lists in Table 3 for its 8-way baseline and 16-way aggressive
  configurations.
* :func:`scaled_8way` / :func:`scaled_16way` — the same machines with the
  capacity-type parameters (cache/TLB/predictor sizes, memory latency)
  scaled down to match the working-set sizes of this repository's
  synthetic workloads, which are orders of magnitude shorter than SPEC
  CPU2000 reference runs.  All *ratios* the paper's arguments rest on are
  preserved: the 16-way machine doubles datapath width, window, cache
  capacity and predictor size relative to the 8-way machine, exactly as
  in Table 3.

The experiments in ``benchmarks/`` use the scaled configurations by
default (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.isa.opcodes import OpClass, Opcode


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    assoc: int
    block_bytes: int = 32
    ports: int = 1
    mshr_entries: int = 8


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of one TLB."""

    entries: int
    assoc: int
    page_bytes: int = 4096


@dataclass(frozen=True)
class BranchConfig:
    """Branch prediction resources."""

    #: Entries in each of the combined predictor's component tables.
    table_entries: int = 2048
    #: Global history bits for the gshare component.
    history_bits: int = 10
    btb_entries: int = 512
    btb_assoc: int = 4
    ras_entries: int = 8
    mispredict_penalty: int = 7
    predictions_per_cycle: int = 1


@dataclass(frozen=True)
class MachineConfig:
    """A complete processor + memory-system configuration.

    Mirrors the parameter groups of Table 3: datapath widths, RUU/LSQ
    sizes, the memory system, TLBs, latencies, functional units and the
    branch predictor.
    """

    name: str

    # Datapath
    fetch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    ruu_size: int = 128
    lsq_size: int = 64

    # Memory system
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 2))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 2))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(1024 * 1024, 4, block_bytes=64)
    )
    store_buffer_entries: int = 16

    # TLBs
    itlb: TLBConfig = field(default_factory=lambda: TLBConfig(128, 4))
    dtlb: TLBConfig = field(default_factory=lambda: TLBConfig(256, 4))
    tlb_miss_latency: int = 200

    # Latencies (cycles)
    l1_latency: int = 1
    l2_latency: int = 12
    mem_latency: int = 100

    # Functional units: number of units per scheduling class.
    fu_counts: dict = field(
        default_factory=lambda: {
            OpClass.IALU: 4,
            OpClass.IMULT: 2,
            OpClass.FPALU: 2,
            OpClass.FPMULT: 1,
        }
    )
    # Execution latency per scheduling class (divides override below).
    fu_latency: dict = field(
        default_factory=lambda: {
            OpClass.IALU: 1,
            OpClass.IMULT: 3,
            OpClass.FPALU: 2,
            OpClass.FPMULT: 4,
            OpClass.LOAD: 1,
            OpClass.STORE: 1,
            OpClass.BRANCH: 1,
            OpClass.NOP: 1,
        }
    )
    # Opcode-specific latency overrides (long-latency divides).
    op_latency: dict = field(
        default_factory=lambda: {
            Opcode.DIV: 12,
            Opcode.MOD: 12,
            Opcode.FDIV: 12,
            Opcode.FSQRT: 16,
        }
    )

    # Branch prediction
    branch: BranchConfig = field(default_factory=BranchConfig)

    def exec_latency(self, op: Opcode, opclass: OpClass) -> int:
        """Execution latency of an instruction (excluding memory time)."""
        override = self.op_latency.get(op)
        if override is not None:
            return override
        return self.fu_latency[opclass]

    def describe(self) -> dict[str, str]:
        """Table 3-style description rows for reporting."""
        return {
            "RUU/LSQ": f"{self.ruu_size}/{self.lsq_size}",
            "Width (fetch/issue/commit)": (
                f"{self.fetch_width}/{self.issue_width}/{self.commit_width}"
            ),
            "L1 I/D": (
                f"{self.l1i.size_bytes // 1024}KB {self.l1i.assoc}-way, "
                f"{self.l1d.ports} ports, {self.l1d.mshr_entries} MSHR"
            ),
            "L2": f"{self.l2.size_bytes // 1024}KB {self.l2.assoc}-way",
            "Store buffer": f"{self.store_buffer_entries} entries",
            "ITLB/DTLB": (
                f"{self.itlb.assoc}-way {self.itlb.entries} entries / "
                f"{self.dtlb.assoc}-way {self.dtlb.entries} entries, "
                f"{self.tlb_miss_latency} cycle miss"
            ),
            "L1/L2/mem latency": (
                f"{self.l1_latency}/{self.l2_latency}/{self.mem_latency} cycles"
            ),
            "Functional units": (
                f"{self.fu_counts[OpClass.IALU]} I-ALU, "
                f"{self.fu_counts[OpClass.IMULT]} I-MUL/DIV, "
                f"{self.fu_counts[OpClass.FPALU]} FP-ALU, "
                f"{self.fu_counts[OpClass.FPMULT]} FP-MUL/DIV"
            ),
            "Branch predictor": (
                f"Combined {self.branch.table_entries // 1024}K tables, "
                f"{self.branch.mispredict_penalty} cycle mispred., "
                f"{self.branch.predictions_per_cycle} prediction/cycle"
            ),
        }


# ----------------------------------------------------------------------
# Literal Table 3 configurations
# ----------------------------------------------------------------------
def table3_8way() -> MachineConfig:
    """The paper's 8-way baseline configuration (Table 3)."""
    return MachineConfig(
        name="8-way",
        fetch_width=8,
        issue_width=8,
        commit_width=8,
        ruu_size=128,
        lsq_size=64,
        l1i=CacheConfig(32 * 1024, 2, ports=2, mshr_entries=8),
        l1d=CacheConfig(32 * 1024, 2, ports=2, mshr_entries=8),
        l2=CacheConfig(1024 * 1024, 4, block_bytes=64),
        store_buffer_entries=16,
        itlb=TLBConfig(128, 4),
        dtlb=TLBConfig(256, 4),
        tlb_miss_latency=200,
        l1_latency=1,
        l2_latency=12,
        mem_latency=100,
        fu_counts={
            OpClass.IALU: 4,
            OpClass.IMULT: 2,
            OpClass.FPALU: 2,
            OpClass.FPMULT: 1,
        },
        branch=BranchConfig(
            table_entries=2048,
            history_bits=11,
            mispredict_penalty=7,
            predictions_per_cycle=1,
        ),
    )


def table3_16way() -> MachineConfig:
    """The paper's 16-way aggressive configuration (Table 3)."""
    return MachineConfig(
        name="16-way",
        fetch_width=16,
        issue_width=16,
        commit_width=16,
        ruu_size=256,
        lsq_size=128,
        l1i=CacheConfig(64 * 1024, 2, ports=4, mshr_entries=16),
        l1d=CacheConfig(64 * 1024, 2, ports=4, mshr_entries=16),
        l2=CacheConfig(2 * 1024 * 1024, 8, block_bytes=64),
        store_buffer_entries=32,
        itlb=TLBConfig(128, 4),
        dtlb=TLBConfig(256, 4),
        tlb_miss_latency=200,
        l1_latency=2,
        l2_latency=16,
        mem_latency=100,
        fu_counts={
            OpClass.IALU: 16,
            OpClass.IMULT: 8,
            OpClass.FPALU: 8,
            OpClass.FPMULT: 4,
        },
        branch=BranchConfig(
            table_entries=8192,
            history_bits=13,
            mispredict_penalty=10,
            predictions_per_cycle=2,
        ),
    )


# ----------------------------------------------------------------------
# Scaled configurations used by the experiments
# ----------------------------------------------------------------------
def scaled_8way() -> MachineConfig:
    """8-way baseline scaled to the synthetic workloads' working sets.

    Cache, TLB and predictor capacities are reduced (the workloads touch
    kilobytes to a few megabytes rather than SPEC's hundreds of
    megabytes) so that L1/L2/memory miss behaviour — the source of CPI
    variability the paper studies — actually occurs.
    """
    base = table3_8way()
    return replace(
        base,
        name="8-way-scaled",
        l1i=CacheConfig(4 * 1024, 2, block_bytes=32, ports=2, mshr_entries=8),
        l1d=CacheConfig(4 * 1024, 2, block_bytes=32, ports=2, mshr_entries=8),
        l2=CacheConfig(32 * 1024, 4, block_bytes=64),
        itlb=TLBConfig(16, 4, page_bytes=1024),
        dtlb=TLBConfig(32, 4, page_bytes=1024),
        tlb_miss_latency=30,
        branch=BranchConfig(
            table_entries=512,
            history_bits=9,
            btb_entries=256,
            mispredict_penalty=7,
            predictions_per_cycle=1,
        ),
    )


def scaled_16way() -> MachineConfig:
    """16-way aggressive machine scaled like :func:`scaled_8way`."""
    base = table3_16way()
    return replace(
        base,
        name="16-way-scaled",
        l1i=CacheConfig(8 * 1024, 2, block_bytes=32, ports=4, mshr_entries=16),
        l1d=CacheConfig(8 * 1024, 2, block_bytes=32, ports=4, mshr_entries=16),
        l2=CacheConfig(64 * 1024, 8, block_bytes=64),
        itlb=TLBConfig(16, 4, page_bytes=1024),
        dtlb=TLBConfig(32, 4, page_bytes=1024),
        tlb_miss_latency=30,
        branch=BranchConfig(
            table_entries=2048,
            history_bits=11,
            btb_entries=512,
            mispredict_penalty=10,
            predictions_per_cycle=2,
        ),
    )


#: Registry of named configurations for the experiment harness.
CONFIGURATIONS = {
    "8-way": table3_8way,
    "16-way": table3_16way,
    "8-way-scaled": scaled_8way,
    "16-way-scaled": scaled_16way,
}


def get_config(name: str) -> MachineConfig:
    """Look up a configuration by name."""
    try:
        factory = CONFIGURATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown machine configuration {name!r}; "
            f"available: {sorted(CONFIGURATIONS)}"
        ) from None
    return factory()
