"""The SMARTS sampling simulation engine (Section 3 of the paper).

The engine orchestrates one sampling simulation run: it alternates
between fast-forwarding (functional simulation, optionally with
functional warming) and detailed simulation (W instructions of detailed
warming followed by a measured sampling unit of U instructions), exactly
as Figure 1 of the paper illustrates:

    |---- functional simulation of U(k-1) - W instructions ----|
    |-- detailed warming, W instructions (not measured) --|
    |-- detailed simulation + measurement of U instructions --|
    ... repeated for the n sampling units of the systematic sample ...

The engine is metric-agnostic at measurement time: every unit's cycle
count and energy are recorded, and CPI / EPI estimates (with their
coefficients of variation and confidence intervals) are derived by
:class:`~repro.core.estimates.SmartsRunResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.config.machines import MachineConfig
from repro.core.estimates import SmartsRunResult, UnitRecord
from repro.core.sampling import SamplingPlan
from repro.detailed.pipeline import DetailedSimulator
from repro.detailed.state import MicroarchState
from repro.energy.wattch import EnergyModel
from repro.functional.engine import create_core
from repro.functional.warming import FunctionalWarmer
from repro.isa.program import Program


@dataclass
class SmartsEngine:
    """Runs SMARTS sampling simulations on one machine configuration.

    ``checkpoints`` (a :class:`repro.checkpoint.CheckpointSet`, here or
    per-``run``) lets the engine *restore* pre-warmed state at each
    sampling unit instead of fast-forwarding from wherever the previous
    unit ended.  Because functional warming and detailed simulation
    maintain long-history state identically, restored runs are
    bit-identical to serial ones in every per-unit measurement; only the
    fast-forward bookkeeping differs.
    """

    machine: MachineConfig
    measure_energy: bool = True
    checkpoints: object | None = None

    def run(
        self,
        program: Program,
        plan: SamplingPlan,
        benchmark_length: int,
        cold_start: bool = True,
        checkpoints=None,
    ) -> SmartsRunResult:
        """Execute one SMARTS sampling run.

        Args:
            program: The benchmark program.
            plan: Any :class:`~repro.core.sampling.SamplingPlan`
                (systematic U/k/j, random, or stratified) plus its
                warming parameters.
            benchmark_length: Dynamic instruction count of the benchmark
                (the population is ``benchmark_length // U`` units).
            cold_start: When True (default) the run begins with cold
                microarchitectural state, as a fresh simulator invocation
                would.
            checkpoints: Optional checkpoint set overriding the engine's
                own.  Used only for cold-start runs with functional
                warming (snapshots capture the cold-start warming
                trajectory, which other modes do not follow).

        Returns:
            A :class:`SmartsRunResult` with per-unit measurements and
            bookkeeping of how much work each simulation mode performed.
        """
        core = create_core(program)
        microarch = MicroarchState(self.machine)
        if cold_start:
            microarch.flush()
        detailed = DetailedSimulator(self.machine, microarch)
        warmer = FunctionalWarmer(microarch) if plan.functional_warming else None
        energy_model = EnergyModel(self.machine) if self.measure_energy else None

        if checkpoints is None:
            checkpoints = self.checkpoints
        if checkpoints is not None and (warmer is None or not cold_start):
            checkpoints = None
        if checkpoints is not None and not checkpoints.matches(program, self.machine):
            raise ValueError(
                "checkpoint set was built for a different program or "
                "machine warm geometry; rebuild it (or run without "
                "checkpoints)")

        result = SmartsRunResult(
            benchmark=program.name,
            machine=self.machine.name,
            unit_size=plan.unit_size,
            # Non-systematic plans have no fixed interval/offset; record
            # the degenerate values so results stay uniform downstream.
            interval=getattr(plan, "interval", 0),
            offset=getattr(plan, "offset", 0),
            detailed_warming=plan.detailed_warming,
            functional_warming=plan.functional_warming,
            benchmark_length=benchmark_length,
        )

        warming = plan.detailed_warming
        pipeline_stale = True
        for unit in plan.units(benchmark_length):
            position = core.instructions_retired
            if position >= benchmark_length or core.halted:
                break

            # Fast-forward up to the start of the detailed-warming window,
            # first jumping over as much of the gap as a checkpoint covers.
            warm_start = max(unit.start - warming, position)
            if checkpoints is not None:
                index = checkpoints.restore_point(warm_start)
                if index is not None and checkpoints.position(index) > position:
                    skipped = checkpoints.restore_into(index, core, microarch)
                    result.instructions_restored += skipped
                    result.checkpoint_restores += 1
                    pipeline_stale = True
                    position = core.instructions_retired
            fast_forward = warm_start - position
            if fast_forward > 0:
                t0 = time.perf_counter()
                if warmer is not None:
                    executed = core.run_warmed(fast_forward, warmer)
                else:
                    executed = core.run(fast_forward)
                result.seconds_fastforward += time.perf_counter() - t0
                result.instructions_fastforwarded += executed
                pipeline_stale = True
                if executed < fast_forward:
                    break  # program ended during fast-forward

            # Detailed warming (measurements discarded).  The pipeline's
            # short-history state is only reset when functional
            # fast-forwarding actually skipped instructions; back-to-back
            # units (k == 1, the full-detailed degenerate case) keep the
            # pipeline primed, as a real continuous detailed run would.
            if pipeline_stale:
                detailed.begin_period()
                pipeline_stale = False
            warm_count = unit.start - core.instructions_retired
            if warm_count > 0:
                t0 = time.perf_counter()
                warm_counters = detailed.run(core, warm_count)
                result.seconds_detailed += time.perf_counter() - t0
                result.instructions_detailed_warming += warm_counters.instructions
                if warm_counters.instructions < warm_count:
                    break

            # Measured sampling unit.
            t0 = time.perf_counter()
            counters = detailed.run(core, unit.size)
            result.seconds_detailed += time.perf_counter() - t0
            if counters.instructions == 0:
                break
            result.instructions_measured += counters.instructions
            energy = energy_model.total_energy(counters) if energy_model else 0.0
            result.units.append(
                UnitRecord(
                    index=unit.index,
                    instructions=counters.instructions,
                    cycles=counters.cycles,
                    energy=energy,
                )
            )
            if core.halted:
                break

        return result


def run_smarts(
    program: Program,
    machine: MachineConfig,
    plan: SamplingPlan,
    benchmark_length: int,
    measure_energy: bool = True,
    checkpoints=None,
) -> SmartsRunResult:
    """Convenience wrapper: run one SMARTS sampling simulation."""
    engine = SmartsEngine(machine=machine, measure_energy=measure_energy)
    return engine.run(program, plan, benchmark_length, checkpoints=checkpoints)
