"""The SMARTS sampling simulation engine (Section 3 of the paper).

The engine orchestrates one sampling simulation run: it alternates
between fast-forwarding (functional simulation, optionally with
functional warming) and detailed simulation (W instructions of detailed
warming followed by a measured sampling unit of U instructions), exactly
as Figure 1 of the paper illustrates:

    |---- functional simulation of U(k-1) - W instructions ----|
    |-- detailed warming, W instructions (not measured) --|
    |-- detailed simulation + measurement of U instructions --|
    ... repeated for the n sampling units of the systematic sample ...

The measurement loop lives in :class:`MeasurementSession`, which is
*resumable*: a run can be extended with more sampling units after
inspecting the estimate so far (the adaptive run-to-target-CI strategy
drives this).  :meth:`SmartsEngine.run` is the one-shot wrapper — one
session, one batch.

The engine is metric-agnostic at measurement time: every unit's cycle
count and energy are recorded, and CPI / EPI estimates (with their
coefficients of variation and confidence intervals) are derived by
:class:`~repro.core.estimates.SmartsRunResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

from repro.config.machines import MachineConfig
from repro.core.estimates import SmartsRunResult, UnitRecord
from repro.core.sampling import SamplingPlan, SamplingUnit
from repro.detailed.pipeline import DetailedSimulator
from repro.detailed.state import MicroarchState
from repro.energy.wattch import EnergyModel
from repro.functional.engine import create_core
from repro.functional.warming import FunctionalWarmer
from repro.isa.program import Program


class MeasurementSession:
    """A resumable SMARTS measurement over one program and machine.

    The session owns the live simulation state (functional core,
    microarchitectural state, detailed simulator) and accepts sampling
    units in *batches* via :meth:`extend`.  Batches may interleave with
    units measured earlier — progressive refinement adds units at
    stream positions the core has already passed — and the session
    re-enters the stream (fresh functional replay from instruction 0,
    or a checkpoint restore) whenever a batch requires it.

    The correctness contract is *golden equivalence*: after any
    sequence of ``extend`` calls, :meth:`result` is unit-for-unit
    bit-identical to a one-shot :meth:`SmartsEngine.run` over the same
    final unit set.  Two properties of the simulator make this hold:

    * long-history state (caches, TLBs, branch predictors) evolves
      identically under functional warming and detailed simulation, so
      skipping an already-measured unit functionally reproduces the
      state a one-shot run reaches by measuring it in detail;
    * short-history pipeline state is reset (``begin_period``) exactly
      when fast-forwarding skipped instructions.  Units closer together
      than W keep the pipeline primed across them in a one-shot run, so
      the session re-executes such *context chains* in detail (without
      re-recording them) before measuring a new unit inside one.

    Only the first measurement of each unit enters
    ``instructions_measured`` (so it equals what the equivalent one-shot
    run reports); context replays and re-measurements count as detailed
    warming, and re-entry replays as fast-forwarding — all the
    incremental-execution overhead stays visible in the bookkeeping,
    just not conflated with the statistical sample's size.
    """

    def __init__(
        self,
        program: Program,
        machine: MachineConfig,
        benchmark_length: int,
        unit_size: int,
        detailed_warming: int,
        functional_warming: bool = True,
        measure_energy: bool = True,
        cold_start: bool = True,
        checkpoints=None,
    ):
        if unit_size <= 0:
            raise ValueError("unit_size must be positive")
        if detailed_warming < 0:
            raise ValueError("detailed_warming must be non-negative")
        self.program = program
        self.machine = machine
        self.benchmark_length = benchmark_length
        self.unit_size = unit_size
        self.detailed_warming = detailed_warming
        self.functional_warming = functional_warming
        self.measure_energy = measure_energy
        self.cold_start = cold_start

        if checkpoints is not None and (not functional_warming or not cold_start):
            checkpoints = None
        if checkpoints is not None and not checkpoints.matches(program, machine):
            raise ValueError(
                "checkpoint set was built for a different program or "
                "machine warm geometry; rebuild it (or run without "
                "checkpoints)")
        self.checkpoints = checkpoints

        self._energy_model = EnergyModel(machine) if measure_energy else None
        #: Every unit ever handed to extend(), by index (measured or not).
        self._selected: dict[int, SamplingUnit] = {}
        #: Measurements of units that produced a record.
        self._records: dict[int, UnitRecord] = {}
        #: Stream position where the program halted, once known.
        self._halt_position: int | None = None
        self._bookkeeping = SmartsRunResult(
            benchmark=program.name,
            machine=machine.name,
            unit_size=unit_size,
            interval=0,
            offset=0,
            detailed_warming=detailed_warming,
            functional_warming=functional_warming,
            benchmark_length=benchmark_length,
        )
        self._enter_stream()

    # ------------------------------------------------------------------
    # Stream entry / re-entry
    # ------------------------------------------------------------------
    def _enter_stream(self) -> None:
        """(Re)start the simulated stream from instruction 0.

        Functional warming is deterministic, so a fresh core replayed
        from the start reproduces the cold-start warming trajectory a
        one-shot run follows — which is also the trajectory checkpoint
        snapshots capture.
        """
        self._core = create_core(self.program)
        self._microarch = MicroarchState(self.machine)
        if self.cold_start:
            self._microarch.flush()
        self._detailed = DetailedSimulator(self.machine, self._microarch)
        self._warmer = (FunctionalWarmer(self._microarch)
                        if self.functional_warming else None)
        self._pipeline_stale = True

    @property
    def position(self) -> int:
        """Current stream position (instructions retired)."""
        return self._core.instructions_retired

    @property
    def measured_indices(self) -> frozenset[int]:
        """Indices of units that have produced a measurement."""
        return frozenset(self._records)

    @property
    def population_size(self) -> int:
        return self.benchmark_length // self.unit_size

    # ------------------------------------------------------------------
    # Batch measurement
    # ------------------------------------------------------------------
    def extend(self, units: Iterable[SamplingUnit]) -> int:
        """Measure the given units (skipping any already measured).

        Units may lie anywhere in the stream; the session replays or
        restores as needed so every measurement is bit-identical to the
        one a one-shot run over the whole cumulative unit set would
        record.  Returns the number of units newly measured.
        """
        population = self.population_size
        new_indices: set[int] = set()
        for unit in units:
            if unit.index >= population or unit.index in self._selected:
                continue
            if unit.size != self.unit_size or unit.start != unit.index * self.unit_size:
                raise ValueError(
                    f"unit {unit.index} does not match the session geometry "
                    f"(U={self.unit_size})")
            self._selected[unit.index] = unit
            new_indices.add(unit.index)
        if not new_indices:
            return 0

        dirty, needed = self._plan_pass(new_indices)
        to_execute = sorted(needed)

        # Re-enter the stream if the core is already past the first
        # unit's entry point (its chain head's warming start).
        first = self._selected[to_execute[0]]
        entry = max(first.start - self.detailed_warming, 0)
        if self.position > entry:
            self._enter_stream()

        measured = 0
        for index in to_execute:
            unit = self._selected[index]
            if (self._halt_position is not None
                    and unit.start >= self._halt_position):
                break  # the stream ends before this unit begins
            record = self._run_unit(unit, record=index in dirty,
                                    fresh=index in new_indices)
            if record is not None:
                self._records[index] = record
                if index in new_indices:
                    measured += 1
            if self._core.halted:
                self._note_halt()
                break
        return measured

    def _plan_pass(self, new_indices: set[int]) -> tuple[set[int], set[int]]:
        """Decide which cumulative units this pass must run in detail.

        Two linear scans over the cumulative (sorted) unit set, with
        *linked* meaning consecutive units closer than W — the exact
        condition under which a one-shot run does not reset the pipeline
        between them:

        * ``dirty`` (ascending scan): units whose measurement this pass
          must (re)record.  New units are dirty, and dirtiness
          propagates up through links — inserting a unit within W of an
          already-measured successor changes that successor's warming
          gap and pipeline priming, so its stored record no longer
          matches the merged one-shot run and must be re-measured.
        * ``needed`` (descending scan): dirty units plus the clean
          context units below them in a linked chain, which are
          re-executed (without re-recording) purely to reconstruct the
          pipeline state the merged one-shot run would carry in.
        """
        warming = self.detailed_warming
        ordered = [self._selected[i] for i in sorted(self._selected)]

        dirty: set[int] = set()
        prev = None
        for unit in ordered:
            if unit.index in new_indices or (
                    prev is not None and prev.index in dirty
                    and prev.end >= unit.start - warming):
                dirty.add(unit.index)
            prev = unit

        needed: set[int] = set()
        succ = None
        for unit in reversed(ordered):
            if unit.index in dirty or (
                    succ is not None and succ.index in needed
                    and unit.end >= succ.start - warming):
                needed.add(unit.index)
            succ = unit
        return dirty, needed

    def _run_unit(self, unit: SamplingUnit, record: bool,
                  fresh: bool = True) -> UnitRecord | None:
        """Fast-forward to, warm, and run one unit in detail.

        This is the per-unit body of the classic SMARTS loop.  With
        ``record=False`` the unit is executed purely to reconstruct
        pipeline context (its measurement already exists); with
        ``record=True, fresh=False`` it is re-measured because a new
        neighbour changed its context.  Only fresh measurements charge
        ``instructions_measured`` — everything else is warming work.
        """
        core, result = self._core, self._bookkeeping
        position = core.instructions_retired
        if position >= self.benchmark_length or core.halted:
            self._note_halt()
            return None

        # Fast-forward up to the start of the detailed-warming window,
        # first jumping over as much of the gap as a checkpoint covers.
        warm_start = max(unit.start - self.detailed_warming, position)
        if self.checkpoints is not None:
            index = self.checkpoints.restore_point(warm_start)
            if index is not None and self.checkpoints.position(index) > position:
                skipped = self.checkpoints.restore_into(
                    index, core, self._microarch)
                result.instructions_restored += skipped
                result.checkpoint_restores += 1
                self._pipeline_stale = True
                position = core.instructions_retired
        fast_forward = warm_start - position
        if fast_forward > 0:
            t0 = time.perf_counter()
            if self._warmer is not None:
                executed = core.run_warmed(fast_forward, self._warmer)
            else:
                executed = core.run(fast_forward)
            result.seconds_fastforward += time.perf_counter() - t0
            result.instructions_fastforwarded += executed
            self._pipeline_stale = True
            if executed < fast_forward:
                self._note_halt()  # program ended during fast-forward
                return None

        # Detailed warming (measurements discarded).  The pipeline's
        # short-history state is only reset when functional
        # fast-forwarding actually skipped instructions; back-to-back
        # units (k == 1, the full-detailed degenerate case) keep the
        # pipeline primed, as a real continuous detailed run would.
        if self._pipeline_stale:
            self._detailed.begin_period()
            self._pipeline_stale = False
        warm_count = unit.start - core.instructions_retired
        if warm_count > 0:
            t0 = time.perf_counter()
            warm_counters = self._detailed.run(core, warm_count)
            result.seconds_detailed += time.perf_counter() - t0
            result.instructions_detailed_warming += warm_counters.instructions
            if warm_counters.instructions < warm_count:
                self._note_halt()
                return None

        # The sampling unit itself (measured unless it is context replay).
        t0 = time.perf_counter()
        counters = self._detailed.run(core, unit.size)
        result.seconds_detailed += time.perf_counter() - t0
        if core.halted:
            self._note_halt()
        if counters.instructions == 0:
            return None
        if not record:
            result.instructions_detailed_warming += counters.instructions
            return None
        if fresh:
            result.instructions_measured += counters.instructions
        else:
            result.instructions_detailed_warming += counters.instructions
        energy = (self._energy_model.total_energy(counters)
                  if self._energy_model else 0.0)
        return UnitRecord(
            index=unit.index,
            instructions=counters.instructions,
            cycles=counters.cycles,
            energy=energy,
            truncated=counters.instructions < unit.size,
        )

    def _note_halt(self) -> None:
        if self._core.halted and self._halt_position is None:
            self._halt_position = self._core.instructions_retired

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self, interval: int = 0, offset: int = 0) -> SmartsRunResult:
        """The cumulative run result over every unit measured so far.

        ``interval``/``offset`` annotate the systematic design when the
        caller has one (non-systematic unit sets record the degenerate
        zeros, as stratified plans do).
        """
        book = self._bookkeeping
        return SmartsRunResult(
            benchmark=book.benchmark,
            machine=book.machine,
            unit_size=book.unit_size,
            interval=interval,
            offset=offset,
            detailed_warming=book.detailed_warming,
            functional_warming=book.functional_warming,
            units=[self._records[i] for i in sorted(self._records)],
            benchmark_length=book.benchmark_length,
            instructions_measured=book.instructions_measured,
            instructions_detailed_warming=book.instructions_detailed_warming,
            instructions_fastforwarded=book.instructions_fastforwarded,
            instructions_restored=book.instructions_restored,
            checkpoint_restores=book.checkpoint_restores,
            seconds_detailed=book.seconds_detailed,
            seconds_fastforward=book.seconds_fastforward,
        )


@dataclass
class SmartsEngine:
    """Runs SMARTS sampling simulations on one machine configuration.

    ``checkpoints`` (a :class:`repro.checkpoint.CheckpointSet`, here or
    per-``run``) lets the engine *restore* pre-warmed state at each
    sampling unit instead of fast-forwarding from wherever the previous
    unit ended.  Because functional warming and detailed simulation
    maintain long-history state identically, restored runs are
    bit-identical to serial ones in every per-unit measurement; only the
    fast-forward bookkeeping differs.
    """

    machine: MachineConfig
    measure_energy: bool = True
    checkpoints: object | None = None

    def start(
        self,
        program: Program,
        benchmark_length: int,
        unit_size: int,
        detailed_warming: int,
        functional_warming: bool = True,
        cold_start: bool = True,
        checkpoints=None,
    ) -> MeasurementSession:
        """Open a resumable measurement session (see MeasurementSession).

        ``checkpoints`` overrides the engine's own set; either is used
        only for cold-start runs with functional warming (snapshots
        capture the cold-start warming trajectory, which other modes do
        not follow).
        """
        if checkpoints is None:
            checkpoints = self.checkpoints
        return MeasurementSession(
            program=program,
            machine=self.machine,
            benchmark_length=benchmark_length,
            unit_size=unit_size,
            detailed_warming=detailed_warming,
            functional_warming=functional_warming,
            measure_energy=self.measure_energy,
            cold_start=cold_start,
            checkpoints=checkpoints,
        )

    def run(
        self,
        program: Program,
        plan: SamplingPlan,
        benchmark_length: int,
        cold_start: bool = True,
        checkpoints=None,
    ) -> SmartsRunResult:
        """Execute one SMARTS sampling run (a single-batch session).

        Args:
            program: The benchmark program.
            plan: Any :class:`~repro.core.sampling.SamplingPlan`
                (systematic U/k/j, random, or stratified) plus its
                warming parameters.
            benchmark_length: Dynamic instruction count of the benchmark
                (the population is ``benchmark_length // U`` units).
            cold_start: When True (default) the run begins with cold
                microarchitectural state, as a fresh simulator invocation
                would.
            checkpoints: Optional checkpoint set overriding the engine's
                own.  Used only for cold-start runs with functional
                warming (snapshots capture the cold-start warming
                trajectory, which other modes do not follow).

        Returns:
            A :class:`SmartsRunResult` with per-unit measurements and
            bookkeeping of how much work each simulation mode performed.
        """
        session = self.start(
            program,
            benchmark_length,
            unit_size=plan.unit_size,
            detailed_warming=plan.detailed_warming,
            functional_warming=plan.functional_warming,
            cold_start=cold_start,
            checkpoints=checkpoints,
        )
        session.extend(plan.units(benchmark_length))
        return session.result(
            # Non-systematic plans have no fixed interval/offset; record
            # the degenerate values so results stay uniform downstream.
            interval=getattr(plan, "interval", 0),
            offset=getattr(plan, "offset", 0),
        )


def run_smarts(
    program: Program,
    machine: MachineConfig,
    plan: SamplingPlan,
    benchmark_length: int,
    measure_energy: bool = True,
    checkpoints=None,
) -> SmartsRunResult:
    """Convenience wrapper: run one SMARTS sampling simulation."""
    engine = SmartsEngine(machine=machine, measure_energy=measure_energy)
    return engine.run(program, plan, benchmark_length, checkpoints=checkpoints)
