"""The user-facing SMARTS measurement procedure (Section 5.1).

One iteration of a SMARTS measurement requires three parameters — W, U,
and k — and the paper prescribes how to pick them:

1. W is chosen to exceed the history of the microarchitectural state that
   is *not* functionally warmed (Section 4.4 derives a worst-case bound
   from the store buffer depth, memory latency, and peak IPC).
2. U is fixed to a small value (1000 instructions at SPEC scale); the
   optimal U analysis of Section 4.2 shows little is lost by not tuning
   it per benchmark.
3. k (equivalently n) is found in at most two steps: run once with a
   generic ``n_init``; if the achieved confidence interval is too wide,
   compute ``n_tuned = (z·V̂/ε)²`` from the measured coefficient of
   variation and run again.

:func:`estimate_metric` implements the full loop and records every run,
so callers (and the Figure 6/7 benchmarks) can inspect both the initial
and tuned samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.config.machines import MachineConfig
from repro.core.estimates import MetricEstimate, SmartsRunResult
from repro.core.sampling import SystematicSamplingPlan
from repro.core.smarts import run_smarts
from repro.core.stats import CONFIDENCE_997, DEFAULT_EPSILON, required_sample_size
from repro.functional.simulator import measure_program_length
from repro.isa.program import Program

#: Default sampling-unit size, expressed as a fraction of the paper's
#: canonical U = 1000 (our synthetic benchmarks are ~1000x shorter than
#: SPEC2K reference runs, so all instruction-count parameters scale down;
#: see DESIGN.md "Substitutions").
DEFAULT_UNIT_SIZE = 50

#: Default initial sample size (the paper uses n_init = 10,000 at SPEC
#: scale; 1,000 preserves the "small initial sample, tune if needed"
#: structure at our population sizes).
DEFAULT_N_INIT = 1000

#: Factor by which the tuned sample size is overestimated, following the
#: paper's advice to "slightly overestimate n for the subsequent run".
TUNING_MARGIN = 1.1


def analytic_warming_bound(config: MachineConfig) -> int:
    """Worst-case detailed-warming bound of Section 4.4.

    "A worst-case bound on W is the product of store-buffer depth, memory
    latency in cycles, and the maximum IPC."  For the paper's 8-way
    machine this is 16 * 100 * 8 = 12,800 instructions.
    """
    return config.store_buffer_entries * config.mem_latency * config.commit_width


def recommended_warming(config: MachineConfig) -> int:
    """Practical detailed-warming length when functional warming is on.

    The paper uses W = 2000 (8-way) and W = 4000 (16-way), far below the
    analytic worst case, because the bound is never approached in
    practice.  We scale the same way: four RUUs' worth of instructions
    (512 for the scaled 8-way machine, 1024 for the 16-way machine, the
    same ~16x-RUU proportion as the paper's choice) covers pipeline fill,
    store-buffer drain, and the build-up of overlapped misses in
    memory-bound phases.  The choice is validated empirically by the
    Table 5 experiment, exactly as the paper validates its own, and it
    remains far below :func:`analytic_warming_bound`.
    """
    return 4 * config.ruu_size


@dataclass
class ProcedureResult:
    """Outcome of the (up to) two-step SMARTS estimation procedure."""

    benchmark: str
    machine: str
    metric: str
    epsilon: float
    confidence: float
    benchmark_length: int
    runs: list[SmartsRunResult] = field(default_factory=list)
    tuned_sample_sizes: list[int] = field(default_factory=list)

    @property
    def final_run(self) -> SmartsRunResult:
        if not self.runs:
            raise ValueError(
                f"procedure for {self.benchmark!r} recorded no sampling "
                "runs; final_run is undefined")
        return self.runs[-1]

    @property
    def initial_run(self) -> SmartsRunResult:
        if not self.runs:
            raise ValueError(
                f"procedure for {self.benchmark!r} recorded no sampling "
                "runs; initial_run is undefined")
        return self.runs[0]

    @property
    def estimate(self) -> MetricEstimate:
        run = self.final_run
        return run.cpi if self.metric == "cpi" else run.epi

    @property
    def confidence_interval(self) -> float:
        return self.estimate.confidence_interval(self.confidence)

    @property
    def target_met(self) -> bool:
        return self.confidence_interval <= self.epsilon

    @property
    def total_measured_instructions(self) -> int:
        return sum(run.instructions_measured for run in self.runs)

    @property
    def total_detailed_instructions(self) -> int:
        return sum(
            run.instructions_measured + run.instructions_detailed_warming
            for run in self.runs
        )

    def summary(self) -> dict[str, float]:
        estimate = self.estimate
        return {
            "benchmark": self.benchmark,
            "machine": self.machine,
            "metric": self.metric,
            "estimate": estimate.mean,
            "cv": estimate.coefficient_of_variation,
            "ci": self.confidence_interval,
            "epsilon": self.epsilon,
            "confidence": self.confidence,
            "rounds": len(self.runs),
            "n_final": self.final_run.sample_size,
            "target_met": self.target_met,
            "measured_instructions": self.total_measured_instructions,
            "benchmark_length": self.benchmark_length,
        }


def estimate_metric(
    program: Program,
    machine: MachineConfig,
    metric: str = "cpi",
    unit_size: int = DEFAULT_UNIT_SIZE,
    detailed_warming: int | None = None,
    functional_warming: bool = True,
    epsilon: float = DEFAULT_EPSILON,
    confidence: float = CONFIDENCE_997,
    n_init: int = DEFAULT_N_INIT,
    max_rounds: int = 2,
    offset: int = 0,
    benchmark_length: int | None = None,
    checkpoints=None,
) -> ProcedureResult:
    """Estimate CPI or EPI of ``program`` using the SMARTS procedure.

    Args:
        program: Benchmark program.
        machine: Machine configuration to simulate.
        metric: ``"cpi"`` or ``"epi"``.
        unit_size: Sampling unit size U.
        detailed_warming: W; defaults to :func:`recommended_warming`.
        functional_warming: Keep caches/predictors warm while
            fast-forwarding (strongly recommended; Section 4.5).
        epsilon: Target relative confidence interval (e.g. 0.03 = ±3%).
        confidence: Target confidence level (e.g. 0.997).
        n_init: Initial sample size for the first run.
        max_rounds: Maximum number of sampling runs (paper: 2 suffices).
        offset: Systematic sample phase j for the first run.
        benchmark_length: Dynamic instruction count; measured with a
            functional pass when not supplied.
        checkpoints: Optional :class:`repro.checkpoint.CheckpointSet`;
            every sampling round restores pre-warmed state at each unit
            instead of fast-forwarding (estimates are unaffected).

    Returns:
        A :class:`ProcedureResult` holding every run plus the final
        estimate and whether the confidence target was met.
    """
    if metric not in ("cpi", "epi"):
        raise ValueError("metric must be 'cpi' or 'epi'")
    if max_rounds <= 0:
        raise ValueError("max_rounds must be positive")
    if benchmark_length is None:
        if checkpoints is not None:
            # The checkpoint build pass already measured the program.
            benchmark_length = checkpoints.benchmark_length
        else:
            benchmark_length = measure_program_length(program)
    if detailed_warming is None:
        detailed_warming = recommended_warming(machine)

    result = ProcedureResult(
        benchmark=program.name,
        machine=machine.name,
        metric=metric,
        epsilon=epsilon,
        confidence=confidence,
        benchmark_length=benchmark_length,
    )

    target_n = n_init
    for _ in range(max_rounds):
        plan = SystematicSamplingPlan.for_sample_size(
            benchmark_length=benchmark_length,
            unit_size=unit_size,
            target_sample_size=target_n,
            offset=offset,
            detailed_warming=detailed_warming,
            functional_warming=functional_warming,
        )
        run = run_smarts(program, machine, plan, benchmark_length,
                         measure_energy=(metric == "epi"),
                         checkpoints=checkpoints)
        result.runs.append(run)
        estimate = run.cpi if metric == "cpi" else run.epi
        if estimate.confidence_interval(confidence) <= epsilon:
            break

        population = run.population_size
        n_tuned = required_sample_size(
            estimate.coefficient_of_variation, epsilon, confidence,
            population_size=population)
        n_tuned = min(population, math.ceil(n_tuned * TUNING_MARGIN))
        result.tuned_sample_sizes.append(n_tuned)
        if n_tuned <= run.sample_size:
            # The sample already contains as many units as the tuned size
            # asks for; re-running cannot tighten the interval further.
            break
        target_n = n_tuned

    return result
