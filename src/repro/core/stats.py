"""Inferential statistics for simulation sampling (Section 2 of the paper).

Implements the sampling mathematics SMARTS relies on:

* sample mean, standard deviation and coefficient of variation,
* confidence intervals for a mean estimate at a given confidence level,
* the minimum sample size ``n >= (z * V / epsilon)^2`` needed to reach a
  target confidence interval (with an optional finite-population
  correction, which matters at the reduced benchmark scales used in this
  reproduction — see DESIGN.md),
* bias of systematic samples over the k possible sample phases, and
* the intraclass correlation coefficient used to check that systematic
  sampling behaves like random sampling (population homogeneity).

The module is deliberately dependency-light: ``statistics.NormalDist``
supplies the normal quantiles, and plain Python/​numpy handles the rest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Sequence

import numpy as np

#: Confidence levels commonly used in the paper, with their z values.
#: (The paper quotes z = 1.97 for 95% and z = 3 for 99.7%.)
CONFIDENCE_997 = 0.997
CONFIDENCE_95 = 0.95

#: Default target relative confidence-interval half-width used by every
#: layer of the stack (RunSpec, Session, the sampling strategies, and
#: the bare estimate_metric procedure).  The paper's headline target is
#: ±3%; at the reduced benchmark scales of this reproduction the unit
#: populations are small enough that ±7.5% is the honest default — see
#: DESIGN.md "Substitutions".
DEFAULT_EPSILON = 0.075


def finite_population_factor(n: int, population_size: int | None) -> float:
    """The finite-population correction factor ``sqrt(1 - n/N)``.

    Shrinks a sample standard error to account for sampling a
    non-negligible fraction of a finite population; consistent with the
    ``n = n0 / (1 + n0/N)`` correction of :func:`required_sample_size`
    (solving ``epsilon = z·V/√n · sqrt(1 - n/N)`` for n yields exactly
    that expression).  Returns 1.0 when no population size is given, and
    0.0 for a census (``n >= N`` — the estimate is exact).
    """
    if population_size is None:
        return 1.0
    if population_size <= 0:
        raise ValueError("population_size must be positive")
    if n < 0:
        raise ValueError("sample size must be non-negative")
    return math.sqrt(max(0.0, 1.0 - n / population_size))


def z_score(confidence: float) -> float:
    """Two-sided standard-normal quantile for a confidence level.

    ``z_score(0.95)`` ≈ 1.96 and ``z_score(0.997)`` ≈ 2.97 (the paper
    rounds these to 1.97 and 3).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


@dataclass(frozen=True)
class SampleStatistics:
    """Summary statistics of one sample of measurements."""

    n: int
    mean: float
    std: float

    @property
    def coefficient_of_variation(self) -> float:
        """Standard deviation normalized by the mean (V̂ₓ in the paper)."""
        if self.mean == 0.0:
            return 0.0
        return self.std / abs(self.mean)

    def confidence_interval(self, confidence: float = CONFIDENCE_997) -> float:
        """Relative half-width of the confidence interval (±fraction of the mean).

        The paper's expression ``±(z·V̂ₓ/√n)·x̄`` expressed as a fraction
        of the mean, i.e. ``z·V̂ₓ/√n``.
        """
        if self.n <= 1:
            return math.inf
        return z_score(confidence) * self.coefficient_of_variation / math.sqrt(self.n)

    def absolute_confidence_interval(self, confidence: float = CONFIDENCE_997) -> float:
        """Half-width of the confidence interval in the metric's own units."""
        return self.confidence_interval(confidence) * abs(self.mean)


def sample_statistics(values: Sequence[float]) -> SampleStatistics:
    """Compute :class:`SampleStatistics` for a sequence of measurements."""
    arr = np.asarray(values, dtype=float)
    n = int(arr.size)
    if n == 0:
        raise ValueError("cannot compute statistics of an empty sample")
    mean = float(arr.mean())
    # Sample (n-1) standard deviation, as used for V̂ₓ.
    std = float(arr.std(ddof=1)) if n > 1 else 0.0
    return SampleStatistics(n=n, mean=mean, std=std)


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Convenience wrapper returning only V̂ₓ of ``values``."""
    return sample_statistics(values).coefficient_of_variation


def required_sample_size(
    cv: float,
    epsilon: float,
    confidence: float = CONFIDENCE_997,
    population_size: int | None = None,
) -> int:
    """Minimum sample size for a target confidence interval.

    Implements ``n >= (z·V/ε)²`` (the paper's tuning equation).  When
    ``population_size`` is given, the finite population correction
    ``n = n₀ / (1 + n₀/N)`` is applied; the paper omits it because its
    populations (billions of instructions) dwarf any sample, but at the
    reduced scales of this reproduction it is both honest and necessary.

    Args:
        cv: Coefficient of variation of the population (or an estimate).
        epsilon: Target relative half-width of the confidence interval
            (e.g. 0.03 for ±3%).
        confidence: Target confidence level (e.g. 0.997).
        population_size: Optional population size N for the correction.

    Returns:
        The smallest integer sample size meeting the target (at least 1).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if cv < 0:
        raise ValueError("coefficient of variation must be non-negative")
    z = z_score(confidence)
    n0 = (z * cv / epsilon) ** 2
    if population_size is not None:
        if population_size <= 0:
            raise ValueError("population_size must be positive")
        n0 = n0 / (1.0 + n0 / population_size)
        n0 = min(n0, population_size)
    return max(1, math.ceil(n0))


def achieved_confidence_interval(
    cv: float, n: int, confidence: float = CONFIDENCE_997,
    population_size: int | None = None,
) -> float:
    """Relative confidence interval achieved by a sample of size ``n``.

    ``population_size`` applies the finite-population correction
    (:func:`finite_population_factor`); omitted, the interval is the
    paper's uncorrected ``z·V/√n``.
    """
    if n <= 0:
        raise ValueError("sample size must be positive")
    return (z_score(confidence) * cv / math.sqrt(n)
            * finite_population_factor(n, population_size))


def achieved_confidence_level(cv: float, n: int, epsilon: float) -> float:
    """Confidence level at which a sample of size ``n`` meets ``±epsilon``.

    The dual of :func:`achieved_confidence_interval`: solve
    ``epsilon = z·V/√n`` for the confidence level.
    """
    if cv == 0:
        return 1.0
    z = epsilon * math.sqrt(n) / cv
    return max(0.0, 2.0 * NormalDist().cdf(z) - 1.0)


# ----------------------------------------------------------------------
# Systematic sampling diagnostics
# ----------------------------------------------------------------------
def systematic_sample_means(population: Sequence[float], interval: int,
                            offset_stride: int = 1) -> np.ndarray:
    """Means of the systematic samples of ``population`` at ``interval``.

    There are exactly ``interval`` possible systematic samples (one per
    starting offset j); this returns their means, optionally subsampling
    offsets by ``offset_stride`` to bound cost.
    """
    arr = np.asarray(population, dtype=float)
    if interval <= 0:
        raise ValueError("interval must be positive")
    if arr.size == 0:
        raise ValueError("population must not be empty")
    means = []
    for j in range(0, min(interval, arr.size), offset_stride):
        means.append(float(arr[j::interval].mean()))
    return np.asarray(means)


def sampling_bias(population: Sequence[float], interval: int,
                  offsets: Sequence[int] | None = None) -> float:
    """Bias of the systematic-sample mean estimator (Section 2).

    ``B(x̄) = (Σ_j x̄_j) / k − X̄`` — the average over sample phases of the
    difference between the sample mean and the true population mean.  For
    an unbiased measurement process this is zero by construction; the
    SMARTS experiments use the analogous quantity over *measured* (and
    therefore possibly state-biased) unit values.
    """
    arr = np.asarray(population, dtype=float)
    true_mean = float(arr.mean())
    if offsets is None:
        means = systematic_sample_means(arr, interval)
    else:
        means = np.asarray([float(arr[j::interval].mean()) for j in offsets])
    return float(means.mean() - true_mean)


def intraclass_correlation(population: Sequence[float], interval: int,
                           offset_stride: int = 1) -> float:
    """Intraclass correlation coefficient δ for systematic sampling.

    Measures population homogeneity at the sampling periodicity: the
    variance of systematic-sample means relates to the simple-random-
    sampling variance by ``Var_sys = Var_srs · [1 + (n−1)·δ]``.  A δ near
    zero means systematic sampling is as good as random sampling (the
    paper verifies |δ| on the order of 1e-6 for SPEC2K).
    """
    arr = np.asarray(population, dtype=float)
    if arr.size < 2 * interval:
        raise ValueError("population too small for the requested interval")
    n_per_sample = arr.size // interval
    variance = float(arr.var(ddof=0))
    if variance == 0.0:
        return 0.0
    means = systematic_sample_means(arr, interval, offset_stride)
    var_sys = float(np.asarray(means).var(ddof=0))
    var_srs = variance / n_per_sample
    if n_per_sample <= 1:
        return 0.0
    delta = (var_sys / var_srs - 1.0) / (n_per_sample - 1)
    return float(delta)


def relative_error(estimate: float, reference: float) -> float:
    """Signed relative error of ``estimate`` with respect to ``reference``."""
    if reference == 0:
        raise ValueError("reference value must be non-zero")
    return (estimate - reference) / reference
