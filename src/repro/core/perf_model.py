"""Analytical simulation-speed model (Section 3.4 and Table 6).

The paper models the SMARTS simulation rate as a weighted combination of
the functional-simulation rate S_F (normalized to 1.0), the detailed-
simulation rate S_D (expressed relative to S_F, e.g. 1/60), and — when
functional warming is used — the functional-warming rate S_FW (~0.55 of
S_F in SMARTSim).  The model drives:

* Figure 4 — modeled SMARTS simulation rate as a function of W,
* Table 6 — projected runtimes of functional, detailed and SMARTS
  simulation, and
* the headline speedup numbers (35x / 60x over full detailed simulation).

Two flavours of the combination are provided: the paper's own expression
(an instruction-weighted average of rates) and the exact time-based
harmonic combination.  The former reproduces the paper's figures; the
latter is what we use when projecting actual runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paper-quoted relative detailed-simulation rates (Section 3.4).
PAPER_SD_TODAY = 1.0 / 60.0      #: today's fastest detailed simulators
PAPER_SD_FUTURE = 1.0 / 600.0    #: projected future detailed simulators
#: Paper-quoted functional-warming rate relative to functional simulation.
PAPER_SFW = 0.55
#: Nominal functional simulation speed on the paper's 2 GHz Pentium 4,
#: used to convert normalized rates into wall-clock time (Section 1:
#: detailed simulation at ~0.5 MIPS with S_D = 1/60 implies S_F ~ 30 MIPS;
#: Table 6's functional runtimes correspond to ~10 MIPS including I/O).
PAPER_SF_MIPS = 10.0


@dataclass(frozen=True)
class SimulatorRates:
    """Measured or assumed simulation rates, normalized to S_F = 1.

    Attributes:
        functional_ips: Absolute functional-simulation rate
            (instructions per second) used to convert to wall-clock time.
        s_detailed: Detailed-simulation rate relative to functional.
        s_warming: Functional-warming rate relative to functional.
    """

    functional_ips: float
    s_detailed: float
    s_warming: float

    def __post_init__(self) -> None:
        if self.functional_ips <= 0:
            raise ValueError("functional_ips must be positive")
        if not 0 < self.s_detailed <= 1:
            raise ValueError("s_detailed must be in (0, 1]")
        if not 0 < self.s_warming <= 1:
            raise ValueError("s_warming must be in (0, 1]")

    @classmethod
    def paper(cls, s_detailed: float = PAPER_SD_TODAY) -> "SimulatorRates":
        """The rates the paper assumes for its Figure 4 / Table 6 model."""
        return cls(functional_ips=PAPER_SF_MIPS * 1e6,
                   s_detailed=s_detailed, s_warming=PAPER_SFW)


@dataclass(frozen=True)
class SamplingWorkload:
    """Instruction-count breakdown of one sampling simulation run."""

    benchmark_length: int   #: total dynamic instructions (the stream)
    sample_size: int        #: n, number of measured sampling units
    unit_size: int          #: U
    detailed_warming: int   #: W

    @property
    def detailed_instructions(self) -> int:
        """Instructions simulated in detail: n * (U + W)."""
        return self.sample_size * (self.unit_size + self.detailed_warming)

    @property
    def fastforward_instructions(self) -> int:
        return max(0, self.benchmark_length - self.detailed_instructions)

    @property
    def detailed_fraction(self) -> float:
        if self.benchmark_length == 0:
            return 0.0
        return min(1.0, self.detailed_instructions / self.benchmark_length)


def paper_rate(workload: SamplingWorkload, rates: SimulatorRates,
               functional_warming: bool = False) -> float:
    """The paper's simulation-rate expression (normalized to S_F = 1).

    ``S = S_ff · [N − n(U+W)]/N + S_D · [n(U+W)]/N`` where the
    fast-forward rate ``S_ff`` is S_F without functional warming and
    S_FW with it (Section 3.4).
    """
    fraction = workload.detailed_fraction
    s_ff = rates.s_warming if functional_warming else 1.0
    return s_ff * (1.0 - fraction) + rates.s_detailed * fraction


def effective_rate(workload: SamplingWorkload, rates: SimulatorRates,
                   functional_warming: bool = False) -> float:
    """Time-exact (harmonic) simulation rate, normalized to S_F = 1."""
    seconds = runtime_seconds(workload, rates, functional_warming)
    if seconds == 0.0:
        return 1.0
    functional_equivalent = workload.benchmark_length / rates.functional_ips
    return functional_equivalent / seconds


def runtime_seconds(workload: SamplingWorkload, rates: SimulatorRates,
                    functional_warming: bool = False) -> float:
    """Projected wall-clock runtime of one SMARTS run."""
    s_ff = rates.s_warming if functional_warming else 1.0
    ff_rate = rates.functional_ips * s_ff
    detailed_rate = rates.functional_ips * rates.s_detailed
    return (workload.fastforward_instructions / ff_rate
            + workload.detailed_instructions / detailed_rate)


def detailed_runtime_seconds(benchmark_length: int, rates: SimulatorRates) -> float:
    """Projected runtime of full-stream detailed simulation."""
    return benchmark_length / (rates.functional_ips * rates.s_detailed)


def functional_runtime_seconds(benchmark_length: int, rates: SimulatorRates) -> float:
    """Projected runtime of full-stream functional simulation."""
    return benchmark_length / rates.functional_ips


def speedup_over_detailed(workload: SamplingWorkload, rates: SimulatorRates,
                          functional_warming: bool = True) -> float:
    """Speedup of SMARTS relative to full-stream detailed simulation."""
    smarts = runtime_seconds(workload, rates, functional_warming)
    if smarts == 0.0:
        return float("inf")
    return detailed_runtime_seconds(workload.benchmark_length, rates) / smarts


def effective_mips(workload: SamplingWorkload, rates: SimulatorRates,
                   functional_warming: bool = True) -> float:
    """Effective simulation speed in MIPS (benchmark instructions per
    wall-clock second, divided by 1e6) — the paper's headline "over 9
    MIPS" metric."""
    seconds = runtime_seconds(workload, rates, functional_warming)
    if seconds == 0.0:
        return float("inf")
    return workload.benchmark_length / seconds / 1e6


def rate_versus_warming(
    benchmark_length: int,
    sample_size: int,
    unit_size: int,
    warming_values: list[int],
    rates: SimulatorRates,
    functional_warming: bool = False,
) -> list[tuple[int, float]]:
    """Sweep W and return ``(W, normalized rate)`` pairs (Figure 4)."""
    points = []
    for warming in warming_values:
        workload = SamplingWorkload(
            benchmark_length=benchmark_length,
            sample_size=sample_size,
            unit_size=unit_size,
            detailed_warming=warming,
        )
        points.append((warming, paper_rate(workload, rates, functional_warming)))
    return points


def optimal_unit_size(
    benchmark_length: int,
    cv_by_unit_size: dict[int, float],
    warming: int,
    epsilon: float = 0.03,
    confidence: float = 0.997,
) -> tuple[int, dict[int, float]]:
    """Choose the U minimizing detail-simulated instructions (Figure 5).

    Given the coefficient of variation measured at several unit sizes,
    compute for each U the fraction of the benchmark that must be
    simulated in detail, ``n(W + U)/N_instructions`` with n chosen for
    the confidence target, and return the U with the smallest fraction
    along with the full mapping.
    """
    from repro.core.stats import required_sample_size

    fractions: dict[int, float] = {}
    for unit_size, cv in cv_by_unit_size.items():
        population = benchmark_length // unit_size
        if population == 0:
            continue
        n = required_sample_size(cv, epsilon, confidence,
                                 population_size=population)
        fractions[unit_size] = n * (unit_size + warming) / benchmark_length
    if not fractions:
        raise ValueError("no feasible unit size for this benchmark length")
    best = min(fractions, key=fractions.get)
    return best, fractions
