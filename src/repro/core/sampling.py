"""Sampling designs: systematic, random, and stratified sampling plans.

A *sampling unit* is U consecutive instructions of the benchmark's
dynamic instruction stream (Section 3.1).  A plan decides which unit
indices are measured in detail.  SMARTS uses systematic sampling (fixed
interval k, offset j); random sampling is provided for tests and for the
homogeneity ablation; stratified sampling selects explicit unit indices
(per-phase allocations computed elsewhere, e.g. from BBV phase labels).

Every plan satisfies the :class:`SamplingPlan` protocol consumed by
:class:`~repro.core.smarts.SmartsEngine`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator, Protocol, runtime_checkable


@runtime_checkable
class SamplingPlan(Protocol):
    """Structural interface every sampling plan provides to the engine."""

    unit_size: int
    detailed_warming: int
    functional_warming: bool

    def units(self, benchmark_length: int) -> Iterator["SamplingUnit"]:
        """Yield the selected sampling units in ascending stream order."""
        ...


@dataclass(frozen=True)
class SamplingUnit:
    """One selected sampling unit."""

    index: int          #: Unit index within the population (0-based).
    start: int          #: First instruction of the unit (inclusive).
    size: int           #: Unit size U in instructions.

    @property
    def end(self) -> int:
        """One past the last instruction of the unit."""
        return self.start + self.size


@dataclass(frozen=True)
class SystematicSamplingPlan:
    """Systematic sampling at a fixed interval.

    Args:
        unit_size: U, instructions per sampling unit.
        interval: k, units between consecutive measured units.
        offset: j, index of the first measured unit (0 <= j < k).
        detailed_warming: W, instructions simulated in detail (but not
            measured) immediately before every measured unit.
        functional_warming: Whether caches/TLBs/branch predictors are
            kept warm during fast-forwarding between units.
    """

    unit_size: int
    interval: int
    offset: int = 0
    detailed_warming: int = 0
    functional_warming: bool = True

    def __post_init__(self) -> None:
        if self.unit_size <= 0:
            raise ValueError("unit_size must be positive")
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if not 0 <= self.offset < self.interval:
            raise ValueError("offset must satisfy 0 <= offset < interval")
        if self.detailed_warming < 0:
            raise ValueError("detailed_warming must be non-negative")
        # Note: detailed_warming may exceed the gap between sampling units
        # (large W at small sampling intervals).  The engine simply warms
        # from wherever fast-forwarding stopped, so the effective warming
        # is clamped to the available gap.

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def population_size(self, benchmark_length: int) -> int:
        """Number of whole sampling units in a benchmark (N)."""
        return benchmark_length // self.unit_size

    def sample_size(self, benchmark_length: int) -> int:
        """Number of units this plan measures for a benchmark (n)."""
        population = self.population_size(benchmark_length)
        if population <= self.offset:
            return 0
        return 1 + (population - self.offset - 1) // self.interval

    def detailed_instructions(self, benchmark_length: int) -> int:
        """Instructions simulated in detail: n * (U + W)."""
        return self.sample_size(benchmark_length) * (
            self.unit_size + self.detailed_warming)

    def measured_instructions(self, benchmark_length: int) -> int:
        """Instructions actually measured: n * U."""
        return self.sample_size(benchmark_length) * self.unit_size

    def detailed_fraction(self, benchmark_length: int) -> float:
        """Fraction of the benchmark simulated in detail."""
        if benchmark_length == 0:
            return 0.0
        return self.detailed_instructions(benchmark_length) / benchmark_length

    # ------------------------------------------------------------------
    # Unit enumeration
    # ------------------------------------------------------------------
    def units(self, benchmark_length: int) -> Iterator[SamplingUnit]:
        """Yield the sampling units selected by this plan."""
        population = self.population_size(benchmark_length)
        for index in range(self.offset, population, self.interval):
            yield SamplingUnit(
                index=index, start=index * self.unit_size, size=self.unit_size)

    @classmethod
    def for_sample_size(
        cls,
        benchmark_length: int,
        unit_size: int,
        target_sample_size: int,
        offset: int = 0,
        detailed_warming: int = 0,
        functional_warming: bool = True,
    ) -> "SystematicSamplingPlan":
        """Build a plan achieving approximately ``target_sample_size`` units.

        Mirrors the paper's procedure of choosing ``k = N / n_init``
        (Section 5.1).  The interval is floored (never below 1) so the
        realized sample size is at least the target whenever the
        population allows it.  An ``offset`` of ``interval`` or more
        wraps around (``offset % interval``) so distinct requested
        phases stay distinct plans — clamping them all onto
        ``interval - 1`` would silently alias an offset sweep.
        """
        population = benchmark_length // unit_size
        if population <= 0:
            raise ValueError("benchmark shorter than one sampling unit")
        target = max(1, min(target_sample_size, population))
        interval = max(1, population // target)
        return cls(
            unit_size=unit_size,
            interval=interval,
            offset=offset % interval,
            detailed_warming=detailed_warming,
            functional_warming=functional_warming,
        )


@dataclass(frozen=True)
class RandomSamplingPlan:
    """Simple random sampling of ``sample_size`` units (for comparison).

    Unit selection is driven by an explicit :class:`random.Random`
    derived from ``seed`` (or passed directly to :meth:`units`), never by
    the module-global generator, so the same plan always selects the same
    units regardless of surrounding code.
    """

    unit_size: int
    sample_size: int
    seed: int = 0
    detailed_warming: int = 0
    functional_warming: bool = True

    def __post_init__(self) -> None:
        if self.unit_size <= 0:
            raise ValueError("unit_size must be positive")
        if self.sample_size <= 0:
            raise ValueError("sample_size must be positive")

    def population_size(self, benchmark_length: int) -> int:
        return benchmark_length // self.unit_size

    def rng(self) -> random.Random:
        """A fresh generator in this plan's seeded initial state."""
        return random.Random(self.seed)

    def units(self, benchmark_length: int,
              rng: random.Random | None = None) -> Iterator[SamplingUnit]:
        """Yield the selected units in ascending order.

        Selection without replacement; if the population is smaller than
        the requested sample every unit is selected.  ``rng`` overrides
        the plan's own seeded generator when callers need to thread one
        generator through several selections.
        """
        population = self.population_size(benchmark_length)
        count = min(self.sample_size, population)
        if rng is None:
            rng = self.rng()
        chosen = sorted(rng.sample(range(population), count))
        for index in chosen:
            yield SamplingUnit(
                index=index, start=index * self.unit_size, size=self.unit_size)

    def detailed_instructions(self, benchmark_length: int) -> int:
        count = min(self.sample_size, self.population_size(benchmark_length))
        return count * (self.unit_size + self.detailed_warming)


@dataclass(frozen=True)
class StratifiedSamplingPlan:
    """Sampling of an explicit, precomputed set of unit indices.

    Used for stratified designs where an external analysis (e.g. BBV
    phase clustering, see ``repro.api.strategies.StratifiedStrategy``)
    allocates the sample across program phases and picks concrete units
    within each stratum.  The plan itself is a plain ordered index set,
    so it serializes trivially and replays identically.
    """

    unit_size: int
    unit_indices: tuple[int, ...]
    detailed_warming: int = 0
    functional_warming: bool = True

    def __post_init__(self) -> None:
        if self.unit_size <= 0:
            raise ValueError("unit_size must be positive")
        if not self.unit_indices:
            raise ValueError("unit_indices must not be empty")
        if any(i < 0 for i in self.unit_indices):
            raise ValueError("unit indices must be non-negative")
        ordered = tuple(sorted(set(self.unit_indices)))
        if ordered != self.unit_indices:
            object.__setattr__(self, "unit_indices", ordered)
        if self.detailed_warming < 0:
            raise ValueError("detailed_warming must be non-negative")

    @property
    def sample_size(self) -> int:
        return len(self.unit_indices)

    def population_size(self, benchmark_length: int) -> int:
        return benchmark_length // self.unit_size

    def units(self, benchmark_length: int) -> Iterator[SamplingUnit]:
        """Yield the plan's units, skipping any beyond the population."""
        population = self.population_size(benchmark_length)
        for index in self.unit_indices:
            if index >= population:
                break
            yield SamplingUnit(
                index=index, start=index * self.unit_size, size=self.unit_size)

    def detailed_instructions(self, benchmark_length: int) -> int:
        population = self.population_size(benchmark_length)
        count = sum(1 for i in self.unit_indices if i < population)
        return count * (self.unit_size + self.detailed_warming)


def offsets_for_bias_estimation(interval: int, phases: int = 5) -> list[int]:
    """Evenly distributed systematic-sample offsets j.

    The paper approximates the exact bias (an average over all k phases)
    with 5 evenly distributed phases: ``j = {0, k/5, 2k/5, 3k/5, 4k/5}``
    (Section 4.3).
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    phases = max(1, min(phases, interval))
    return [math.floor(i * interval / phases) for i in range(phases)]
