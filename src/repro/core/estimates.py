"""Result dataclasses produced by SMARTS runs and reference simulations."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.stats import (
    CONFIDENCE_997,
    SampleStatistics,
    finite_population_factor,
    sample_statistics,
)


@dataclass(frozen=True)
class UnitRecord:
    """Measurements of one sampling unit."""

    index: int           #: Unit index within the population.
    instructions: int    #: Instructions measured (== U except at stream end).
    cycles: int          #: Cycles the unit took in detailed simulation.
    energy: float        #: Energy (nJ) charged to the unit.
    #: True when the stream ended mid-unit (``instructions < U``).  A
    #: truncated unit's per-instruction values are not comparable to a
    #: full unit's, so estimates exclude it; instruction bookkeeping
    #: (``instructions_measured``) still counts it.
    truncated: bool = False

    @property
    def cpi(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    @property
    def epi(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.energy / self.instructions


@dataclass(frozen=True)
class MetricEstimate:
    """A sample-derived estimate of one per-instruction metric."""

    name: str
    statistics: SampleStatistics
    population_size: int | None = None

    @property
    def mean(self) -> float:
        return self.statistics.mean

    @property
    def coefficient_of_variation(self) -> float:
        return self.statistics.coefficient_of_variation

    @property
    def sample_size(self) -> int:
        return self.statistics.n

    def confidence_interval(self, confidence: float = CONFIDENCE_997) -> float:
        """Relative confidence interval half-width (fraction of the mean)."""
        return self.statistics.confidence_interval(confidence)

    def absolute_confidence_interval(self, confidence: float = CONFIDENCE_997) -> float:
        return self.statistics.absolute_confidence_interval(confidence)

    def meets(self, epsilon: float, confidence: float = CONFIDENCE_997) -> bool:
        """True if the estimate's confidence interval is within ±epsilon."""
        return self.confidence_interval(confidence) <= epsilon

    def corrected_confidence_interval(
            self, confidence: float = CONFIDENCE_997) -> float:
        """Relative CI half-width with the finite-population correction.

        ``z·V̂/√n · sqrt(1 - n/N)`` — the honest achieved interval when
        the sample is a non-negligible fraction of ``population_size``
        (the regime the adaptive stopping rule operates in).  Without a
        population size this equals :meth:`confidence_interval`.
        """
        raw = self.confidence_interval(confidence)
        if self.population_size is None:
            return raw
        factor = finite_population_factor(self.sample_size,
                                          self.population_size)
        if raw == float("inf") and factor == 0.0:
            return 0.0  # single-unit census: the estimate is exact
        return raw * factor

    @classmethod
    def from_values(cls, name: str, values, population_size: int | None = None
                    ) -> "MetricEstimate":
        return cls(name=name, statistics=sample_statistics(values),
                   population_size=population_size)


@dataclass
class SmartsRunResult:
    """Everything produced by one SMARTS sampling simulation run."""

    benchmark: str
    machine: str
    unit_size: int
    interval: int
    offset: int
    detailed_warming: int
    functional_warming: bool

    units: list[UnitRecord] = field(default_factory=list)
    benchmark_length: int = 0
    instructions_measured: int = 0
    instructions_detailed_warming: int = 0
    instructions_fastforwarded: int = 0
    #: Instructions skipped by checkpoint restores (zero without a
    #: checkpoint set) and the number of restores performed.
    instructions_restored: int = 0
    checkpoint_restores: int = 0

    #: Wall-clock seconds spent in each simulation mode.
    seconds_detailed: float = 0.0
    seconds_fastforward: float = 0.0

    @property
    def sample_size(self) -> int:
        return len(self.units)

    @property
    def population_size(self) -> int:
        return self.benchmark_length // self.unit_size if self.unit_size else 0

    @property
    def complete_units(self) -> list[UnitRecord]:
        """The units that measured a full U instructions.

        Estimates are computed over these: a truncated final unit's
        per-instruction values carry partial-unit noise and would enter
        the mean/CV with the same weight as a full unit.  When *every*
        measured unit is truncated (a degenerate run entirely at the
        stream end) the truncated units are used as-is rather than
        failing.
        """
        complete = [u for u in self.units if not u.truncated]
        return complete if complete else list(self.units)

    @property
    def cpi(self) -> MetricEstimate:
        """CPI estimate over the complete measured sampling units."""
        return MetricEstimate.from_values(
            "cpi", [u.cpi for u in self.complete_units], self.population_size)

    @property
    def epi(self) -> MetricEstimate:
        """Energy-per-instruction estimate over the complete units."""
        return MetricEstimate.from_values(
            "epi", [u.epi for u in self.complete_units], self.population_size)

    @property
    def detailed_fraction(self) -> float:
        """Fraction of the benchmark simulated in detail (measured + W)."""
        if self.benchmark_length == 0:
            return 0.0
        detailed = self.instructions_measured + self.instructions_detailed_warming
        return detailed / self.benchmark_length

    @property
    def wall_seconds(self) -> float:
        return self.seconds_detailed + self.seconds_fastforward

    def unit_cpi_values(self) -> np.ndarray:
        return np.asarray([u.cpi for u in self.units], dtype=float)

    def unit_epi_values(self) -> np.ndarray:
        return np.asarray([u.epi for u in self.units], dtype=float)

    def summary(self) -> dict[str, float]:
        """Compact dictionary used by the reporting harness."""
        cpi = self.cpi
        epi = self.epi
        return {
            "benchmark": self.benchmark,
            "machine": self.machine,
            "U": self.unit_size,
            "k": self.interval,
            "j": self.offset,
            "W": self.detailed_warming,
            "functional_warming": self.functional_warming,
            "n": self.sample_size,
            "N": self.population_size,
            "cpi": cpi.mean,
            "cpi_cv": cpi.coefficient_of_variation,
            "cpi_ci_997": cpi.confidence_interval(CONFIDENCE_997),
            "epi": epi.mean,
            "epi_cv": epi.coefficient_of_variation,
            "epi_ci_997": epi.confidence_interval(CONFIDENCE_997),
            "detailed_fraction": self.detailed_fraction,
            "instructions_measured": self.instructions_measured,
            "instructions_fastforwarded": self.instructions_fastforwarded,
            "instructions_restored": self.instructions_restored,
            "checkpoint_restores": self.checkpoint_restores,
            "benchmark_length": self.benchmark_length,
        }


@dataclass
class ReferenceResult:
    """Full-stream detailed simulation results for one benchmark/machine."""

    benchmark: str
    machine: str
    instructions: int
    cycles: int
    energy: float
    #: Per-chunk cycle counts at ``chunk_size`` granularity (for CV-vs-U
    #: analysis and true-bias computation).
    chunk_size: int = 0
    chunk_cycles: np.ndarray = field(default_factory=lambda: np.empty(0))
    chunk_energy: np.ndarray = field(default_factory=lambda: np.empty(0))
    seconds: float = 0.0

    @property
    def cpi(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    @property
    def epi(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.energy / self.instructions
