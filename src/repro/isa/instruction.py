"""Static instructions and dynamic instruction records.

A :class:`Instruction` is a static program element (one entry of a
:class:`~repro.isa.program.Program`).  A :class:`DynInst` is one executed
instance of an instruction produced by the functional core; it carries
everything the timing and warming models need (source/destination
registers, the effective address of memory operations, and the resolved
control-flow outcome) without retaining any architectural values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import (
    CONDITIONAL_BRANCHES,
    CONTROL_FLOW,
    LOAD_OPS,
    OPCODE_CLASS,
    STORE_OPS,
    OpClass,
    Opcode,
)

#: Number of architectural integer registers (r0 is hard-wired to zero).
NUM_INT_REGS = 32
#: Number of architectural floating point registers.
NUM_FP_REGS = 32

#: Register identifiers are flattened into a single namespace so that the
#: detailed simulator can track dependences with one table: integer
#: register ``rN`` maps to ``N`` and floating point register ``fN`` maps
#: to ``NUM_INT_REGS + N``.
FP_REG_BASE = NUM_INT_REGS


def int_reg(index: int) -> int:
    """Flattened identifier of integer register ``index``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> int:
    """Flattened identifier of floating point register ``index``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return FP_REG_BASE + index


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Operand meaning by opcode family:

    * ALU ops: ``rd <- rs1 OP rs2`` (or ``imm`` for immediate forms).
    * Loads: ``rd <- mem[rs1 + imm]``; stores: ``mem[rs1 + imm] <- rs2``.
    * Conditional branches compare ``rs1`` and ``rs2`` and jump to
      ``target`` (a static instruction index once the program has been
      finalized).
    * ``JAL`` writes the return index into ``rd``; ``JR`` jumps to the
      instruction index held in ``rs1``.

    Register fields refer to the *flattened* register namespace of
    :func:`int_reg` / :func:`fp_reg`.
    """

    op: Opcode
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    imm: int = 0
    target: int | str | None = None
    label: str | None = None

    @property
    def opclass(self) -> OpClass:
        """Scheduling class of this instruction."""
        return OPCODE_CLASS[self.op]

    @property
    def is_branch(self) -> bool:
        return self.op in CONTROL_FLOW

    @property
    def is_conditional(self) -> bool:
        return self.op in CONDITIONAL_BRANCHES

    @property
    def is_load(self) -> bool:
        return self.op in LOAD_OPS

    @property
    def is_store(self) -> bool:
        return self.op in STORE_OPS

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    def source_regs(self) -> tuple[int, ...]:
        """Flattened identifiers of all source registers."""
        srcs = []
        if self.rs1 is not None:
            srcs.append(self.rs1)
        if self.rs2 is not None:
            srcs.append(self.rs2)
        return tuple(srcs)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        parts = [self.op.name.lower()]
        if self.rd is not None:
            parts.append(f"d{self.rd}")
        if self.rs1 is not None:
            parts.append(f"s{self.rs1}")
        if self.rs2 is not None:
            parts.append(f"s{self.rs2}")
        if self.imm:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"@{self.target}")
        return " ".join(parts)


class DynInst:
    """One dynamically executed instruction.

    Produced by the functional core (`repro.functional.simulator`) and
    consumed by functional warming, the detailed timing model and the
    energy model.  Attribute access cost matters (tens of millions of
    these objects are created per experiment) so the class uses
    ``__slots__`` and exposes plain attributes rather than properties.
    """

    __slots__ = (
        "seq",
        "pc",
        "op",
        "opclass",
        "rd",
        "srcs",
        "mem_addr",
        "is_load",
        "is_store",
        "is_branch",
        "is_conditional",
        "taken",
        "next_pc",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        op: Opcode,
        opclass: OpClass,
        rd: int | None,
        srcs: tuple[int, ...],
        mem_addr: int | None,
        is_load: bool,
        is_store: bool,
        is_branch: bool,
        is_conditional: bool,
        taken: bool,
        next_pc: int,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.op = op
        self.opclass = opclass
        self.rd = rd
        self.srcs = srcs
        self.mem_addr = mem_addr
        self.is_load = is_load
        self.is_store = is_store
        self.is_branch = is_branch
        self.is_conditional = is_conditional
        self.taken = taken
        self.next_pc = next_pc

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DynInst(seq={self.seq}, pc={self.pc}, op={self.op.name}, "
            f"addr={self.mem_addr}, taken={self.taken}, next={self.next_pc})"
        )


@dataclass
class InstructionMix:
    """Counts of executed instructions by scheduling class."""

    counts: dict[OpClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in OpClass}
    )

    def record(self, opclass: OpClass) -> None:
        self.counts[opclass] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, opclass: OpClass) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return self.counts[opclass] / total

    def as_dict(self) -> dict[str, float]:
        """Instruction mix as ``{class name: fraction}``."""
        return {cls.name: self.fraction(cls) for cls in OpClass}
