"""A small assembler-style DSL for constructing programs.

The workload generators in :mod:`repro.workloads` use this builder to
emit loop nests, pointer chases and other kernels without manually
computing branch-target indices.  Register operands are given as
``"r5"`` / ``"f2"`` strings (or flattened integer identifiers) and branch
targets as label strings; :meth:`ProgramBuilder.build` resolves labels to
static instruction indices and returns a finalized
:class:`~repro.isa.program.Program`.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction, fp_reg, int_reg
from repro.isa.opcodes import Opcode
from repro.isa.program import Program, ProgramError

RegisterLike = int | str


def resolve_register(reg: RegisterLike) -> int:
    """Resolve ``"r4"`` / ``"f7"`` / flattened int into a flattened id."""
    if isinstance(reg, int):
        return reg
    name = reg.strip().lower()
    if not name or name[0] not in ("r", "f") or not name[1:].isdigit():
        raise ValueError(f"bad register name: {reg!r}")
    index = int(name[1:])
    if name[0] == "r":
        return int_reg(index)
    return fp_reg(index)


class ProgramBuilder:
    """Incrementally build a :class:`Program`.

    Example::

        b = ProgramBuilder("count")
        b.addi("r1", "r0", 10)
        b.label("loop")
        b.addi("r1", "r1", -1)
        b.bne("r1", "r0", "loop")
        b.halt()
        program = b.build()
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._data: dict[int, float] = {}
        self._entry = 0

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def label(self, name: str) -> str:
        """Attach ``name`` to the next emitted instruction."""
        if name in self._labels:
            raise ProgramError(f"duplicate label {name!r} in {self.name!r}")
        self._labels[name] = len(self._instructions)
        return name

    def set_entry(self, label: str) -> None:
        """Set the program entry point to a previously defined label."""
        self._entry_label = label

    def data_word(self, address: int, value: float) -> None:
        """Initialize one word of the data segment."""
        self._data[address] = value

    def data_block(self, base: int, values: list[float], stride: int = 8) -> None:
        """Initialize a contiguous block of data words starting at ``base``."""
        for i, value in enumerate(values):
            self._data[base + i * stride] = value

    @property
    def next_index(self) -> int:
        """Index the next emitted instruction will occupy."""
        return len(self._instructions)

    def emit(self, inst: Instruction) -> int:
        """Append an already-constructed instruction."""
        self._instructions.append(inst)
        return len(self._instructions) - 1

    # ------------------------------------------------------------------
    # Integer ALU
    # ------------------------------------------------------------------
    def _alu(self, op: Opcode, rd: RegisterLike, rs1: RegisterLike,
             rs2: RegisterLike) -> int:
        return self.emit(Instruction(
            op,
            rd=resolve_register(rd),
            rs1=resolve_register(rs1),
            rs2=resolve_register(rs2),
        ))

    def _alu_imm(self, op: Opcode, rd: RegisterLike, rs1: RegisterLike,
                 imm: int) -> int:
        return self.emit(Instruction(
            op,
            rd=resolve_register(rd),
            rs1=resolve_register(rs1),
            imm=imm,
        ))

    def add(self, rd, rs1, rs2):
        return self._alu(Opcode.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        return self._alu(Opcode.SUB, rd, rs1, rs2)

    def addi(self, rd, rs1, imm: int):
        return self._alu_imm(Opcode.ADDI, rd, rs1, imm)

    def and_(self, rd, rs1, rs2):
        return self._alu(Opcode.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        return self._alu(Opcode.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        return self._alu(Opcode.XOR, rd, rs1, rs2)

    def sll(self, rd, rs1, rs2):
        return self._alu(Opcode.SLL, rd, rs1, rs2)

    def srl(self, rd, rs1, rs2):
        return self._alu(Opcode.SRL, rd, rs1, rs2)

    def slt(self, rd, rs1, rs2):
        return self._alu(Opcode.SLT, rd, rs1, rs2)

    def slti(self, rd, rs1, imm: int):
        return self._alu_imm(Opcode.SLTI, rd, rs1, imm)

    def mul(self, rd, rs1, rs2):
        return self._alu(Opcode.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        return self._alu(Opcode.DIV, rd, rs1, rs2)

    def mod(self, rd, rs1, rs2):
        return self._alu(Opcode.MOD, rd, rs1, rs2)

    # ------------------------------------------------------------------
    # Floating point
    # ------------------------------------------------------------------
    def fadd(self, rd, rs1, rs2):
        return self._alu(Opcode.FADD, rd, rs1, rs2)

    def fsub(self, rd, rs1, rs2):
        return self._alu(Opcode.FSUB, rd, rs1, rs2)

    def fmul(self, rd, rs1, rs2):
        return self._alu(Opcode.FMUL, rd, rs1, rs2)

    def fdiv(self, rd, rs1, rs2):
        return self._alu(Opcode.FDIV, rd, rs1, rs2)

    def fsqrt(self, rd, rs1):
        return self.emit(Instruction(
            Opcode.FSQRT, rd=resolve_register(rd), rs1=resolve_register(rs1)))

    def fneg(self, rd, rs1):
        return self.emit(Instruction(
            Opcode.FNEG, rd=resolve_register(rd), rs1=resolve_register(rs1)))

    def cvtif(self, fd, rs1):
        return self.emit(Instruction(
            Opcode.CVTIF, rd=resolve_register(fd), rs1=resolve_register(rs1)))

    def cvtfi(self, rd, fs1):
        return self.emit(Instruction(
            Opcode.CVTFI, rd=resolve_register(rd), rs1=resolve_register(fs1)))

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def load(self, rd, base, offset: int = 0):
        """``rd <- mem[base + offset]`` (integer destination)."""
        return self.emit(Instruction(
            Opcode.LOAD, rd=resolve_register(rd),
            rs1=resolve_register(base), imm=offset))

    def store(self, value, base, offset: int = 0):
        """``mem[base + offset] <- value`` (integer source)."""
        return self.emit(Instruction(
            Opcode.STORE, rs1=resolve_register(base),
            rs2=resolve_register(value), imm=offset))

    def fload(self, fd, base, offset: int = 0):
        return self.emit(Instruction(
            Opcode.FLOAD, rd=resolve_register(fd),
            rs1=resolve_register(base), imm=offset))

    def fstore(self, fvalue, base, offset: int = 0):
        return self.emit(Instruction(
            Opcode.FSTORE, rs1=resolve_register(base),
            rs2=resolve_register(fvalue), imm=offset))

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def _branch(self, op: Opcode, rs1, rs2, target: str) -> int:
        return self.emit(Instruction(
            op, rs1=resolve_register(rs1), rs2=resolve_register(rs2),
            target=target))

    def beq(self, rs1, rs2, target: str):
        return self._branch(Opcode.BEQ, rs1, rs2, target)

    def bne(self, rs1, rs2, target: str):
        return self._branch(Opcode.BNE, rs1, rs2, target)

    def blt(self, rs1, rs2, target: str):
        return self._branch(Opcode.BLT, rs1, rs2, target)

    def bge(self, rs1, rs2, target: str):
        return self._branch(Opcode.BGE, rs1, rs2, target)

    def jump(self, target: str):
        return self.emit(Instruction(Opcode.JUMP, target=target))

    def jal(self, rd, target: str):
        return self.emit(Instruction(
            Opcode.JAL, rd=resolve_register(rd), target=target))

    def jr(self, rs1):
        return self.emit(Instruction(Opcode.JR, rs1=resolve_register(rs1)))

    def nop(self):
        return self.emit(Instruction(Opcode.NOP))

    def halt(self):
        return self.emit(Instruction(Opcode.HALT))

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Resolve labels and return the finalized program."""
        resolved: list[Instruction] = []
        for idx, inst in enumerate(self._instructions):
            target = inst.target
            if isinstance(target, str):
                if target not in self._labels:
                    raise ProgramError(
                        f"{self.name!r}[{idx}]: undefined label {target!r}")
                target_index = self._labels[target]
                inst = Instruction(
                    inst.op, rd=inst.rd, rs1=inst.rs1, rs2=inst.rs2,
                    imm=inst.imm, target=target_index, label=inst.label)
            resolved.append(inst)
        entry = self._entry
        entry_label = getattr(self, "_entry_label", None)
        if entry_label is not None:
            if entry_label not in self._labels:
                raise ProgramError(
                    f"{self.name!r}: undefined entry label {entry_label!r}")
            entry = self._labels[entry_label]
        return Program(
            name=self.name,
            instructions=resolved,
            data=dict(self._data),
            entry=entry,
            labels=dict(self._labels),
        )
