"""RISC-like ISA used by the repro simulators.

Public API:

* :class:`~repro.isa.opcodes.Opcode`, :class:`~repro.isa.opcodes.OpClass`
* :class:`~repro.isa.instruction.Instruction`,
  :class:`~repro.isa.instruction.DynInst`
* :class:`~repro.isa.program.Program`
* :class:`~repro.isa.builder.ProgramBuilder`
* :class:`~repro.isa.registers.ArchState`
"""

from repro.isa.builder import ProgramBuilder, resolve_register
from repro.isa.instruction import (
    FP_REG_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    DynInst,
    Instruction,
    InstructionMix,
    fp_reg,
    int_reg,
)
from repro.isa.opcodes import OpClass, Opcode, op_class
from repro.isa.program import WORD_SIZE, Program, ProgramError
from repro.isa.registers import ArchState

__all__ = [
    "ArchState",
    "DynInst",
    "FP_REG_BASE",
    "Instruction",
    "InstructionMix",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "OpClass",
    "Opcode",
    "Program",
    "ProgramBuilder",
    "ProgramError",
    "WORD_SIZE",
    "fp_reg",
    "int_reg",
    "op_class",
    "resolve_register",
]
