"""Program representation: a finalized static instruction sequence.

Programs are produced by :class:`repro.isa.builder.ProgramBuilder` (or by
the workload generators in :mod:`repro.workloads`).  A finalized program
has all branch targets resolved to static instruction indices and carries
the initial contents of its data segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode

#: Size in bytes of every memory word in the ISA.
WORD_SIZE = 8


class ProgramError(Exception):
    """Raised when a program is malformed (undefined label, bad target)."""


@dataclass
class Program:
    """A finalized program.

    Attributes:
        name: Human readable program name (used as cache keys by the
            experiment harness, so it should be unique per workload).
        instructions: The static instruction sequence.  Branch targets
            are static indices into this list.
        data: Initial data segment contents, ``{byte address: value}``.
            Values may be ints or floats.
        entry: Index of the first instruction to execute.
        labels: Resolved label table (useful for debugging and for basic
            block analysis in :mod:`repro.simpoint`).
    """

    name: str
    instructions: list[Instruction]
    data: dict[int, float] = field(default_factory=dict)
    entry: int = 0
    labels: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        n = len(self.instructions)
        if n == 0:
            raise ProgramError(f"program {self.name!r} has no instructions")
        if not 0 <= self.entry < n:
            raise ProgramError(
                f"program {self.name!r} entry point {self.entry} out of range"
            )
        for idx, inst in enumerate(self.instructions):
            if inst.is_branch and inst.op not in (Opcode.JR,):
                if inst.target is None:
                    raise ProgramError(
                        f"{self.name!r}[{idx}]: branch without target"
                    )
                if isinstance(inst.target, str):
                    raise ProgramError(
                        f"{self.name!r}[{idx}]: unresolved label {inst.target!r}"
                    )
                if not 0 <= inst.target < n:
                    raise ProgramError(
                        f"{self.name!r}[{idx}]: branch target {inst.target} "
                        f"out of range (program has {n} instructions)"
                    )

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def static_size(self) -> int:
        """Number of static instructions."""
        return len(self.instructions)

    def instruction_at(self, index: int) -> Instruction:
        return self.instructions[index]

    def basic_block_leaders(self) -> list[int]:
        """Return the sorted list of static basic block leader indices.

        A leader is the program entry, any branch target, and any
        instruction that follows a control-flow instruction.  Used by the
        SimPoint baseline to build basic block vectors.
        """
        leaders = {self.entry}
        for idx, inst in enumerate(self.instructions):
            if inst.is_branch:
                if isinstance(inst.target, int):
                    leaders.add(inst.target)
                if idx + 1 < len(self.instructions):
                    leaders.add(idx + 1)
        return sorted(leaders)

    def basic_block_map(self) -> dict[int, int]:
        """Map every static instruction index to its basic block id.

        Basic block ids are dense integers assigned in ascending leader
        order.
        """
        leaders = self.basic_block_leaders()
        block_of: dict[int, int] = {}
        block_id = -1
        leader_set = set(leaders)
        for idx in range(len(self.instructions)):
            if idx in leader_set:
                block_id += 1
            block_of[idx] = max(block_id, 0)
        return block_of

    def describe(self) -> str:
        """Short human readable summary of the program."""
        return (
            f"Program {self.name!r}: {len(self.instructions)} static "
            f"instructions, {len(self.data)} initialized data words, "
            f"{len(self.basic_block_leaders())} basic blocks"
        )
