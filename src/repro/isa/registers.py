"""Architectural state: register files and sparse memory.

The architectural state is everything a *functional* simulator maintains
(Section 3.1 of the paper: "Only programmer-visible architectural state
(e.g., architectural registers and memory) is updated in the functional
mode").  Microarchitectural state (caches, predictors, pipeline) lives in
the other substrate packages.
"""

from __future__ import annotations

from repro.isa.instruction import FP_REG_BASE, NUM_FP_REGS, NUM_INT_REGS
from repro.isa.program import WORD_SIZE, Program


class ArchState:
    """Registers, memory, and the program counter.

    Memory is a sparse word-granular dictionary keyed by byte address
    (addresses are aligned down to :data:`WORD_SIZE`).  Uninitialized
    memory reads return 0, mirroring a zero-filled address space.
    """

    __slots__ = ("int_regs", "fp_regs", "memory", "pc", "halted")

    def __init__(self) -> None:
        self.int_regs: list[int] = [0] * NUM_INT_REGS
        self.fp_regs: list[float] = [0.0] * NUM_FP_REGS
        self.memory: dict[int, float] = {}
        self.pc: int = 0
        self.halted: bool = False

    # ------------------------------------------------------------------
    # Registers (flattened namespace)
    # ------------------------------------------------------------------
    def read_reg(self, reg: int) -> float:
        """Read a register in the flattened namespace."""
        if reg < FP_REG_BASE:
            return self.int_regs[reg]
        return self.fp_regs[reg - FP_REG_BASE]

    def write_reg(self, reg: int, value: float) -> None:
        """Write a register; writes to integer register 0 are discarded."""
        if reg < FP_REG_BASE:
            if reg != 0:
                self.int_regs[reg] = int(value)
        else:
            self.fp_regs[reg - FP_REG_BASE] = float(value)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    @staticmethod
    def align(address: int) -> int:
        """Align a byte address down to its containing word."""
        return (int(address) // WORD_SIZE) * WORD_SIZE

    def load_word(self, address: int) -> float:
        return self.memory.get(self.align(address), 0)

    def store_word(self, address: int, value: float) -> None:
        self.memory[self.align(address)] = value

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self, program: Program) -> None:
        """Reset all architectural state to the program's initial image."""
        self.int_regs = [0] * NUM_INT_REGS
        self.fp_regs = [0.0] * NUM_FP_REGS
        self.memory = {self.align(addr): val for addr, val in program.data.items()}
        self.pc = program.entry
        self.halted = False

    def copy(self) -> "ArchState":
        """Deep copy (used for checkpointing in tests and experiments)."""
        clone = ArchState()
        clone.int_regs = list(self.int_regs)
        clone.fp_regs = list(self.fp_regs)
        clone.memory = dict(self.memory)
        clone.pc = self.pc
        clone.halted = self.halted
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArchState):
            return NotImplemented
        return (
            self.int_regs == other.int_regs
            and self.fp_regs == other.fp_regs
            and self.memory == other.memory
            and self.pc == other.pc
            and self.halted == other.halted
        )
