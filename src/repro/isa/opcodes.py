"""Instruction opcodes and operation classes for the repro RISC-like ISA.

The ISA is deliberately small: it exists to drive the functional and
detailed simulators (`repro.functional`, `repro.detailed`) with programs
whose dynamic behaviour (branching, memory locality, instruction mix)
spans the space the SMARTS paper studies on SPEC CPU2000.  Opcodes are
plain ``IntEnum`` members so dynamic-instruction records stay cheap.
"""

from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    """Every instruction opcode understood by the simulators."""

    # Integer ALU
    ADD = 1
    SUB = 2
    ADDI = 3
    AND = 4
    OR = 5
    XOR = 6
    SLL = 7
    SRL = 8
    SLT = 9
    SLTI = 10

    # Integer multiply / divide
    MUL = 20
    DIV = 21
    MOD = 22

    # Floating point
    FADD = 30
    FSUB = 31
    FMUL = 32
    FDIV = 33
    FSQRT = 34
    FNEG = 35
    CVTIF = 36  # int reg -> fp reg
    CVTFI = 37  # fp reg -> int reg

    # Memory
    LOAD = 40    # int load:  rd  <- mem[rs1 + imm]
    STORE = 41   # int store: mem[rs1 + imm] <- rs2
    FLOAD = 42   # fp load:   fd  <- mem[rs1 + imm]
    FSTORE = 43  # fp store:  mem[rs1 + imm] <- fs2

    # Control flow
    BEQ = 50
    BNE = 51
    BLT = 52
    BGE = 53
    JUMP = 54   # unconditional direct jump
    JAL = 55    # jump and link (rd <- return index)
    JR = 56     # indirect jump through int register

    # Miscellaneous
    NOP = 60
    HALT = 61


class OpClass(enum.IntEnum):
    """Functional-unit / scheduling class of an instruction.

    The detailed timing model assigns execution latency and functional
    unit requirements per class (Table 3 of the paper lists the per-class
    functional unit counts for the 8-way and 16-way configurations).
    """

    IALU = 0
    IMULT = 1
    FPALU = 2
    FPMULT = 3
    LOAD = 4
    STORE = 5
    BRANCH = 6
    NOP = 7


#: Static mapping from opcode to scheduling class.
OPCODE_CLASS: dict[Opcode, OpClass] = {
    Opcode.ADD: OpClass.IALU,
    Opcode.SUB: OpClass.IALU,
    Opcode.ADDI: OpClass.IALU,
    Opcode.AND: OpClass.IALU,
    Opcode.OR: OpClass.IALU,
    Opcode.XOR: OpClass.IALU,
    Opcode.SLL: OpClass.IALU,
    Opcode.SRL: OpClass.IALU,
    Opcode.SLT: OpClass.IALU,
    Opcode.SLTI: OpClass.IALU,
    Opcode.MUL: OpClass.IMULT,
    Opcode.DIV: OpClass.IMULT,
    Opcode.MOD: OpClass.IMULT,
    Opcode.FADD: OpClass.FPALU,
    Opcode.FSUB: OpClass.FPALU,
    Opcode.FNEG: OpClass.FPALU,
    Opcode.CVTIF: OpClass.FPALU,
    Opcode.CVTFI: OpClass.FPALU,
    Opcode.FMUL: OpClass.FPMULT,
    Opcode.FDIV: OpClass.FPMULT,
    Opcode.FSQRT: OpClass.FPMULT,
    Opcode.LOAD: OpClass.LOAD,
    Opcode.FLOAD: OpClass.LOAD,
    Opcode.STORE: OpClass.STORE,
    Opcode.FSTORE: OpClass.STORE,
    Opcode.BEQ: OpClass.BRANCH,
    Opcode.BNE: OpClass.BRANCH,
    Opcode.BLT: OpClass.BRANCH,
    Opcode.BGE: OpClass.BRANCH,
    Opcode.JUMP: OpClass.BRANCH,
    Opcode.JAL: OpClass.BRANCH,
    Opcode.JR: OpClass.BRANCH,
    Opcode.NOP: OpClass.NOP,
    Opcode.HALT: OpClass.NOP,
}

#: Conditional branches (outcome depends on register values).
CONDITIONAL_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}
)

#: Branches whose target is not known from the static instruction alone.
INDIRECT_BRANCHES = frozenset({Opcode.JR})

#: All control-flow opcodes.
CONTROL_FLOW = frozenset(
    {
        Opcode.BEQ,
        Opcode.BNE,
        Opcode.BLT,
        Opcode.BGE,
        Opcode.JUMP,
        Opcode.JAL,
        Opcode.JR,
    }
)

#: Memory opcodes.
MEMORY_OPS = frozenset({Opcode.LOAD, Opcode.STORE, Opcode.FLOAD, Opcode.FSTORE})
LOAD_OPS = frozenset({Opcode.LOAD, Opcode.FLOAD})
STORE_OPS = frozenset({Opcode.STORE, Opcode.FSTORE})


def op_class(op: Opcode) -> OpClass:
    """Return the scheduling class of ``op``."""
    return OPCODE_CLASS[op]
