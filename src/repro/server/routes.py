"""REST endpoints: the dispatch table and one handler per route.

Handlers are plain functions ``handler(app, request, **path_params) ->
Response``; the table at the bottom maps ``(method, path_regex)`` onto
them.  Everything JSON-shaped goes through :class:`Response.json`, study
reports render as ``text/plain``, and every error body carries an
``"error"`` string (plus structured ``"errors"`` for validation
failures).

Endpoint summary (see API.md for schemas):

=======  ==============================  =====================================
Method   Path                            Purpose
=======  ==============================  =====================================
GET      /                               service index
GET      /healthz                        liveness + job/queue counts
POST     /runs                           submit a RunSpec job
POST     /studies                        submit a registered-study job
GET      /jobs                           list jobs (``?status=`` filter)
GET      /jobs/<id>                      poll one job
GET      /runs/<id>/result               RunResult (``?view=estimates|full|
                                         summary``)
GET      /studies                        study registry listing
GET      /studies/<id>/rows              tidy rows (``?format=json|csv``)
GET      /studies/<id>/report            rendered text report
GET      /cache/stats                    result-cache introspection
=======  ==============================  =====================================
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from repro.api.spec import RunResult
from repro.api.study import STUDIES
from repro.api.resultset import rows_to_csv
from repro.server.jobs import QueueClosed, QueueFull
from repro.server.schemas import (
    ValidationError,
    parse_run_payload,
    parse_study_payload,
)

#: HTTP reason phrases for the statuses the service emits.
_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Response:
    """What a handler returns; the app renders it to WSGI."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: list[tuple[str, str]] = field(default_factory=list)

    @classmethod
    def json(cls, status: int, payload, **kwargs) -> "Response":
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
        return cls(status, body, **kwargs)

    @classmethod
    def text(cls, status: int, text: str) -> "Response":
        return cls(status, text.encode(), content_type="text/plain")

    @classmethod
    def error(cls, status: int, message: str, **extra) -> "Response":
        return cls.json(status, {"error": message, **extra})

    @property
    def status_line(self) -> str:
        return f"{self.status} {_REASONS.get(self.status, 'Unknown')}"


# ----------------------------------------------------------------------
# Handlers
# ----------------------------------------------------------------------
def handle_index(app, request) -> Response:
    return Response.json(200, {
        "service": "repro.server — SMARTS simulation-as-a-service",
        "endpoints": sorted({f"{method} {pattern.pattern}"
                             for method, pattern, _ in ROUTES}),
    })


def handle_health(app, request) -> Response:
    return Response.json(200, {
        "status": "shutting-down" if app.queue.closed else "ok",
        "workers": app.config.workers,
        "queue_depth": app.config.queue_depth,
        "job_timeout": app.config.job_timeout,
        "jobs": app.queue.counts(),
        "abandoned_jobs": app.queue.abandoned_jobs(),
        "abandoned_total": app.queue.abandoned_total,
    })


def handle_submit_run(app, request) -> Response:
    spec = parse_run_payload(request.json)
    record, created = app.queue.submit_run(spec)
    payload = record.describe()
    payload["created"] = created
    return Response.json(202 if created and record.status == "queued"
                         else 200, payload)


def handle_submit_study(app, request) -> Response:
    study, params = parse_study_payload(request.json)
    record, created = app.queue.submit_study(study, params)
    payload = record.describe()
    payload["created"] = created
    return Response.json(202 if created else 200, payload)


def handle_jobs(app, request) -> Response:
    status = request.query.get("status")
    if status is not None and status not in ("queued", "running",
                                             "done", "failed"):
        return Response.error(400, f"unknown status filter {status!r}")
    return Response.json(200, {
        "jobs": [record.describe() for record in app.queue.jobs(status)],
    })


def handle_job(app, request, job_id: str) -> Response:
    record = app.queue.job(job_id)
    if record is None:
        return Response.error(404, f"unknown job {job_id!r}")
    return Response.json(200, record.describe())


def _finished_job(app, job_id: str, kind: str):
    """The done job behind a result route, or the error Response."""
    record = app.queue.job(job_id)
    if record is None or record.kind != kind:
        return None, Response.error(404, f"unknown {kind} job {job_id!r}")
    if record.status in ("queued", "running"):
        return None, Response.json(202, record.describe())
    if record.status == "failed":
        return None, Response.error(409, f"job {job_id} failed",
                                    detail=record.error)
    return record, None


def handle_run_result(app, request, job_id: str) -> Response:
    record, error = _finished_job(app, job_id, "run")
    if error is not None:
        return error
    view = request.query.get("view", "estimates")
    if view not in ("estimates", "full", "summary"):
        return Response.error(400, f"unknown view {view!r}; "
                                   f"available: estimates, full, summary")
    result = RunResult.from_dict(record.result)
    if view == "estimates":
        payload = result.estimates_dict()
    elif view == "summary":
        payload = result.summary()
    else:
        payload = result.to_dict()
    return Response.json(200, {"id": record.id, "cached": record.cached,
                               "view": view, "result": payload})


def handle_studies(app, request) -> Response:
    return Response.json(200, {
        "studies": [study.describe() for study in STUDIES.values()],
    })


def handle_study_rows(app, request, job_id: str) -> Response:
    record, error = _finished_job(app, job_id, "study")
    if error is not None:
        return error
    fmt = request.query.get("format", "json")
    if fmt == "csv":
        return Response(200, rows_to_csv(record.result["rows"]).encode(),
                        content_type="text/csv")
    if fmt != "json":
        return Response.error(400, f"unknown format {fmt!r}; "
                                   f"available: json, csv")
    return Response.json(200, {"id": record.id,
                               "study": record.result["study"],
                               "rows": record.result["rows"]})


def handle_study_report(app, request, job_id: str) -> Response:
    record, error = _finished_job(app, job_id, "study")
    if error is not None:
        return error
    return Response.text(200, record.result.get("report", ""))


def handle_cache_stats(app, request) -> Response:
    cache = app.session.executor.cache
    stats = cache.stats()
    stats["hits"] = app.queue.hits
    stats["misses"] = app.queue.misses
    stats["artifact_store"] = cache.store.stats()
    return Response.json(200, stats)


#: (method, compiled path pattern, handler) dispatch table.
ROUTES = [
    ("GET", re.compile(r"^/$"), handle_index),
    ("GET", re.compile(r"^/healthz$"), handle_health),
    ("POST", re.compile(r"^/runs$"), handle_submit_run),
    ("POST", re.compile(r"^/studies$"), handle_submit_study),
    ("GET", re.compile(r"^/jobs$"), handle_jobs),
    ("GET", re.compile(r"^/jobs/(?P<job_id>[\w.-]+)$"), handle_job),
    ("GET", re.compile(r"^/runs/(?P<job_id>[\w.-]+)/result$"),
     handle_run_result),
    ("GET", re.compile(r"^/studies$"), handle_studies),
    ("GET", re.compile(r"^/studies/(?P<job_id>[\w.-]+)/rows$"),
     handle_study_rows),
    ("GET", re.compile(r"^/studies/(?P<job_id>[\w.-]+)/report$"),
     handle_study_report),
    ("GET", re.compile(r"^/cache/stats$"), handle_cache_stats),
]


def dispatch(app, request) -> Response:
    """Route one parsed request; 404/405/400/429/503 handled here."""
    path_methods = set()
    for method, pattern, handler in ROUTES:
        match = pattern.match(request.path)
        if match is None:
            continue
        if method != request.method:
            path_methods.add(method)
            continue
        try:
            return handler(app, request, **match.groupdict())
        except ValidationError as exc:
            return Response.json(400, {"error": "validation failed",
                                       "errors": exc.errors})
        except QueueFull as exc:
            return Response.error(429, str(exc),
                                  queue_depth=app.config.queue_depth)
        except QueueClosed as exc:
            return Response.error(503, str(exc))
    if path_methods:
        response = Response.error(405, f"method {request.method} not "
                                       f"allowed on {request.path}")
        response.headers.append(("Allow", ", ".join(sorted(path_methods))))
        return response
    return Response.error(404, f"no route for {request.path}")
