"""repro.server — simulation-as-a-service in front of the Session layer.

A long-lived HTTP job service (stdlib WSGI, no new dependencies) that
accepts :class:`~repro.api.spec.RunSpec` and registered
:class:`~repro.api.study.Study` submissions as JSON, runs them through a
bounded background job queue into the existing
:class:`~repro.api.session.Session`, and serves results, tidy rows, and
rendered reports back over REST.  Because every run goes through the
spec-hash :class:`~repro.api.executor.ResultCache`, the cache acts as a
cross-client memo: identical submissions from different clients are
answered without simulating.

Entry points:

* :func:`create_app` — app factory; the returned WSGI app is callable
  in-process (tests, :class:`~repro.server.client.ReproClient`).
* :func:`serve` — mount the app on a threading HTTP server
  (``repro-smarts serve`` from the CLI).
* :class:`~repro.server.client.ReproClient` — submit/poll/fetch helper
  with HTTP and in-process transports.

See the "Server" section of API.md for endpoints, schemas, and the job
lifecycle.
"""

from repro.server.app import (
    ReproApp,
    ServerConfig,
    create_app,
    make_http_server,
    serve,
)
from repro.server.client import ReproClient, ServerError
from repro.server.jobs import JobQueue, JobTimeout, QueueClosed, QueueFull
from repro.server.schemas import (
    ValidationError,
    parse_run_payload,
    parse_study_payload,
)
from repro.server.store import JobRecord, JobStore, default_jobs_dir

__all__ = [
    "JobQueue",
    "JobRecord",
    "JobStore",
    "JobTimeout",
    "QueueClosed",
    "QueueFull",
    "ReproApp",
    "ReproClient",
    "ServerConfig",
    "ServerError",
    "ValidationError",
    "create_app",
    "default_jobs_dir",
    "make_http_server",
    "parse_run_payload",
    "parse_study_payload",
    "serve",
]
