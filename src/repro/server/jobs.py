"""The background job queue: worker threads draining into a Session.

Submissions enter a bounded :class:`queue.Queue`; worker threads pull
job ids off it and execute through the shared
:class:`~repro.api.session.Session` — which means every run goes
through the :class:`~repro.api.executor.ResultCache`, turning the
spec-hash cache into a cross-client memo: the second client to submit
an identical spec is answered without simulating.

Design points:

* **Idempotent submission.**  Job ids are content hashes (see
  :mod:`repro.server.store`); resubmitting work that is queued, running,
  or done returns the existing record.  A *failed* job resubmits as a
  fresh attempt under the same id.
* **Bounded depth.**  A full queue raises :class:`QueueFull`, which the
  route layer renders as HTTP 429 — backpressure instead of unbounded
  memory growth.
* **Per-job timeout.**  Jobs execute on an inner daemon thread when a
  timeout is configured; a job that exceeds it is marked failed and the
  worker moves on to the next job (the abandoned computation finishes
  in the background and may still populate the result cache — Python
  threads cannot be killed, so this protects queue *throughput*, not
  CPU).
* **Graceful shutdown.**  :meth:`shutdown` stops intake (submissions
  raise :class:`QueueClosed` → HTTP 503), lets in-flight jobs finish,
  and joins the workers.
* **Restart recovery.**  On construction the queue reloads the job
  store; jobs that were queued or running when the previous process
  died are re-enqueued (their ``restarts`` counter ticks up), finished
  jobs stay served from their records.
"""

from __future__ import annotations

import queue
import threading

import time

from repro.api.session import Session
from repro.api.spec import RunResult, RunSpec
from repro.api.study import Study, default_context, get_study
from repro.api.resultset import to_jsonable
from repro.server.store import JobRecord, JobStore, study_job_hash


class QueueFull(Exception):
    """The bounded job queue is at capacity (HTTP 429)."""


class QueueClosed(Exception):
    """The service is shutting down; no new submissions (HTTP 503)."""


class JobTimeout(Exception):
    """A job exceeded the configured per-job timeout."""


def execute_run(session: Session, spec: RunSpec) -> RunResult:
    """Run one spec through the session (module-level for testability)."""
    return session.run(spec)


def execute_study(session: Session, study: Study, params: dict, ctx=None):
    """Run one registered study through the session."""
    return session.run_study(study, ctx=ctx, params=params)


class JobQueue:
    """Bounded queue + worker threads in front of one Session."""

    def __init__(self, session: Session, store: JobStore,
                 workers: int = 2, queue_depth: int = 16,
                 job_timeout: float | None = None,
                 study_context=None):
        self.session = session
        self.store = store
        self.queue_depth = queue_depth
        self.job_timeout = job_timeout
        self.study_context = study_context
        self._queue: queue.Queue = queue.Queue(maxsize=max(queue_depth, 1))
        self._lock = threading.Lock()
        self._jobs: dict[str, JobRecord] = {}
        self._closed = False
        self.hits = 0
        self.misses = 0
        #: Timed-out job threads we walked away from (still burning CPU
        #: until their computation ends — Python threads cannot be
        #: killed).  Tracked so /healthz can expose the leak instead of
        #: hiding it; dead threads are pruned on read.
        self._abandoned: list[threading.Thread] = []
        self.abandoned_total = 0
        self._recover()
        self._workers = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"repro-job-worker-{i}")
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_run(self, spec: RunSpec) -> tuple[JobRecord, bool]:
        """Submit a run job; returns ``(record, created)``.

        Dedupes on the spec hash, and answers straight from the result
        cache — job born ``done`` with ``cached=True`` — when the spec
        has already been simulated by any client.
        """
        job_id = f"run-{spec.key()}"
        with self._lock:
            existing = self._dedupe(job_id)
            if existing is not None:
                return existing, False
            record = JobRecord(id=job_id, kind="run", payload=spec.to_dict())
            cached = self.session.executor.cache.get(spec)
            if cached is not None:
                self.hits += 1
                now = time.time()
                record.status = "done"
                record.cached = True
                record.started_at = record.finished_at = now
                record.result = cached.to_dict()
                self._register(record)
                return record, True
            self._enqueue(record)
            return record, True

    def submit_study(self, study: Study | str,
                     params: dict | None = None) -> tuple[JobRecord, bool]:
        """Submit a study job; returns ``(record, created)``."""
        if isinstance(study, str):
            study = get_study(study)
        params = dict(params or {})
        job_id = f"study-{study_job_hash(study.name, params)}"
        with self._lock:
            existing = self._dedupe(job_id)
            if existing is not None:
                return existing, False
            record = JobRecord(id=job_id, kind="study",
                               payload={"study": study.name,
                                        "params": params})
            self._enqueue(record)
            return record, True

    def _dedupe(self, job_id: str) -> JobRecord | None:
        """The existing record resubmission maps to, if reusable."""
        existing = self._jobs.get(job_id)
        if existing is not None and existing.status != "failed":
            return existing
        return None

    def _enqueue(self, record: JobRecord) -> None:
        if self._closed:
            raise QueueClosed("server is shutting down")
        try:
            self._queue.put_nowait(record.id)
        except queue.Full:
            raise QueueFull(
                f"job queue is full ({self.queue_depth} queued)") from None
        record.status = "queued"
        record.error = None
        record.finished_at = None
        self._register(record)

    def _register(self, record: JobRecord) -> None:
        self._jobs[record.id] = record
        self.store.save(record)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, status: str | None = None) -> list[JobRecord]:
        with self._lock:
            records = sorted(self._jobs.values(),
                             key=lambda r: r.submitted_at)
        if status is not None:
            records = [r for r in records if r.status == status]
        return records

    def counts(self) -> dict:
        counts = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        with self._lock:
            for record in self._jobs.values():
                counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def abandoned_jobs(self) -> int:
        """Timed-out job threads still alive right now (a gauge).

        ``abandoned_total`` is the matching lifetime counter; the gauge
        prunes threads whose computation has since finished.
        """
        with self._lock:
            self._abandoned = [t for t in self._abandoned if t.is_alive()]
            return len(self._abandoned)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:  # shutdown sentinel
                self._queue.task_done()
                return
            try:
                self._run_job(job_id)
            finally:
                self._queue.task_done()

    def _run_job(self, job_id: str) -> None:
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None or record.status != "queued":
                return
            record.status = "running"
            record.started_at = time.time()
            self.store.save(record)
        try:
            result = self._call_with_timeout(lambda: self._execute(record))
        except Exception as exc:  # noqa: BLE001 — job errors become records
            from repro.reliability.report import BatchExecutionError

            with self._lock:
                record.status = "failed"
                record.error = f"{type(exc).__name__}: {exc}"
                if isinstance(exc, BatchExecutionError):
                    # Partial failure: keep the per-spec envelopes on the
                    # record (the completed siblings' results already
                    # reached the shared cache).
                    record.failures = [f.to_dict()
                                       for f in exc.report.failures]
                record.finished_at = time.time()
                self.store.save(record)
            return
        with self._lock:
            record.status = "done"
            record.result = result
            record.finished_at = time.time()
            self.store.save(record)

    def _execute(self, record: JobRecord) -> dict:
        from repro.reliability.faults import inject

        inject("server.job", record.id)
        if record.kind == "run":
            spec = RunSpec.from_dict(record.payload)
            cached = self.session.executor.cache.get(spec)
            if cached is not None:  # populated since submission
                record.cached = True
                self.hits += 1
                return cached.to_dict()
            self.misses += 1
            return execute_run(self.session, spec).to_dict()
        study = get_study(record.payload["study"])
        ctx = self.study_context or default_context()
        report = execute_study(self.session, study,
                               record.payload.get("params", {}), ctx=ctx)
        data = {k: to_jsonable(v) for k, v in report.data.items()
                if k != "report"}
        return {"study": report.study, "title": report.title,
                "rows": to_jsonable(report.rows), "data": data,
                "report": report.report}

    def _call_with_timeout(self, fn):
        if not self.job_timeout:
            return fn()
        box: dict = {}
        done = threading.Event()

        def target() -> None:
            try:
                box["result"] = fn()
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                box["error"] = exc
            finally:
                done.set()

        thread = threading.Thread(target=target, daemon=True,
                                  name="repro-job-timeout")
        thread.start()
        if not done.wait(self.job_timeout):
            with self._lock:
                self._abandoned = [t for t in self._abandoned
                                   if t.is_alive()]
                self._abandoned.append(thread)
                self.abandoned_total += 1
            raise JobTimeout(
                f"job exceeded the {self.job_timeout:g}s timeout "
                f"(abandoned; the worker moved on)")
        if "error" in box:
            raise box["error"]
        return box["result"]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Reload the store; re-enqueue work interrupted by a restart."""
        for record in self.store.load_all():
            self._jobs[record.id] = record
            if record.status in ("queued", "running"):
                record.restarts += 1
                try:
                    self._queue.put_nowait(record.id)
                except queue.Full:
                    record.status = "failed"
                    record.error = ("job queue full after restart; "
                                    "resubmit to retry")
                    record.finished_at = time.time()
                    self.store.save(record)
                    continue
                record.status = "queued"
                record.started_at = None
                self.store.save(record)

    def shutdown(self, wait: bool = True) -> None:
        """Stop intake, let in-flight jobs finish, join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(None)
        if wait:
            for worker in self._workers:
                worker.join()

    @property
    def closed(self) -> bool:
        return self._closed
