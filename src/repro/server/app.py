"""The WSGI application factory and the stdlib HTTP server around it.

:func:`create_app` wires a :class:`~repro.api.session.Session`, a
:class:`~repro.server.store.JobStore`, and a
:class:`~repro.server.jobs.JobQueue` into one WSGI callable
(:class:`ReproApp`).  The object is importable and callable in-process —
tests and :class:`~repro.server.client.ReproClient` drive it without a
socket — and :func:`serve` mounts the same app on a threading
``wsgiref`` server for real HTTP traffic (stdlib only, no new
dependencies).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from socketserver import ThreadingMixIn
from urllib.parse import parse_qsl
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from repro.api.session import Session
from repro.server.jobs import JobQueue
from repro.server.routes import Response, dispatch
from repro.server.store import JobStore


@dataclass
class ServerConfig:
    """Everything :func:`create_app` / :func:`serve` can be told.

    ``cache_dir`` / ``jobs_dir`` default to the repository-level
    ``.run_cache`` / ``.jobs`` directories (``REPRO_RUN_CACHE_DIR`` /
    ``REPRO_JOBS_DIR``).  ``job_timeout`` is seconds per job, ``None``
    for unlimited.  ``study_context`` overrides the process-wide
    :func:`~repro.api.study.default_context` for study jobs (used by
    tests to run miniature grids).
    """

    host: str = "127.0.0.1"
    port: int = 8023
    workers: int = 2
    queue_depth: int = 16
    job_timeout: float | None = None
    cache_dir: str | Path | None = None
    jobs_dir: str | Path | None = None
    use_cache: bool = True
    max_body_bytes: int = 1 << 20
    study_context: object | None = None
    #: Executor backend for spec execution (name, class, or instance);
    #: None consults REPRO_BACKEND, then the automatic choice.
    backend: object | None = None


class _BadRequest(Exception):
    """Unparseable request body (rendered as HTTP 400/413)."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(message)


class Request:
    """The parsed slice of a WSGI environ the handlers consume."""

    def __init__(self, environ: dict, max_body_bytes: int):
        self.method = environ.get("REQUEST_METHOD", "GET").upper()
        self.path = environ.get("PATH_INFO", "/") or "/"
        self.query = dict(parse_qsl(environ.get("QUERY_STRING", "")))
        self.json = None
        if self.method in ("POST", "PUT"):
            try:
                length = int(environ.get("CONTENT_LENGTH") or 0)
            except ValueError:
                raise _BadRequest(400, "invalid Content-Length") from None
            if length > max_body_bytes:
                raise _BadRequest(
                    413, f"request body exceeds {max_body_bytes} bytes")
            body = environ["wsgi.input"].read(length) if length else b""
            if body:
                try:
                    self.json = json.loads(body)
                except ValueError as exc:
                    raise _BadRequest(
                        400, f"malformed JSON body: {exc}") from None


class ReproApp:
    """The WSGI callable: routes HTTP onto the job queue and session."""

    def __init__(self, config: ServerConfig):
        self.config = config
        self.session = Session(cache_dir=config.cache_dir,
                               use_cache=config.use_cache,
                               backend=config.backend)
        self.store = JobStore(config.jobs_dir)
        self.queue = JobQueue(
            session=self.session,
            store=self.store,
            workers=config.workers,
            queue_depth=config.queue_depth,
            job_timeout=config.job_timeout,
            study_context=config.study_context,
        )

    def __call__(self, environ, start_response):
        try:
            request = Request(environ, self.config.max_body_bytes)
            response = dispatch(self, request)
        except _BadRequest as exc:
            response = Response.error(exc.status, exc.message)
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            response = Response.error(
                500, f"internal error: {type(exc).__name__}: {exc}")
        headers = [("Content-Type", response.content_type),
                   ("Content-Length", str(len(response.body)))]
        headers += response.headers
        start_response(response.status_line, headers)
        return [response.body]

    def close(self) -> None:
        """Graceful shutdown: finish in-flight jobs, join the workers."""
        self.queue.shutdown(wait=True)


def create_app(config: ServerConfig | None = None, **overrides) -> ReproApp:
    """App factory: build a ready-to-serve (or test) application.

    Keyword overrides are applied on top of ``config`` (or a default
    one), so ``create_app(workers=4, queue_depth=32)`` works without
    constructing a :class:`ServerConfig` first.
    """
    if config is None:
        config = ServerConfig()
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise TypeError(f"unknown server config field {key!r}")
        setattr(config, key, value)
    return ReproApp(config)


class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """One thread per request on top of the stdlib WSGI server."""

    daemon_threads = True


class _QuietHandler(WSGIRequestHandler):
    """Request handler with access logging suppressed (``quiet=True``)."""

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass


def make_http_server(app: ReproApp, host: str | None = None,
                     port: int | None = None, quiet: bool = False):
    """Bind the app to a threading HTTP server (port 0 = ephemeral)."""
    host = app.config.host if host is None else host
    port = app.config.port if port is None else port
    handler = _QuietHandler if quiet else WSGIRequestHandler
    return make_server(host, port, app, server_class=ThreadingWSGIServer,
                       handler_class=handler)


def serve(config: ServerConfig | None = None, **overrides) -> int:
    """Run the service until interrupted; returns a process exit code."""
    app = create_app(config, **overrides)
    server = make_http_server(app)
    host, port = server.server_address[:2]
    print(f"repro.server listening on http://{host}:{port} "
          f"({app.config.workers} workers, queue depth "
          f"{app.config.queue_depth}, cache "
          f"{app.session.executor.cache.directory})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down: finishing in-flight jobs ...")
    finally:
        server.server_close()
        app.close()
    return 0
