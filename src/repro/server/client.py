"""A small client for the repro.server REST API.

Two transports behind one interface:

* ``ReproClient("http://host:port")`` — real HTTP via ``urllib``
  (stdlib only), for talking to a ``repro-smarts serve`` process.
* ``ReproClient(app=create_app(...))`` — in-process WSGI: requests are
  dispatched straight into the application object, no socket involved.
  This is what the endpoint tests and CI smoke use.

The submit/wait/fetch flow::

    from repro.server import create_app
    from repro.server.client import ReproClient

    client = ReproClient(app=create_app())
    job = client.submit_run({"benchmark": "gcc.syn", "scale": 0.2})
    client.wait(job["id"])
    estimates = client.run_result(job["id"])["result"]
"""

from __future__ import annotations

import io
import json
import time
import urllib.error
import urllib.request


class ServerError(Exception):
    """A non-2xx response; carries the decoded error payload."""

    def __init__(self, status: int, payload):
        self.status = status
        self.payload = payload
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {detail}")


class _HTTPTransport:
    def __init__(self, base_url: str):
        self.base_url = base_url.rstrip("/")

    def request(self, method: str, path: str, body: bytes | None):
        req = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": "application/json"} if body else {})
        try:
            with urllib.request.urlopen(req) as response:
                return (response.status,
                        response.headers.get("Content-Type", ""),
                        response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, exc.headers.get("Content-Type", ""), exc.read()


class _WSGITransport:
    def __init__(self, app):
        self.app = app

    def request(self, method: str, path: str, body: bytes | None):
        if "?" in path:
            path, _, query = path.partition("?")
        else:
            query = ""
        body = body or b""
        environ = {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "QUERY_STRING": query,
            "CONTENT_LENGTH": str(len(body)),
            "CONTENT_TYPE": "application/json",
            "wsgi.input": io.BytesIO(body),
            "wsgi.errors": io.StringIO(),
            "wsgi.url_scheme": "http",
            "SERVER_NAME": "in-process",
            "SERVER_PORT": "0",
        }
        captured: dict = {}

        def start_response(status, headers):
            captured["status"] = int(status.split(" ", 1)[0])
            captured["headers"] = dict(headers)

        chunks = self.app(environ, start_response)
        payload = b"".join(chunks)
        return (captured["status"],
                captured["headers"].get("Content-Type", ""), payload)


class ReproClient:
    """Submit jobs, poll them, and fetch results from a repro server."""

    def __init__(self, base_url: str | None = None, app=None,
                 poll_interval: float = 0.05, poll_max: float = 2.0):
        if (base_url is None) == (app is None):
            raise ValueError("give exactly one of base_url or app")
        self._transport = (_HTTPTransport(base_url) if base_url is not None
                           else _WSGITransport(app))
        self.poll_interval = poll_interval
        self.poll_max = poll_max

    # ------------------------------------------------------------------
    # Raw request plumbing
    # ------------------------------------------------------------------
    def request(self, method: str, path: str, payload=None):
        """One request; JSON responses decode, errors raise ServerError."""
        body = (json.dumps(payload).encode() if payload is not None
                else None)
        status, content_type, raw = self._transport.request(
            method, path, body)
        if content_type.startswith("application/json"):
            decoded = json.loads(raw) if raw else None
        else:
            decoded = raw.decode()
        if status >= 400:
            raise ServerError(status, decoded)
        return decoded

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_run(self, spec) -> dict:
        """Submit a run; ``spec`` is a RunSpec or its dict form."""
        payload = spec.to_dict() if hasattr(spec, "to_dict") else spec
        return self.request("POST", "/runs", payload)

    def submit_study(self, study: str, params: dict | None = None) -> dict:
        return self.request("POST", "/studies",
                            {"study": study, "params": params or {}})

    # ------------------------------------------------------------------
    # Polling and results
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> dict:
        return self.request("GET", f"/jobs/{job_id}")

    def jobs(self, status: str | None = None) -> list[dict]:
        path = "/jobs" + (f"?status={status}" if status else "")
        return self.request("GET", path)["jobs"]

    def wait(self, job_id: str, timeout: float = 300.0) -> dict:
        """Poll until the job finishes; raises on timeout or failure.

        The poll interval starts at ``poll_interval`` and doubles after
        each poll up to ``poll_max``, so short jobs return promptly and
        long jobs do not hammer the server.
        """
        deadline = time.monotonic() + timeout
        interval = self.poll_interval
        while True:
            record = self.job(job_id)
            if record["status"] == "done":
                return record
            if record["status"] == "failed":
                raise ServerError(409, {"error": record["error"],
                                        "job": record})
            now = time.monotonic()
            if now >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['status']} after "
                    f"{timeout:g}s")
            time.sleep(min(interval, deadline - now))
            interval = min(interval * 2, self.poll_max)

    def run_result(self, job_id: str, view: str = "estimates") -> dict:
        return self.request("GET", f"/runs/{job_id}/result?view={view}")

    def study_rows(self, job_id: str, fmt: str = "json"):
        payload = self.request("GET", f"/studies/{job_id}/rows?format={fmt}")
        return payload if fmt == "csv" else payload["rows"]

    def study_report(self, job_id: str) -> str:
        return self.request("GET", f"/studies/{job_id}/report")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self.request("GET", "/healthz")

    def studies(self) -> list[dict]:
        return self.request("GET", "/studies")["studies"]

    def cache_stats(self) -> dict:
        return self.request("GET", "/cache/stats")
