"""Request validation: JSON payloads in, RunSpec/Study out — or a 400.

Submissions arrive as untrusted JSON.  The parsers here turn them into
the library's typed contracts (:class:`~repro.api.spec.RunSpec`, a
registered :class:`~repro.api.study.Study` plus params) and collect
*every* problem as a structured ``{"field", "message"}`` error instead
of letting the first bad name explode as a worker-side traceback.  The
route layer renders a :class:`ValidationError` as an HTTP 400 body::

    {"error": "validation failed",
     "errors": [{"field": "benchmark",
                 "message": "unknown benchmark 'gcc'; available: [...]"}]}
"""

from __future__ import annotations

import inspect
import numbers

from repro.api.spec import RunSpec
from repro.api.strategies import STRATEGIES
from repro.api.study import STUDIES, Study, get_study
from repro.config.machines import CONFIGURATIONS
from repro.workloads.suite import EXTRA_NAMES, SUITE_NAMES


class ValidationError(Exception):
    """A submission payload failed validation.

    ``errors`` is a list of ``{"field": str, "message": str}`` dicts,
    one per problem, in a stable order.
    """

    def __init__(self, errors: list[dict]):
        self.errors = list(errors)
        super().__init__("; ".join(
            f"{e['field']}: {e['message']}" for e in self.errors))

    @classmethod
    def single(cls, field: str, message: str) -> "ValidationError":
        return cls([{"field": field, "message": message}])


#: Benchmarks a submission may name: the suite, the extra stress-test
#: workloads, and the test micro one.
KNOWN_BENCHMARKS = (*SUITE_NAMES, *EXTRA_NAMES, "micro.syn")

#: Machines a submission may name: the scaled pair plus the registry.
KNOWN_MACHINES = tuple(dict.fromkeys(("8-way", "16-way", *CONFIGURATIONS)))

#: RunSpec fields a submission may set (everything else is rejected).
RUN_FIELDS = ("benchmark", "machine", "strategy", "scale", "metric",
              "seed", "epsilon", "confidence", "benchmark_length",
              "checkpoints")


def _require_mapping(payload, field: str) -> list[dict]:
    if not isinstance(payload, dict):
        return [{"field": field,
                 "message": f"expected a JSON object, got "
                            f"{type(payload).__name__}"}]
    return []


def parse_run_payload(payload) -> RunSpec:
    """Validate a ``POST /runs`` body and build its RunSpec.

    Accepts either the bare ``RunSpec.to_dict()`` shape or the same
    nested under a ``"spec"`` key.  Raises :class:`ValidationError`
    carrying every detected problem.
    """
    errors = _require_mapping(payload, "(body)")
    if errors:
        raise ValidationError(errors)
    if "spec" in payload:
        payload = payload["spec"]
        errors += _require_mapping(payload, "spec")
        if errors:
            raise ValidationError(errors)

    unknown = sorted(set(payload) - set(RUN_FIELDS))
    if unknown:
        errors.append({"field": unknown[0],
                       "message": f"unknown RunSpec field(s) {unknown}; "
                                  f"known: {list(RUN_FIELDS)}"})

    benchmark = payload.get("benchmark")
    if benchmark is None:
        errors.append({"field": "benchmark",
                       "message": "required field is missing"})
    elif benchmark not in KNOWN_BENCHMARKS:
        errors.append({"field": "benchmark",
                       "message": f"unknown benchmark {benchmark!r}; "
                                  f"available: {list(KNOWN_BENCHMARKS)}"})

    machine = payload.get("machine", "8-way")
    if machine not in KNOWN_MACHINES:
        errors.append({"field": "machine",
                       "message": f"unknown machine {machine!r}; "
                                  f"available: {list(KNOWN_MACHINES)}"})

    strategy = payload.get("strategy")
    if strategy is not None:
        errors += _strategy_errors(strategy)

    for field, kind in (("scale", numbers.Real), ("epsilon", numbers.Real),
                        ("confidence", numbers.Real),
                        ("seed", numbers.Integral),
                        ("benchmark_length", numbers.Integral)):
        value = payload.get(field)
        if value is None or field not in payload:
            continue
        if isinstance(value, bool) or not isinstance(value, kind):
            expected = "an integer" if kind is numbers.Integral else "a number"
            errors.append({"field": field,
                           "message": f"expected {expected}, got "
                                      f"{value!r}"})
            continue
        # Range checks the statistics layer would otherwise reject deep
        # inside a worker (z_score / required_sample_size ValueErrors).
        if field == "epsilon" and value <= 0:
            errors.append({"field": "epsilon",
                           "message": f"epsilon must be positive, got "
                                      f"{value!r}"})
        elif field == "confidence" and not 0 < value < 1:
            errors.append({"field": "confidence",
                           "message": f"confidence must be in (0, 1), got "
                                      f"{value!r}"})

    if errors:
        raise ValidationError(errors)
    try:
        return RunSpec.from_dict(dict(payload))
    except (ValueError, TypeError, KeyError) as exc:
        # Constraints __post_init__ enforces (metric/scale/checkpoints).
        raise ValidationError.single("spec", str(exc)) from exc


def _strategy_errors(strategy) -> list[dict]:
    errors = _require_mapping(strategy, "strategy")
    if errors:
        return errors
    name = strategy.get("name")
    cls = STRATEGIES.get(name)
    if cls is None:
        return [{"field": "strategy.name",
                 "message": f"unknown strategy {name!r}; "
                            f"available: {sorted(STRATEGIES)}"}]
    params = strategy.get("params", {})
    errors = _require_mapping(params, "strategy.params")
    if errors:
        return errors
    try:
        cls.from_params(dict(params))
    except (ValueError, TypeError) as exc:
        errors.append({"field": "strategy.params", "message": str(exc)})
    return errors


def parse_study_payload(payload) -> tuple[Study, dict]:
    """Validate a ``POST /studies`` body: registered name plus params.

    Parameter names are checked against the study's grid/analysis
    signatures *at submission time* (the same rule
    :meth:`Session.run_study` enforces), so an unknown parameter is a
    structured 400 instead of a failed job.
    """
    errors = _require_mapping(payload, "(body)")
    if errors:
        raise ValidationError(errors)
    name = payload.get("study")
    if name is None:
        raise ValidationError.single("study", "required field is missing")
    if name not in STUDIES:
        raise ValidationError.single(
            "study", f"unknown study {name!r}; available: {sorted(STUDIES)}")
    study = get_study(name)

    unknown_fields = sorted(set(payload) - {"study", "params"})
    if unknown_fields:
        errors.append({"field": unknown_fields[0],
                       "message": f"unknown field(s) {unknown_fields}; "
                                  f"known: ['study', 'params']"})
    params = payload.get("params") or {}
    errors += _require_mapping(params, "params")
    if not errors:
        accepted = set()
        for func in (study.grid, study.analyze):
            if func is not None:
                accepted |= _accepted_names(func, params)
        unknown = sorted(set(params) - accepted)
        if unknown:
            errors.append({"field": f"params.{unknown[0]}",
                           "message": f"study {name!r} accepts no "
                                      f"parameter(s) {unknown}"})
    if errors:
        raise ValidationError(errors)
    return study, dict(params)


def _accepted_names(func, params: dict) -> set:
    signature = inspect.signature(func)
    if any(p.kind is inspect.Parameter.VAR_KEYWORD
           for p in signature.parameters.values()):
        return set(params)
    return set(params) & set(signature.parameters)
