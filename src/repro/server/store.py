"""The on-disk job store: one JSON record per job under ``.jobs/``.

Job identity is *content* identity: a run job's id is derived from its
spec hash (``run-<RunSpec.key()>``), a study job's from the hash of its
``{study, params}`` payload.  Resubmitting the same work therefore maps
to the same record — idempotency falls out of the naming scheme, and it
keeps working across server restarts because the records live on disk.

Records are written with the same tmp-file + ``os.replace`` discipline
as the result cache, so a killed server never leaves a truncated record
behind; a reader at worst sees the previous state of the job.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.paths import project_cache_dir

#: Job lifecycle states, in order.
JOB_STATUSES = ("queued", "running", "done", "failed")


def default_jobs_dir() -> Path:
    """Directory job records persist under (``REPRO_JOBS_DIR``)."""
    return project_cache_dir("REPRO_JOBS_DIR", ".jobs")


def study_job_hash(study: str, params: dict) -> str:
    """Stable content hash for a study submission (id + dedupe key)."""
    payload = json.dumps({"study": study, "params": params}, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class JobRecord:
    """Everything the service knows about one submitted job.

    ``payload`` is the validated submission (a ``RunSpec.to_dict()`` for
    run jobs, ``{"study": name, "params": {...}}`` for study jobs) and
    ``result`` the JSON-ready outcome — a ``RunResult.to_dict()`` or the
    study's ``{title, rows, data, report}`` bundle.  ``cached`` marks
    run jobs answered from the result cache without simulating.
    """

    id: str
    kind: str  # "run" | "study"
    payload: dict
    status: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    cached: bool = False
    restarts: int = 0
    result: dict | None = None
    #: Per-spec failure envelopes (``SpecFailure.to_dict()`` forms) when
    #: the job failed partially — completed siblings' results are in the
    #: shared cache even though the job itself is ``failed``.
    failures: list | None = None

    def describe(self) -> dict:
        """The job as ``GET /jobs/<id>`` reports it (no result body)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "payload": self.payload,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "cached": self.cached,
            "restarts": self.restarts,
            "has_result": self.result is not None,
            "failures": self.failures,
        }

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in data.items() if k in known})


class JobStore:
    """Persistence for :class:`JobRecord`s: load, save, list, gc."""

    def __init__(self, directory: Path | str | None = None):
        self.directory = Path(directory) if directory else default_jobs_dir()
        self._lock = threading.Lock()

    def _path(self, job_id: str) -> Path:
        return self.directory / f"{job_id}.json"

    def save(self, record: JobRecord) -> None:
        with self._lock:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._path(record.id)
            tmp = path.with_suffix(
                f".{os.getpid()}-{threading.get_ident()}.tmp")
            with open(tmp, "w") as handle:
                json.dump(record.to_dict(), handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)

    def load(self, job_id: str) -> JobRecord | None:
        path = self._path(job_id)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        try:
            return JobRecord.from_dict(data)
        except TypeError:
            return None

    def load_all(self) -> list[JobRecord]:
        """Every parseable record, oldest submission first."""
        if not self.directory.is_dir():
            return []
        records = []
        for path in sorted(self.directory.glob("*.json")):
            record = self.load(path.stem)
            if record is not None:
                records.append(record)
        records.sort(key=lambda r: r.submitted_at)
        return records

    def delete(self, job_id: str) -> bool:
        with self._lock:
            try:
                self._path(job_id).unlink()
                return True
            except OSError:
                return False

    def gc(self, max_age_days: float | None = None,
           remove_all: bool = False, dry_run: bool = False) -> list[Path]:
        """Remove finished job records (and stray tmp files).

        Without arguments only orphaned ``*.tmp`` files go; with
        ``max_age_days`` finished (done/failed) records older than that
        are removed too, and ``remove_all`` clears every record
        regardless of age or status (offline maintenance).  ``dry_run``
        returns what *would* be removed without touching anything.
        """
        removed = []
        if not self.directory.is_dir():
            return removed
        now = time.time()
        for path in sorted(self.directory.iterdir()):
            if not path.is_file():
                continue
            if path.suffix == ".tmp":
                removed.append(path)
                continue
            if path.suffix != ".json":
                continue
            if remove_all:
                removed.append(path)
                continue
            if max_age_days is None:
                continue
            record = self.load(path.stem)
            if record is None:
                removed.append(path)  # unparseable: nothing can use it
                continue
            age_days = (now - record.submitted_at) / 86400.0
            if record.status in ("done", "failed") and age_days > max_age_days:
                removed.append(path)
        if not dry_run:
            for path in removed:
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed
