#!/usr/bin/env python3
"""Design study: comparing machine configurations with sampled simulation.

The motivating use case of SMARTS (Section 1): an architect wants to
compare design points across a benchmark suite but cannot afford
full-stream detailed simulation of every (benchmark, configuration)
pair.  This example builds the benchmark x machine cross product as
declarative RunSpecs and executes the whole batch through one
``Session.run_batch`` call — in parallel across worker processes, with
on-disk result caching — then reports speedup-style CPI ratios with
confidence intervals and how much detailed simulation was avoided.

Run:  python examples/design_study.py [--workers N]
"""

import argparse

from repro.api import ResultSet, RunSpec, Session, SystematicStrategy, format_table

BENCHMARKS = ["gzip.syn", "gcc.syn", "mcf.syn", "mesa.syn", "swim.syn"]
MACHINES = ["8-way", "16-way"]
SCALE = 0.2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4,
                        help="parallel worker processes")
    args = parser.parse_args()

    session = Session(max_workers=args.workers)
    strategy = SystematicStrategy(unit_size=50, n_init=200, max_rounds=2)
    specs = [
        RunSpec(benchmark=name, machine=machine, strategy=strategy,
                scale=SCALE, metric="cpi", epsilon=0.10)
        for name in BENCHMARKS
        for machine in MACHINES
    ]
    resultset = ResultSet(session.run_batch(specs))
    results = resultset.by_cell()

    rows = []
    for name in BENCHMARKS:
        eight = results[("8-way", name)]
        sixteen = results[("16-way", name)]
        rows.append([
            name,
            f"{eight.estimate_mean:.3f} ±{eight.confidence_interval:.1%}",
            f"{sixteen.estimate_mean:.3f} ±{sixteen.confidence_interval:.1%}",
            (f"{eight.estimate_mean / sixteen.estimate_mean:.2f}x"
             if sixteen.estimate_mean else "n/a"),
        ])

    print(format_table(
        ["benchmark", "8-way CPI (99.7% CI)", "16-way CPI (99.7% CI)",
         "16-way speedup"],
        rows,
        title="Design study: 8-way baseline vs 16-way aggressive"))
    budget = resultset.aggregate(
        measured=("instructions_measured", "sum"),
        length=("benchmark_length", "sum"))
    print(f"\nDetailed measurement budget: {budget['measured']:,} of "
          f"{budget['length']:,} instructions "
          f"({budget['measured'] / budget['length']:.2%} of the suite) — "
          "the rest was functionally warmed or fast-forwarded.")


if __name__ == "__main__":
    main()
