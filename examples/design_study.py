#!/usr/bin/env python3
"""Design study: comparing machine configurations with sampled simulation.

The motivating use case of SMARTS (Section 1): an architect wants to
compare design points across a benchmark suite but cannot afford
full-stream detailed simulation of every (benchmark, configuration)
pair.  This example evaluates the 8-way baseline against the 16-way
aggressive configuration over several benchmarks using SMARTS, reports
speedup-style CPI ratios with confidence intervals, and shows how much
detailed simulation was avoided.

Run:  python examples/design_study.py
"""

from repro import estimate_metric, get_benchmark, recommended_warming
from repro.config import scaled_16way, scaled_8way
from repro.harness.reporting import format_table

BENCHMARKS = ["gzip.syn", "gcc.syn", "mcf.syn", "mesa.syn", "swim.syn"]
SCALE = 0.2


def main() -> None:
    machines = {"8-way": scaled_8way(), "16-way": scaled_16way()}
    rows = []
    total_measured = 0
    total_length = 0

    for name in BENCHMARKS:
        benchmark = get_benchmark(name, scale=SCALE)
        estimates = {}
        for machine_name, machine in machines.items():
            result = estimate_metric(
                benchmark.program, machine,
                metric="cpi",
                unit_size=50,
                detailed_warming=recommended_warming(machine),
                epsilon=0.10,
                n_init=200,
                max_rounds=2,
            )
            estimates[machine_name] = result
            total_measured += result.total_measured_instructions
            total_length += result.benchmark_length

        cpi8 = estimates["8-way"].estimate.mean
        cpi16 = estimates["16-way"].estimate.mean
        ci8 = estimates["8-way"].confidence_interval
        ci16 = estimates["16-way"].confidence_interval
        rows.append([
            name,
            f"{cpi8:.3f} ±{ci8:.1%}",
            f"{cpi16:.3f} ±{ci16:.1%}",
            f"{cpi8 / cpi16:.2f}x" if cpi16 else "n/a",
        ])

    print(format_table(
        ["benchmark", "8-way CPI (99.7% CI)", "16-way CPI (99.7% CI)",
         "16-way speedup"],
        rows,
        title="Design study: 8-way baseline vs 16-way aggressive"))
    print(f"\nDetailed measurement budget: {total_measured:,} of "
          f"{total_length:,} instructions "
          f"({total_measured / total_length:.2%} of the suite) — the rest "
          "was functionally warmed or fast-forwarded.")


if __name__ == "__main__":
    main()
