#!/usr/bin/env python3
"""Quickstart: estimate the CPI of one benchmark with SMARTS.

Everything goes through the unified session layer (``repro.api``): a
declarative :class:`RunSpec` names the benchmark, machine, and sampling
strategy; :class:`Session` executes it (with on-disk result caching)
and returns a :class:`RunResult` with the estimate, its confidence
interval, and per-round bookkeeping.

Under the hood this follows the exact procedure of Section 5.1 of the
paper: W from the machine's warming recommendation, the canonical small
sampling unit size U, one run at n_init, and a tuned second run when the
achieved 99.7% confidence interval is too wide.

It then validates the estimate against a full-stream detailed simulation
(something the paper could only afford because it had months of
reference simulations — here the benchmark is small enough to check).

Run:  python examples/quickstart.py
"""

from repro.api import (
    RunSpec,
    Session,
    SystematicStrategy,
    get_benchmark,
    resolve_machine,
    run_reference,
)


def main() -> None:
    session = Session()
    spec = RunSpec(
        benchmark="mcf.syn",
        machine="8-way",
        strategy=SystematicStrategy(
            unit_size=50,           # U (scaled from 1000)
            n_init=300,
            max_rounds=2,
            detailed_warming=None,  # W: machine's recommendation
            functional_warming=True,
        ),
        scale=0.25,
        metric="cpi",
        epsilon=0.075,              # target ±7.5%
        confidence=0.997,           # "virtually certain"
    )
    print(f"Benchmark: {spec.benchmark}")
    print(f"Machine:   {resolve_machine(spec.machine).name}")

    # --- SMARTS estimation ------------------------------------------------
    result = session.run(spec)

    print("\nSMARTS estimate")
    print(f"  CPI                 : {result.estimate_mean:.4f}")
    print(f"  coefficient of var. : {result.estimate_cv:.3f}")
    print(f"  99.7% conf. interval: ±{result.confidence_interval:.2%}")
    print(f"  sampling rounds     : {result.rounds}"
          f" (n = {[r['sample_size'] for r in result.round_estimates]})")
    print(f"  instructions measured in detail: "
          f"{result.instructions_measured:,} of "
          f"{result.benchmark_length:,} "
          f"({result.instructions_measured / result.benchmark_length:.2%})")

    # --- Validation against full detailed simulation ----------------------
    print("\nValidating against full-stream detailed simulation "
          "(this is the slow thing SMARTS avoids)...")
    benchmark = get_benchmark(spec.benchmark, scale=spec.scale)
    reference = run_reference(benchmark.program, resolve_machine(spec.machine))
    error = (result.estimate_mean - reference.cpi) / reference.cpi
    print(f"  true CPI            : {reference.cpi:.4f}")
    print(f"  actual error        : {error:+.2%}")
    print(f"  inside ±CI?         : "
          f"{'yes' if abs(error) <= result.confidence_interval else 'no'}")


if __name__ == "__main__":
    main()
