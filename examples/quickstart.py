#!/usr/bin/env python3
"""Quickstart: estimate the CPI of one benchmark with SMARTS.

This example follows the exact procedure of Section 5.1 of the paper:

1. pick W from the machine's warming recommendation (functional warming
   bounds it to a small value),
2. use the canonical small sampling unit size U,
3. run once with a generic initial sample size n_init and check the
   achieved 99.7% confidence interval,
4. if the interval is too wide, rerun with n_tuned computed from the
   measured coefficient of variation.

It then validates the estimate against a full-stream detailed simulation
(something the paper could only afford because it had months of
reference simulations — here the benchmark is small enough to check).

Run:  python examples/quickstart.py
"""

from repro import (
    estimate_metric,
    get_benchmark,
    recommended_warming,
    run_reference,
    scaled_8way,
)


def main() -> None:
    machine = scaled_8way()
    benchmark = get_benchmark("mcf.syn", scale=0.25)
    print(f"Benchmark: {benchmark.name} ({benchmark.spec.description})")
    print(f"Machine:   {machine.name}")

    # --- SMARTS estimation ------------------------------------------------
    result = estimate_metric(
        benchmark.program,
        machine,
        metric="cpi",
        unit_size=50,                                   # U (scaled from 1000)
        detailed_warming=recommended_warming(machine),  # W
        functional_warming=True,
        epsilon=0.075,                                  # target ±7.5%
        confidence=0.997,                               # "virtually certain"
        n_init=300,
        max_rounds=2,
    )

    estimate = result.estimate
    print("\nSMARTS estimate")
    print(f"  CPI                 : {estimate.mean:.4f}")
    print(f"  coefficient of var. : {estimate.coefficient_of_variation:.3f}")
    print(f"  99.7% conf. interval: ±{result.confidence_interval:.2%}")
    print(f"  sampling rounds     : {len(result.runs)}"
          f" (n = {[run.sample_size for run in result.runs]})")
    print(f"  instructions measured in detail: "
          f"{result.total_measured_instructions:,} of "
          f"{result.benchmark_length:,} "
          f"({result.total_measured_instructions / result.benchmark_length:.2%})")

    # --- Validation against full detailed simulation ----------------------
    print("\nValidating against full-stream detailed simulation "
          "(this is the slow thing SMARTS avoids)...")
    reference = run_reference(benchmark.program, machine)
    error = (estimate.mean - reference.cpi) / reference.cpi
    print(f"  true CPI            : {reference.cpi:.4f}")
    print(f"  actual error        : {error:+.2%}")
    print(f"  inside ±CI?         : "
          f"{'yes' if abs(error) <= result.confidence_interval else 'no'}")


if __name__ == "__main__":
    main()
