#!/usr/bin/env python3
"""Simulation-as-a-service: drive a repro server over HTTP.

The ``repro.server`` subsystem turns the Session library into a
long-lived job service: clients submit :class:`repro.api.RunSpec` and
registered-study jobs as JSON over REST, poll them, and fetch results —
while the spec-hash result cache acts as a *cross-client memo*, so the
second client to ask for an identical run is answered without
simulating anything.

This example stands up a real HTTP server on an ephemeral localhost
port (exactly what ``repro-smarts serve`` runs, minus the fixed port),
then walks the full client workflow with
:class:`repro.server.client.ReproClient`:

1. submit a RunSpec → poll → fetch its estimates,
2. resubmit the identical spec and observe the cache hit,
3. submit a registered study (``fig6``) and fetch tidy rows + report.

Run:  python examples/remote_study.py
"""

import threading

from repro.api import StudyContext
from repro.server import ServerConfig, create_app, make_http_server
from repro.server.client import ReproClient

#: Miniature study context so the fig6 grid stays example-sized.
CTX = StudyContext(scale=0.1, fast=True,
                   suite_names=["gzip.syn", "mcf.syn"],
                   n_init=100, epsilon=0.2)

RUN_PAYLOAD = {
    "benchmark": "gcc.syn",
    "machine": "8-way",
    "scale": 0.1,
    "epsilon": 0.2,
    "strategy": {"name": "systematic",
                 "params": {"unit_size": 50, "n_init": 100,
                            "max_rounds": 1}},
}


def main() -> int:
    app = create_app(ServerConfig(workers=2, study_context=CTX))
    server = make_http_server(app, port=0, quiet=True)
    host, port = server.server_address[:2]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"server    : http://{host}:{port} (2 workers)")

    client = ReproClient(f"http://{host}:{port}")
    print(f"health    : {client.health()['status']}, "
          f"{len(client.studies())} registered studies")

    # 1. Submit a run, poll until done, fetch the estimate.
    job = client.submit_run(RUN_PAYLOAD)
    print(f"run job   : {job['id']} ({job['status']})")
    client.wait(job["id"])
    result = client.run_result(job["id"])
    print(f"estimate  : CPI {result['result']['estimate_mean']:.4f} "
          f"±{result['result']['confidence_interval']:.2%} "
          f"(cached={result['cached']})")

    # 2. The identical submission is answered from the shared memo.
    again = client.submit_run(RUN_PAYLOAD)
    print(f"resubmit  : {again['id']} ({again['status']}, "
          f"created={again['created']})")
    stats = client.cache_stats()
    print(f"cache     : {stats['entries']} entries, "
          f"{stats['hits']} hits / {stats['misses']} misses")

    # 3. A registered paper study over REST: tidy rows + rendered report.
    study_job = client.submit_study("fig6", {"machine_names": ["8-way"]})
    print(f"study job : {study_job['id']} ({study_job['status']})")
    client.wait(study_job["id"], timeout=1200)
    rows = client.study_rows(study_job["id"])
    print(f"fig6 rows : {len(rows)} "
          f"(columns: {', '.join(rows[0]) if rows else '-'})")
    print()
    print(client.study_report(study_job["id"]))

    server.shutdown()
    server.server_close()
    app.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
