#!/usr/bin/env python3
"""Chaos smoke: crash + corrupt + stall across all three backends.

The CI companion to ``tests/test_chaos_campaign.py``: for each executor
backend (serial, local-pool, queue) it installs a deterministic
:class:`repro.reliability.FaultPlan` mixing the fault kinds that backend
can meaningfully encounter —

* ``serial``     — EIO on store reads, byte corruption on store writes,
  short write stalls;
* ``local-pool`` — one fork worker crashed mid-task (``os._exit``,
  shared fuse so the crash fires exactly once), plus write corruption;
* ``queue``      — one worker subprocess crashed mid-job (recovered by
  lease expiry), stalled heartbeats, plus write corruption;

— then runs a small spec batch and asserts the reliability invariants:
every spec completes, the ``estimates_dict()`` payloads are byte-equal
to a fault-free run, and the queue ends with exactly one terminal
record per job.  Faults cost retries, never correctness.

Run:  python examples/chaos_smoke.py
"""

import json
import os
import tempfile

from repro.api import RunSpec, Session, SystematicStrategy
from repro.reliability import FaultPlan, FaultRule, SpecFailure

N_SPECS = 3


def build_specs() -> list[RunSpec]:
    return [
        RunSpec(
            benchmark="micro.syn",
            strategy=SystematicStrategy(unit_size=25, n_init=30,
                                        max_rounds=1, detailed_warming=50),
            epsilon=0.5,
            seed=seed,
        )
        for seed in range(N_SPECS)
    ]


def plan_for(backend: str, state_dir: str) -> FaultPlan:
    """A mixed-kind fault plan matched to the backend's seams."""
    corrupt = FaultRule(site="store.write", kind="corrupt",
                        probability=0.5, times=3)
    if backend == "serial":
        rules = [
            FaultRule(site="store.read", kind="oserror", errno_name="EIO",
                      probability=0.5, times=4),
            corrupt,
            FaultRule(site="store.write", kind="delay", delay=0.01,
                      times=2),
        ]
    elif backend == "local-pool":
        rules = [
            FaultRule(site="pool.task", kind="crash", scope="shared",
                      times=1),
            corrupt,
            FaultRule(site="store.read", kind="delay", delay=0.01,
                      times=2),
        ]
    else:  # queue
        rules = [
            FaultRule(site="worker.execute", kind="crash", scope="shared",
                      times=1),
            corrupt,
            FaultRule(site="queue.heartbeat", kind="delay", delay=0.02,
                      times=2),
        ]
    return FaultPlan(rules=rules, seed=23, state_dir=state_dir)


def run_backend(backend: str, tmp: str) -> list[bytes]:
    from repro.backends.local import LocalPoolBackend, SerialBackend
    from repro.backends.queue import QueueBackend
    from repro.reliability import RetryPolicy

    state_dir = os.path.join(tmp, f"fuses-{backend}")
    os.environ["REPRO_FAULT_PLAN"] = plan_for(backend, state_dir).to_json()
    retry = RetryPolicy(max_attempts=3, base_delay=0.01)
    try:
        if backend == "serial":
            outcomes = SerialBackend(retry=retry).run_specs(build_specs())
        elif backend == "local-pool":
            outcomes = LocalPoolBackend(max_workers=2, retry=retry) \
                .run_specs(build_specs())
        else:
            # Queue workers inherit the plan via the environment; a
            # short lease keeps crash recovery quick.
            outcomes = QueueBackend(workers=2, poll=0.05, lease=1.5,
                                    timeout=300.0) \
                .run_specs(build_specs(), use_cache=True)
    finally:
        os.environ.pop("REPRO_FAULT_PLAN", None)

    failures = [o.row() for o in outcomes if isinstance(o, SpecFailure)]
    assert not failures, f"{backend}: specs failed under chaos: {failures}"
    return [json.dumps(o.estimates_dict(), sort_keys=True).encode()
            for o in outcomes]


def check_queue_invariants() -> None:
    from repro.backends import FileWorkQueue

    queue = FileWorkQueue()
    names = {FileWorkQueue.job_name(spec) for spec in build_specs()}
    for name in sorted(names):
        done = queue._path("done", name).exists()
        failed = queue._path("failed", name).exists()
        assert done and not failed, \
            f"job {name}: done={done} failed={failed}"
    counts = queue.counts()
    assert counts["pending"] == 0 and counts["claimed"] == 0, counts


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        os.environ["REPRO_ARTIFACT_DIR"] = os.path.join(tmp, "artifacts")
        os.environ["REPRO_QUEUE_DIR"] = os.path.join(tmp, "queue")
        os.environ.pop("REPRO_BACKEND", None)

        golden = [json.dumps(r.estimates_dict(), sort_keys=True).encode()
                  for r in Session(use_cache=False).run_batch(build_specs())]
        print(f"golden: {len(golden)} fault-free results")

        for backend in ("serial", "local-pool", "queue"):
            rows = run_backend(backend, tmp)
            assert rows == golden, \
                f"{backend} diverged from fault-free run under chaos"
            print(f"  {backend:<10} survived crash/corrupt/stall, "
                  f"bit-identical ({len(rows)} results)")
        check_queue_invariants()
        print("queue invariants hold: one terminal record per job, "
              "nothing lost or in flight")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
