#!/usr/bin/env python3
"""SMARTS versus SimPoint on one benchmark (Section 5.3, Figure 8).

Runs both estimators on the same benchmark and machine and compares
their CPI estimates against a full-stream reference:

* SimPoint: offline basic-block-vector clustering picks a handful of
  large representative regions, each simulated once and weighted.
* SMARTS: systematic sampling of many tiny units with functional
  warming, plus a quantified confidence interval — expressed here as a
  RunSpec executed through the ``repro.api`` session layer.

Run:  python examples/simpoint_comparison.py
"""

from repro.api import (
    RunSpec,
    Session,
    SystematicStrategy,
    get_benchmark,
    resolve_machine,
    run_reference,
    run_simpoint,
)

BENCHMARK = "bzip2.syn"
SCALE = 0.2


def main() -> None:
    machine = resolve_machine("8-way")
    benchmark = get_benchmark(BENCHMARK, scale=SCALE)
    print(f"Benchmark: {benchmark.name}, machine: {machine.name}\n")

    print("Reference (full-stream detailed simulation)...")
    reference = run_reference(benchmark.program, machine)
    print(f"  true CPI = {reference.cpi:.4f}\n")

    print("SimPoint (BBV clustering, large representative intervals)...")
    simpoint = run_simpoint(benchmark.program, machine,
                            interval_size=2500, max_clusters=8)
    simpoint_error = (simpoint.cpi - reference.cpi) / reference.cpi
    print(f"  clusters chosen     : {simpoint.num_clusters}")
    print(f"  intervals simulated : {len(simpoint.simpoints)} x "
          f"{simpoint.interval_size} instructions")
    print(f"  CPI estimate        : {simpoint.cpi:.4f}  "
          f"(error {simpoint_error:+.2%}, no confidence bound)\n")

    print("SMARTS (systematic sampling + functional warming)...")
    session = Session()
    smarts = session.run(RunSpec(
        benchmark=BENCHMARK,
        machine="8-way",
        strategy=SystematicStrategy(unit_size=50, n_init=300, max_rounds=2),
        scale=SCALE,
        metric="cpi",
        epsilon=0.075,
        benchmark_length=reference.instructions,
    ))
    smarts_error = (smarts.estimate_mean - reference.cpi) / reference.cpi
    print(f"  sampling units      : {smarts.sample_size} x "
          f"{smarts.spec.strategy.unit_size} instructions")
    print(f"  CPI estimate        : {smarts.estimate_mean:.4f}  "
          f"(error {smarts_error:+.2%}, "
          f"99.7% CI ±{smarts.confidence_interval:.2%})")

    print("\nSummary: SMARTS reports how much to trust its estimate; "
          "SimPoint cannot, and its error depends on whether similarly "
          "profiled regions really behave alike on this machine.")


if __name__ == "__main__":
    main()
