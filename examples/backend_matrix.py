#!/usr/bin/env python3
"""Backend matrix: one spec grid, three executors, identical bytes.

The session layer executes cache misses through a pluggable
:class:`repro.backends.ExecutorBackend`:

* ``serial``     — in-process, one spec at a time (the debug shape),
* ``local-pool`` — a fork-based process pool (the single-host default),
* ``queue``      — a file-based work queue drained by separate
  ``repro-smarts worker`` processes, sharing checkpoints and results
  through the content-addressed artifact store (the multi-host shape).

Because every RunSpec is deterministic, the backend is purely an
execution-topology choice: this example runs a small fig6-style grid
(two benchmarks x two machines) through all three and asserts the
``estimates_dict()`` payloads are byte-equal after JSON serialization.
CI runs this as the backend-matrix smoke test.

Run:  python examples/backend_matrix.py
"""

import json
import os
import tempfile

from repro.api import RunSpec, Session, SystematicStrategy

BENCHMARKS = ("gzip.syn", "mcf.syn")
MACHINES = ("8-way", "16-way")
SCALE = 0.05


def build_grid() -> list[RunSpec]:
    return [
        RunSpec(
            benchmark=benchmark,
            machine=machine,
            strategy=SystematicStrategy(unit_size=25, n_init=60,
                                        max_rounds=1, detailed_warming=50),
            scale=SCALE,
            epsilon=0.5,
        )
        for benchmark in BENCHMARKS
        for machine in MACHINES
    ]


def run_backend(name: str, workers: int | None) -> list[bytes]:
    """Run the grid on one backend; returns serialized estimate rows.

    Caching is off so every backend genuinely executes its specs (the
    point is comparing executors, not cache hits).
    """
    session = Session(use_cache=False, backend=name, max_workers=workers)
    results = session.run_batch(build_grid())
    return [json.dumps(r.estimates_dict(), sort_keys=True).encode()
            for r in results]


def main() -> int:
    # Shared scratch store + queue: the spawned queue workers inherit
    # these via the environment, exactly like a worker fleet would.
    with tempfile.TemporaryDirectory(prefix="repro-backend-matrix-") as tmp:
        os.environ["REPRO_ARTIFACT_DIR"] = os.path.join(tmp, "artifacts")
        os.environ["REPRO_QUEUE_DIR"] = os.path.join(tmp, "queue")
        os.environ.pop("REPRO_BACKEND", None)

        print(f"grid: {len(build_grid())} specs "
              f"({'/'.join(BENCHMARKS)} x {'/'.join(MACHINES)})")
        rows = {}
        for name, workers in (("serial", None), ("local-pool", 2),
                              ("queue", 2)):
            rows[name] = run_backend(name, workers)
            print(f"  {name:<10} done "
                  f"({len(rows[name])} results)")

        golden = rows["serial"]
        for name in ("local-pool", "queue"):
            assert rows[name] == golden, (
                f"{name} backend diverged from serial")
        print("all three backends byte-equal on estimates_dict() "
              f"({sum(len(b) for b in golden)} serialized bytes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
