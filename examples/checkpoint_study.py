#!/usr/bin/env python3
"""Checkpointed functional warming: pay the warming pass once, reuse it.

SMARTS runtime between sampling units is dominated by functional
warming (Table 6 of the paper).  The ``repro.checkpoint`` subsystem
removes that bottleneck across runs: one warming pass over a benchmark
snapshots architectural + warm microarchitectural state on a fixed
grid, and every later run — any strategy, any k/j/n, any
detailed-timing variation — restores at each selected unit instead of
re-fast-forwarding from instruction zero.

This study runs the same benchmark three ways and compares the
*instruction counts* each mode executed (wall-clock is machine noise;
counts are the honest metric):

1. serial functional warming (the baseline engine),
2. checkpointed, first run (pays the one-off build pass),
3. checkpointed, later runs (pure restore; also a different strategy,
   to show the set is shared across sampling designs).

Estimates are bit-identical in all cases — the study asserts it.

Run:  python examples/checkpoint_study.py
"""

import os
import tempfile

from repro.api import (
    CheckpointStore,
    RandomStrategy,
    RunSpec,
    Session,
    SystematicStrategy,
    resolve_benchmark,
    resolve_machine,
)

BENCHMARK = "gcc.syn"
#: Large enough that the inter-unit gap exceeds the detailed-warming
#: window W — below that, SMARTS degenerates to continuous detailed
#: simulation and there is no fast-forwarding to remove.
SCALE = 0.6


def describe(label: str, result) -> None:
    print(f"\n{label}")
    print(f"  CPI estimate         : {result.estimate_mean:.4f} "
          f"(±{result.confidence_interval:.2%})")
    print(f"  fast-forwarded       : {result.instructions_fastforwarded:,} "
          f"instructions")
    print(f"  restored (skipped)   : {result.instructions_restored:,} "
          f"instructions in {result.checkpoint_restores} restores")


def main() -> None:
    # Isolated stores so the study is self-contained and repeatable.
    # The checkpoint dir goes through the env var: that is where the
    # checkpoints="auto" runs below look, so the explicit build and the
    # auto runs genuinely share one set (and the repository's
    # .ckpt_cache/ stays untouched).
    os.environ.setdefault("REPRO_CHECKPOINT_DIR",
                          tempfile.mkdtemp(prefix="ckpt_study_"))
    session = Session(cache_dir=tempfile.mkdtemp(prefix="ckpt_study_runs_"))
    store = CheckpointStore()

    systematic = RunSpec(benchmark=BENCHMARK, scale=SCALE,
                         strategy=SystematicStrategy(unit_size=50, n_init=300,
                                                     max_rounds=2))
    print(f"Benchmark: {BENCHMARK} (scale {SCALE}), "
          f"machine {resolve_machine(systematic.machine).name}")

    serial = session.run(systematic)
    describe("1. serial functional warming", serial)

    # Build the checkpoint set explicitly (estimate --checkpoints or
    # checkpoints="auto" would do this on first use).
    program = resolve_benchmark(BENCHMARK, SCALE)
    machine = resolve_machine(systematic.machine)
    ckpt = store.get_or_build(program, machine, unit_size=50)
    print(f"\nCheckpoint set: {len(ckpt.snapshots)} snapshots every "
          f"{ckpt.stride * ckpt.unit_size} instructions "
          f"({ckpt.benchmark_length:,}-instruction warming pass, paid once)")

    restored = session.run(systematic.with_(checkpoints="auto"))
    describe("2. checkpointed systematic run", restored)

    random_run = session.run(RunSpec(
        benchmark=BENCHMARK, scale=SCALE, checkpoints="auto", seed=7,
        strategy=RandomStrategy(unit_size=50, sample_size=300)))
    describe("3. checkpointed random-sampling run (same set)", random_run)

    assert restored.estimates_dict() == serial.estimates_dict()
    saved = serial.instructions_fastforwarded - restored.instructions_fastforwarded
    share = saved / serial.instructions_fastforwarded if saved else 0.0
    print(f"\nBit-identical estimates; the checkpointed run warmed "
          f"{saved:,} fewer instructions ({share:.0%} of the serial "
          f"warming work).")


if __name__ == "__main__":
    main()
