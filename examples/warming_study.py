#!/usr/bin/env python3
"""Warming study: why functional warming matters (Sections 4.3-4.5).

Sweeps the detailed-warming length W for one benchmark, with and without
functional warming, and measures the resulting estimation bias against
per-unit ground truth from a full-stream reference simulation.  The
output reproduces the paper's qualitative story:

* with no warming at all the measurements are badly biased,
* detailed warming alone needs a large, benchmark-dependent (and a
  priori unknowable) W to remove that bias,
* functional warming plus a tiny, analytically bounded W removes it.

Run:  python examples/warming_study.py
"""

from repro import get_benchmark, run_reference, scaled_8way
from repro.core.procedure import analytic_warming_bound, recommended_warming
from repro.harness.bias import measure_bias
from repro.harness.reporting import format_table, percent

BENCHMARK = "gzip.syn"
SCALE = 0.2


def main() -> None:
    machine = scaled_8way()
    benchmark = get_benchmark(BENCHMARK, scale=SCALE)
    print(f"Benchmark: {benchmark.name}, machine: {machine.name}")
    print(f"Analytic worst-case W bound (store buffer x mem latency x IPC): "
          f"{analytic_warming_bound(machine):,} instructions")
    print(f"Recommended W with functional warming: "
          f"{recommended_warming(machine)} instructions\n")

    print("Running full-stream reference simulation for ground truth...")
    reference = run_reference(benchmark.program, machine)
    print(f"  true CPI = {reference.cpi:.4f} over "
          f"{reference.instructions:,} instructions\n")

    warming_values = [0, 32, 128, 512, 1024]
    rows = []
    for warming in warming_values:
        with_fw = measure_bias(
            benchmark.program, machine, reference,
            unit_size=50, target_sample_size=150,
            detailed_warming=warming, functional_warming=True, phases=3)
        without_fw = measure_bias(
            benchmark.program, machine, reference,
            unit_size=50, target_sample_size=150,
            detailed_warming=warming, functional_warming=False, phases=3)
        rows.append([
            warming,
            percent(with_fw.bias),
            percent(without_fw.bias),
        ])

    print(format_table(
        ["W (detailed warming)", "bias with functional warming",
         "bias without functional warming"],
        rows,
        title="Measurement bias vs warming strategy"))
    print("\nWith functional warming the bias collapses once W covers the "
          "pipeline; without it, the bias remains large and erratic —"
          " exactly the paper's argument for functional warming.")


if __name__ == "__main__":
    main()
