#!/usr/bin/env python3
"""Custom study: define a new experiment declaratively and run it.

Every table and figure of the paper is a registered
:class:`repro.api.Study` (see ``repro-smarts study ls``), and the same
machinery is open to new experiments: a study is just a *grid* of
RunSpecs plus an *analysis* over the executed ResultSet.  Registering
one gives it parallel batch execution, on-disk result caching,
checkpointed warming, tidy-row export, and the ``repro-smarts study``
CLI for free — no bespoke harness function needed.

This example sweeps the confidence-target epsilon for two benchmarks
and reports how the sampling cost (tuned sample size, measured
instructions) scales as the target tightens — the practical "how much
does precision cost?" question an architect asks before a sweep.

Run:  python examples/custom_study.py
"""

from repro.api import (
    ResultSet,
    RunSpec,
    Session,
    Study,
    StudyContext,
    SystematicStrategy,
    register_study,
)

BENCHMARKS = ["gcc.syn", "mcf.syn"]
EPSILONS = [0.20, 0.10, 0.05]
SCALE = 0.2


def precision_grid(ctx: StudyContext, epsilons=tuple(EPSILONS)) -> list:
    strategy = SystematicStrategy(unit_size=50, n_init=150, max_rounds=2)
    return [RunSpec(benchmark=name, strategy=strategy, scale=SCALE,
                    epsilon=epsilon)
            for name in BENCHMARKS
            for epsilon in epsilons]


def precision_analyze(ctx: StudyContext, results: ResultSet,
                      epsilons=tuple(EPSILONS)) -> dict:
    rows = []
    for result in results.sorted_by("benchmark", "epsilon"):
        rows.append([
            result.spec.benchmark,
            f"±{result.spec.epsilon:.0%}",
            result.sample_size,
            f"{result.instructions_measured:,}",
            f"±{result.confidence_interval:.2%}",
            "yes" if result.target_met else "no",
        ])
    # ResultSet aggregation: total measurement budget per benchmark.
    budget = results.groupby("benchmark").aggregate(
        measured=("instructions_measured", "sum"),
        runs=("estimate", "count"))
    from repro.api import format_table

    report = format_table(
        ["benchmark", "target", "n final", "measured instr.",
         "achieved CI", "met"],
        rows,
        title="Precision cost: sample size vs confidence target")
    return {"budget": budget, "report": report}


STUDY = register_study(Study(
    name="precision-cost",
    title="Sampling cost vs confidence target",
    grid=precision_grid,
    analyze=precision_analyze,
))


def main() -> None:
    session = Session()
    report = session.run_study(STUDY)
    print(report.report)
    print("\nMeasurement budget per benchmark:")
    for row in report.data["budget"]:
        print(f"  {row['benchmark']}: {row['measured']:,} instructions "
              f"across {row['runs']} runs")
    # Tidy rows of the executed grid, ready for a spreadsheet.
    print("\nTidy rows (CSV):")
    print(report.results.to_csv())


if __name__ == "__main__":
    main()
