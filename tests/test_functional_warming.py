"""Tests for functional warming and mode interaction.

Functional warming is the heart of SMARTS' accuracy story: caches, TLBs
and branch predictors must track the full instruction stream even while
the pipeline is being fast-forwarded, so that each measured sampling
unit starts from (nearly) correct long-history state.
"""

import pytest

from repro.detailed import DetailedSimulator, MicroarchState
from repro.functional import FunctionalCore, FunctionalWarmer
from repro.functional.warming import WARMING_OVERHEAD
from repro.isa import ProgramBuilder


class TestFunctionalWarmer:
    def test_warms_data_cache(self, machine_8way):
        b = ProgramBuilder("warm")
        b.data_word(0x3000, 5)
        b.addi("r1", "r0", 0x3000)
        b.load("r2", "r1", 0)
        b.halt()
        core = FunctionalCore(b.build())
        microarch = MicroarchState(machine_8way)
        warmer = FunctionalWarmer(microarch)
        core.run(10, warmer)
        assert microarch.hierarchy.l1d.probe(0x3000) is True
        assert warmer.instructions_warmed == 3  # addi, load, halt

    def test_warms_instruction_cache(self, machine_8way, micro):
        core = FunctionalCore(micro.program)
        microarch = MicroarchState(machine_8way)
        warmer = FunctionalWarmer(microarch)
        core.run(1000, warmer)
        assert microarch.hierarchy.l1i.stats.accesses == 1000
        assert microarch.hierarchy.l1i.resident_blocks() > 0

    def test_warms_branch_predictor(self, machine_8way):
        b = ProgramBuilder("warm")
        b.addi("r1", "r0", 50)
        b.label("top")
        b.addi("r1", "r1", -1)
        b.bne("r1", "r0", "top")
        b.halt()
        core = FunctionalCore(b.build())
        microarch = MicroarchState(machine_8way)
        warmer = FunctionalWarmer(microarch)
        core.run(1000, warmer)
        # The loop branch should now be strongly predicted taken.
        assert microarch.branch_unit.predictor.predict(2) is True
        # BTB knows the loop target.
        assert microarch.branch_unit.btb.lookup(2) == 1

    def test_warming_overhead_constant_matches_paper(self):
        assert WARMING_OVERHEAD == pytest.approx(0.75)


class TestModeInteraction:
    def test_warmed_state_reduces_misses_in_detailed_mode(self, machine_8way, micro):
        """A detailed run that starts after functional warming should see
        far fewer cold misses than one starting from cold state."""
        skip = 5000
        measure = 1000

        # Cold: fast-forward without warming, then simulate in detail.
        core_cold = FunctionalCore(micro.program)
        core_cold.run(skip)
        cold_state = MicroarchState(machine_8way)
        cold_counters = DetailedSimulator(machine_8way, cold_state) \
            .simulate(core_cold, measure)

        # Warm: fast-forward with functional warming over the same stream.
        core_warm = FunctionalCore(micro.program)
        warm_state = MicroarchState(machine_8way)
        core_warm.run(skip, FunctionalWarmer(warm_state))
        warm_counters = DetailedSimulator(machine_8way, warm_state) \
            .simulate(core_warm, measure)

        assert warm_counters.l1d_misses <= cold_counters.l1d_misses
        assert warm_counters.mispredictions <= cold_counters.mispredictions

    def test_warming_matches_detailed_cache_contents_approximately(
            self, machine_8way, micro):
        """Functional warming and detailed simulation of the same stream
        should leave the caches with similar miss statistics (the paper's
        premise that in-order warming is a good proxy)."""
        count = 4000

        core_a = FunctionalCore(micro.program)
        state_a = MicroarchState(machine_8way)
        core_a.run(count, FunctionalWarmer(state_a))

        core_b = FunctionalCore(micro.program)
        state_b = MicroarchState(machine_8way)
        DetailedSimulator(machine_8way, state_b).simulate(core_b, count)

        rate_a = state_a.hierarchy.l1d.stats.miss_rate
        rate_b = state_b.hierarchy.l1d.stats.miss_rate
        assert rate_a == pytest.approx(rate_b, abs=0.05)

    def test_microarch_state_flush(self, machine_8way, micro):
        core = FunctionalCore(micro.program)
        microarch = MicroarchState(machine_8way)
        core.run(2000, FunctionalWarmer(microarch))
        assert microarch.hierarchy.l1d.resident_blocks() > 0
        microarch.flush()
        assert microarch.hierarchy.l1d.resident_blocks() == 0
        assert microarch.branch_unit.branches == 0

    def test_stats_summary_keys(self, machine_8way):
        microarch = MicroarchState(machine_8way)
        summary = microarch.stats_summary()
        assert "l1d_miss_rate" in summary
        assert "branch_misprediction_rate" in summary
