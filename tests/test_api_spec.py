"""Tests for the repro.api contracts: strategies, RunSpec, RunResult."""

import json

import pytest

from repro.api import (
    STRATEGIES,
    AdaptiveStrategy,
    RandomStrategy,
    RunResult,
    RunSpec,
    SamplingStrategy,
    StratifiedStrategy,
    SystematicStrategy,
    get_strategy,
    register_strategy,
    strategy_from_dict,
)
from repro.core.estimates import UnitRecord


class TestStrategyRegistry:
    def test_builtin_strategies_registered(self):
        assert STRATEGIES["systematic"] is SystematicStrategy
        assert STRATEGIES["adaptive"] is AdaptiveStrategy
        assert STRATEGIES["random"] is RandomStrategy
        assert STRATEGIES["stratified"] is StratifiedStrategy

    def test_get_strategy_dispatch(self):
        assert get_strategy("systematic") is SystematicStrategy
        assert get_strategy("random") is RandomStrategy

    def test_get_strategy_unknown(self):
        with pytest.raises(KeyError, match="unknown strategy"):
            get_strategy("quantum")

    def test_strategy_roundtrip_through_dict(self):
        strategy = RandomStrategy(unit_size=25, sample_size=77, seed_offset=3)
        rebuilt = strategy_from_dict(strategy.to_dict())
        assert rebuilt == strategy
        assert isinstance(rebuilt, RandomStrategy)

    def test_from_params_rejects_unknown_parameters(self):
        with pytest.raises(ValueError, match="unknown parameters"):
            strategy_from_dict({"name": "systematic",
                                "params": {"warp_factor": 9}})

    def test_duplicate_name_rejected(self):
        from dataclasses import dataclass
        from typing import ClassVar

        with pytest.raises(ValueError, match="already registered"):
            @register_strategy
            @dataclass(frozen=True)
            class Impostor(SamplingStrategy):
                name: ClassVar[str] = "systematic"

                def run(self, *args, **kwargs):
                    raise NotImplementedError

    def test_custom_strategy_registration(self):
        from dataclasses import dataclass
        from typing import ClassVar

        @register_strategy
        @dataclass(frozen=True)
        class EveryNth(SamplingStrategy):
            name: ClassVar[str] = "test-every-nth"
            n: int = 10

            def run(self, *args, **kwargs):
                raise NotImplementedError

        try:
            assert get_strategy("test-every-nth") is EveryNth
            assert strategy_from_dict(
                {"name": "test-every-nth", "params": {"n": 4}}) == EveryNth(n=4)
        finally:
            del STRATEGIES["test-every-nth"]


class TestRunSpec:
    def test_json_roundtrip_equality(self):
        spec = RunSpec(
            benchmark="gcc.syn",
            machine="16-way",
            strategy=StratifiedStrategy(unit_size=25, sample_size=120,
                                        max_phases=4),
            scale=0.1,
            metric="epi",
            seed=42,
            epsilon=0.05,
            confidence=0.95,
            benchmark_length=123456,
        )
        payload = json.dumps(spec.to_dict())
        rebuilt = RunSpec.from_dict(json.loads(payload))
        assert rebuilt == spec
        assert rebuilt.key() == spec.key()

    def test_key_distinguishes_specs(self):
        base = RunSpec(benchmark="gcc.syn")
        assert base.key() != base.with_(seed=1).key()
        assert base.key() != base.with_(machine="16-way").key()
        assert base.key() != base.with_(
            strategy=RandomStrategy()).key()
        # Same content, fresh objects -> same key.
        assert base.key() == RunSpec(benchmark="gcc.syn").key()

    def test_adaptive_spec_json_and_cache_key_roundtrip(self):
        """An adaptive RunSpec must survive serialization with its key
        (the run-result cache and the server both depend on it)."""
        spec = RunSpec(
            benchmark="mcf.syn",
            strategy=AdaptiveStrategy(unit_size=25, n_min=10, n_max=200,
                                      batch_size=40, detailed_warming=64),
            scale=0.1,
            epsilon=0.05,
        )
        payload = json.dumps(spec.to_dict())
        rebuilt = RunSpec.from_dict(json.loads(payload))
        assert rebuilt == spec
        assert rebuilt.strategy == spec.strategy
        assert rebuilt.key() == spec.key()
        # Guards are part of the identity: changing one changes the key.
        assert spec.key() != spec.with_(
            strategy=AdaptiveStrategy(unit_size=25, n_min=10, n_max=None,
                                      batch_size=40,
                                      detailed_warming=64)).key()

    def test_adaptive_guard_validation(self):
        with pytest.raises(ValueError, match="n_min"):
            AdaptiveStrategy(n_min=1)
        with pytest.raises(ValueError, match="batch_size"):
            AdaptiveStrategy(batch_size=0)
        with pytest.raises(ValueError, match="n_max"):
            AdaptiveStrategy(n_min=30, n_max=10)

    def test_strategy_dict_coerced(self):
        spec = RunSpec(benchmark="gcc.syn",
                       strategy={"name": "random", "params": {"sample_size": 9}})
        assert spec.strategy == RandomStrategy(sample_size=9)

    def test_validation(self):
        with pytest.raises(ValueError, match="metric"):
            RunSpec(benchmark="gcc.syn", metric="ipc")
        with pytest.raises(ValueError, match="scale"):
            RunSpec(benchmark="gcc.syn", scale=0)


class TestRunResult:
    def _result(self) -> RunResult:
        spec = RunSpec(benchmark="gcc.syn", scale=0.05)
        return RunResult(
            spec=spec,
            estimate_mean=1.5,
            estimate_cv=0.3,
            confidence_interval=0.04,
            target_met=True,
            sample_size=100,
            population_size=400,
            benchmark_length=20000,
            rounds=2,
            round_estimates=[
                {"sample_size": 60, "mean": 1.52, "cv": 0.31, "ci": 0.09},
                {"sample_size": 100, "mean": 1.5, "cv": 0.3, "ci": 0.04},
            ],
            tuned_sample_sizes=[100],
            instructions_measured=8000,
            detailed_fraction=0.4,
            wall_seconds=1.25,
            units=[UnitRecord(index=3, instructions=50, cycles=75, energy=1.0)],
            strategy_info={"phases": 3},
        )

    def test_json_roundtrip_equality(self):
        result = self._result()
        assert RunResult.from_json(result.to_json()) == result

    def test_initial_estimate_and_summary(self):
        result = self._result()
        assert result.initial_estimate["sample_size"] == 60
        summary = result.summary()
        assert summary["estimate"] == 1.5
        assert summary["strategy"] == "systematic"
        assert summary["rounds"] == 2
