"""Tests for the Wattch-style energy model."""

import pytest

from repro.config import scaled_16way, scaled_8way
from repro.detailed import DetailedSimulator, MicroarchState, PipelineCounters
from repro.energy import EnergyModel, EnergyParameters
from repro.functional import FunctionalCore


class TestEnergyParameters:
    def test_derived_from_config(self):
        params = EnergyParameters.from_config(scaled_8way())
        assert params.l2 > params.l1d > 0
        assert params.mem > params.l2
        assert params.fpmult > params.ialu

    def test_wider_machine_costs_more_per_cycle(self):
        p8 = EnergyParameters.from_config(scaled_8way())
        p16 = EnergyParameters.from_config(scaled_16way())
        assert p16.clock_per_cycle > p8.clock_per_cycle
        assert p16.l1d > p8.l1d          # larger caches cost more per access


class TestEnergyModel:
    def _counters(self, **overrides) -> PipelineCounters:
        counters = PipelineCounters(
            instructions=1000, cycles=1500, fetch_accesses=400,
            loads=200, stores=100, l1d_accesses=300, l1d_misses=30,
            l2_accesses=30, l2_misses=5, branches=150, mispredictions=10,
            ialu_ops=400, imult_ops=20, fpalu_ops=50, fpmult_ops=10,
            regfile_reads=1500, regfile_writes=800, window_inserts=1000)
        for key, value in overrides.items():
            setattr(counters, key, value)
        return counters

    def test_total_is_sum_of_breakdown(self):
        model = EnergyModel(scaled_8way())
        counters = self._counters()
        breakdown = model.energy_breakdown(counters)
        assert model.total_energy(counters) == pytest.approx(sum(breakdown.values()))

    def test_epi_positive_and_scales_with_cycles(self):
        model = EnergyModel(scaled_8way())
        short = self._counters(cycles=1200)
        long = self._counters(cycles=5000)
        assert model.epi(short) > 0
        assert model.epi(long) > model.epi(short)

    def test_memory_misses_increase_energy(self):
        model = EnergyModel(scaled_8way())
        few = self._counters(l2_misses=0)
        many = self._counters(l2_misses=25)
        assert model.total_energy(many) > model.total_energy(few)

    def test_zero_instructions(self):
        model = EnergyModel(scaled_8way())
        assert model.epi(PipelineCounters()) == 0.0

    def test_epi_from_real_simulation(self, machine_8way, micro):
        core = FunctionalCore(micro.program)
        counters = DetailedSimulator(machine_8way, MicroarchState(machine_8way)) \
            .simulate(core)
        model = EnergyModel(machine_8way)
        epi = model.epi(counters)
        assert epi > 0
        # EPI has a per-instruction floor (fetch/decode/ALU) so it cannot
        # be arbitrarily small; and clock energy bounds it above by CPI.
        assert 0.1 < epi < 100.0

    def test_epi_variability_smaller_than_cpi_variability(self, machine_8way, micro):
        """EPI should vary less than CPI across units (the paper observes
        tighter EPI confidence intervals for the same sample)."""
        core = FunctionalCore(micro.program)
        microarch = MicroarchState(machine_8way)
        sim = DetailedSimulator(machine_8way, microarch)
        model = EnergyModel(machine_8way)
        sim.begin_period()
        cpis, epis = [], []
        while True:
            counters = sim.run(core, 100)
            if counters.instructions < 100:
                break
            cpis.append(counters.cpi)
            epis.append(model.epi(counters))
        import numpy as np
        cv_cpi = np.std(cpis) / np.mean(cpis)
        cv_epi = np.std(epis) / np.mean(epis)
        assert cv_epi < cv_cpi
