"""Tests for the detailed out-of-order timing model.

These tests check the *timing behaviour* the SMARTS experiments rely on:
dependences and long latencies slow execution down, cache misses and
branch mispredictions cost cycles, wide independent code approaches the
machine width, and counters stay consistent.
"""

import pytest

from repro.detailed import DetailedSimulator, MicroarchState
from repro.functional import FunctionalCore
from repro.isa import ProgramBuilder


def simulate(builder: ProgramBuilder, machine, count=None):
    program = builder.build()
    core = FunctionalCore(program)
    microarch = MicroarchState(machine)
    sim = DetailedSimulator(machine, microarch)
    counters = sim.simulate(core, count)
    return counters, microarch


def loop_program(body_emitter, iterations=200, name="loop"):
    """Build a counted loop around ``body_emitter(builder)``."""
    b = ProgramBuilder(name)
    b.addi("r20", "r0", iterations)
    b.label("top")
    body_emitter(b)
    b.addi("r20", "r20", -1)
    b.bne("r20", "r0", "top")
    b.halt()
    return b


class TestBasicTiming:
    def test_counters_consistency(self, machine_8way, micro):
        core = FunctionalCore(micro.program)
        sim = DetailedSimulator(machine_8way, MicroarchState(machine_8way))
        counters = sim.simulate(core)
        assert counters.instructions > 0
        assert counters.cycles > 0
        assert counters.loads + counters.stores <= counters.instructions
        assert counters.mispredictions <= counters.branches
        assert counters.l1d_misses <= counters.l1d_accesses
        assert counters.l2_misses <= counters.l2_accesses

    def test_independent_alu_achieves_ilp(self, machine_8way):
        def body(b):
            for i in range(1, 9):
                b.addi(f"r{i}", "r0", i)
        counters, _ = simulate(loop_program(body), machine_8way)
        assert counters.cpi < 1.0      # 8-wide machine, independent ops

    def test_dependent_chain_is_serialized(self, machine_8way):
        def body(b):
            for _ in range(8):
                b.add("r1", "r1", "r2")
        counters, _ = simulate(loop_program(body), machine_8way)
        # A fully dependent chain cannot beat one instruction per cycle on
        # the ALU ops (plus loop overhead).
        assert counters.cpi > 0.8

    def test_long_latency_divides_dominate(self, machine_8way):
        def fast_body(b):
            for _ in range(4):
                b.add("r1", "r1", "r2")

        def slow_body(b):
            for _ in range(4):
                b.div("r1", "r1", "r3")

        fast = loop_program(fast_body, name="fast")
        slow = loop_program(slow_body, name="slow")
        # Initialize divisor register before the loop for the slow case.
        counters_fast, _ = simulate(fast, machine_8way)
        b = ProgramBuilder("slow")
        b.addi("r3", "r0", 3)
        b.addi("r1", "r0", 1 << 20)
        b.addi("r20", "r0", 200)
        b.label("top")
        for _ in range(4):
            b.div("r1", "r1", "r3")
        b.addi("r1", "r1", 1 << 20)
        b.addi("r20", "r20", -1)
        b.bne("r20", "r0", "top")
        b.halt()
        counters_slow, _ = simulate(b, machine_8way)
        assert counters_slow.cpi > 2 * counters_fast.cpi


class TestMemoryBehaviour:
    def test_cache_resident_loads_are_fast(self, machine_8way):
        b = ProgramBuilder("hot")
        b.data_block(0x1000, list(range(8)))
        b.addi("r20", "r0", 300)
        b.label("top")
        b.addi("r1", "r0", 0x1000)
        for i in range(8):
            b.load("r2", "r1", i * 8)
        b.addi("r20", "r20", -1)
        b.bne("r20", "r0", "top")
        b.halt()
        counters, _ = simulate(b, machine_8way)
        assert counters.l1d_misses / counters.l1d_accesses < 0.01
        assert counters.cpi < 2.0

    def test_pointer_chase_misses_and_is_slow(self, machine_8way):
        # A working set far larger than L2, accessed with no locality.
        b = ProgramBuilder("chase")
        nodes = 2048
        spacing = 64
        base = 0x10000
        import random
        rng = random.Random(1)
        order = list(range(nodes))
        rng.shuffle(order)
        for i in range(nodes):
            b.data_word(base + order[i] * spacing,
                        base + order[(i + 1) % nodes] * spacing)
        b.addi("r1", "r0", base + order[0] * spacing)
        b.addi("r20", "r0", 3000)
        b.label("top")
        b.load("r1", "r1", 0)
        b.addi("r20", "r20", -1)
        b.bne("r20", "r0", "top")
        b.halt()
        counters, microarch = simulate(b, machine_8way)
        assert microarch.hierarchy.l1d.stats.miss_rate > 0.5
        assert counters.cpi > 10.0     # ~100-cycle memory per 3 instructions

    def test_streaming_misses_cheaper_than_random(self, machine_8way):
        def stream_body(b):
            b.load("r2", "r1", 0)
            b.addi("r1", "r1", 8)

        b = ProgramBuilder("stream")
        b.addi("r1", "r0", 0x40000)
        b.addi("r20", "r0", 4000)
        b.label("top")
        stream_body(b)
        b.addi("r20", "r20", -1)
        b.bne("r20", "r0", "top")
        b.halt()
        counters, microarch = simulate(b, machine_8way)
        # Sequential blocks: one miss per 4 words (32B blocks / 8B words).
        assert 0.1 < microarch.hierarchy.l1d.stats.miss_rate < 0.5

    def test_store_heavy_code_exercises_store_buffer(self, machine_8way):
        b = ProgramBuilder("stores")
        b.addi("r1", "r0", 0x80000)
        b.addi("r20", "r0", 3000)
        b.label("top")
        b.store("r20", "r1", 0)
        b.addi("r1", "r1", 64)        # new block every store
        b.addi("r20", "r20", -1)
        b.bne("r20", "r0", "top")
        b.halt()
        counters, _ = simulate(b, machine_8way)
        assert counters.stores == 3000
        assert counters.store_buffer_stalls > 0


class TestBranchTiming:
    def test_predictable_branches_are_cheap(self, machine_8way):
        def body(b):
            b.addi("r1", "r1", 1)
        counters, _ = simulate(loop_program(body, iterations=2000), machine_8way)
        assert counters.mispredictions / counters.branches < 0.05

    def test_random_branches_cost_cycles(self, machine_8way):
        import random
        rng = random.Random(3)
        b = ProgramBuilder("rand")
        elems = 1024
        b.data_block(0x2000, [rng.randrange(2) for _ in range(elems)])
        b.addi("r1", "r0", 0x2000)
        b.addi("r20", "r0", elems)
        b.label("top")
        b.load("r2", "r1", 0)
        b.beq("r2", "r0", "skip")
        b.addi("r3", "r3", 1)
        b.label("skip")
        b.addi("r1", "r1", 8)
        b.addi("r20", "r20", -1)
        b.bne("r20", "r0", "top")
        b.halt()
        counters, _ = simulate(b, machine_8way)
        assert counters.mispredictions / counters.branches > 0.1

        # The same loop with an always-taken branch should run faster.
        b2 = ProgramBuilder("biased")
        b2.data_block(0x2000, [1] * elems)
        b2.addi("r1", "r0", 0x2000)
        b2.addi("r20", "r0", elems)
        b2.label("top")
        b2.load("r2", "r1", 0)
        b2.beq("r2", "r0", "skip")
        b2.addi("r3", "r3", 1)
        b2.label("skip")
        b2.addi("r1", "r1", 8)
        b2.addi("r20", "r20", -1)
        b2.bne("r20", "r0", "top")
        b2.halt()
        counters_biased, _ = simulate(b2, machine_8way)
        assert counters_biased.cpi < counters.cpi


class TestWidthScaling:
    def test_16way_is_not_slower_than_8way(self, machine_8way, machine_16way, micro):
        core8 = FunctionalCore(micro.program)
        cpi8 = DetailedSimulator(machine_8way, MicroarchState(machine_8way)) \
            .simulate(core8).cpi
        core16 = FunctionalCore(micro.program)
        cpi16 = DetailedSimulator(machine_16way, MicroarchState(machine_16way)) \
            .simulate(core16).cpi
        # The 16-way machine has double the width, window and caches; it
        # should not lose on the same program (small tolerance for its
        # longer L1/L2 latencies).
        assert cpi16 <= cpi8 * 1.1


class TestPeriodManagement:
    def test_begin_period_resets_pipeline_clock(self, machine_8way, micro):
        core = FunctionalCore(micro.program)
        microarch = MicroarchState(machine_8way)
        sim = DetailedSimulator(machine_8way, microarch)
        sim.begin_period()
        first = sim.run(core, 500)
        assert sim.current_cycle == first.cycles
        sim.begin_period()
        assert sim.current_cycle == 0

    def test_consecutive_runs_accumulate_within_period(self, machine_8way, micro):
        core = FunctionalCore(micro.program)
        microarch = MicroarchState(machine_8way)
        sim = DetailedSimulator(machine_8way, microarch)
        sim.begin_period()
        a = sim.run(core, 300)
        b = sim.run(core, 300)
        assert sim.current_cycle == a.cycles + b.cycles

    def test_run_stops_at_program_end(self, machine_8way, micro):
        core = FunctionalCore(micro.program)
        sim = DetailedSimulator(machine_8way, MicroarchState(machine_8way))
        counters = sim.simulate(core, count=10_000_000)
        assert counters.instructions < 10_000_000
        assert core.halted

    def test_determinism(self, machine_8way, micro):
        results = []
        for _ in range(2):
            core = FunctionalCore(micro.program)
            sim = DetailedSimulator(machine_8way, MicroarchState(machine_8way))
            results.append(sim.simulate(core).as_dict())
        assert results[0] == results[1]
