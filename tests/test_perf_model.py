"""Tests for the analytical simulation-speed model (Section 3.4)."""

import pytest

from repro.core.perf_model import (
    PAPER_SD_FUTURE,
    PAPER_SD_TODAY,
    PAPER_SFW,
    SamplingWorkload,
    SimulatorRates,
    detailed_runtime_seconds,
    effective_mips,
    effective_rate,
    functional_runtime_seconds,
    optimal_unit_size,
    paper_rate,
    rate_versus_warming,
    runtime_seconds,
    speedup_over_detailed,
)


def paper_workload(warming=2000, sample_size=10_000, unit_size=1000,
                   length=50_000_000_000):
    return SamplingWorkload(benchmark_length=length, sample_size=sample_size,
                            unit_size=unit_size, detailed_warming=warming)


class TestSimulatorRates:
    def test_paper_rates(self):
        rates = SimulatorRates.paper()
        assert rates.s_detailed == pytest.approx(1 / 60)
        assert rates.s_warming == pytest.approx(0.55)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatorRates(functional_ips=0, s_detailed=0.5, s_warming=0.5)
        with pytest.raises(ValueError):
            SimulatorRates(functional_ips=1e6, s_detailed=1.5, s_warming=0.5)
        with pytest.raises(ValueError):
            SimulatorRates(functional_ips=1e6, s_detailed=0.5, s_warming=0.0)


class TestSamplingWorkload:
    def test_instruction_accounting(self):
        workload = paper_workload()
        assert workload.detailed_instructions == 10_000 * 3000
        assert workload.fastforward_instructions == \
            workload.benchmark_length - workload.detailed_instructions
        assert 0 < workload.detailed_fraction < 1

    def test_fraction_capped_at_one(self):
        workload = SamplingWorkload(1000, 100, 50, 50)
        assert workload.detailed_fraction == 1.0


class TestPaperRate:
    def test_rate_between_sd_and_sf(self):
        rates = SimulatorRates.paper()
        rate = paper_rate(paper_workload(), rates)
        assert rates.s_detailed < rate <= 1.0

    def test_rate_decreases_with_warming(self):
        """Figure 4: increasing W drags the rate toward S_D."""
        rates = SimulatorRates.paper()
        sweep = rate_versus_warming(
            benchmark_length=50_000_000_000, sample_size=10_000, unit_size=1000,
            warming_values=[0, 10_000, 100_000, 1_000_000, 5_000_000],
            rates=rates)
        values = [rate for _, rate in sweep]
        assert values == sorted(values, reverse=True)
        assert values[-1] < 0.5 * values[0]

    def test_slower_detailed_simulator_collapses_sooner(self):
        """Figure 4: with S_D = 1/600 the rate collapses at smaller W."""
        today = SimulatorRates.paper(PAPER_SD_TODAY)
        future = SimulatorRates.paper(PAPER_SD_FUTURE)
        workload = paper_workload(warming=100_000)
        assert paper_rate(workload, future) < paper_rate(workload, today)

    def test_functional_warming_rate_insensitive_to_detailed_speed(self):
        """The SMARTS-with-functional-warming rate stays near S_FW."""
        rates_fast = SimulatorRates.paper(PAPER_SD_TODAY)
        rates_slow = SimulatorRates.paper(PAPER_SD_FUTURE)
        workload = paper_workload(warming=2000)
        rate_fast = paper_rate(workload, rates_fast, functional_warming=True)
        rate_slow = paper_rate(workload, rates_slow, functional_warming=True)
        assert rate_fast == pytest.approx(PAPER_SFW, rel=0.1)
        assert rate_slow == pytest.approx(rate_fast, rel=0.1)


class TestRuntimeAndSpeedup:
    def test_runtime_components(self):
        rates = SimulatorRates.paper()
        workload = paper_workload()
        total = runtime_seconds(workload, rates, functional_warming=True)
        detailed_only = workload.detailed_instructions / (
            rates.functional_ips * rates.s_detailed)
        assert total > detailed_only

    def test_speedup_is_large_at_paper_scale(self):
        """The paper reports ~35x speedup for the 8-way machine."""
        rates = SimulatorRates.paper()
        speedup = speedup_over_detailed(paper_workload(), rates,
                                        functional_warming=True)
        assert 10 < speedup < 120

    def test_effective_mips_exceeds_detailed_mips(self):
        rates = SimulatorRates.paper()
        mips = effective_mips(paper_workload(), rates, functional_warming=True)
        detailed_mips = rates.functional_ips * rates.s_detailed / 1e6
        assert mips > detailed_mips

    def test_full_stream_runtimes(self):
        rates = SimulatorRates(functional_ips=1e6, s_detailed=0.1, s_warming=0.5)
        assert functional_runtime_seconds(1_000_000, rates) == pytest.approx(1.0)
        assert detailed_runtime_seconds(1_000_000, rates) == pytest.approx(10.0)

    def test_effective_rate_consistent_with_runtime(self):
        rates = SimulatorRates(functional_ips=1e6, s_detailed=0.1, s_warming=0.5)
        workload = SamplingWorkload(1_000_000, 100, 100, 100)
        rate = effective_rate(workload, rates, functional_warming=True)
        seconds = runtime_seconds(workload, rates, functional_warming=True)
        assert rate == pytest.approx(
            (workload.benchmark_length / rates.functional_ips) / seconds)


class TestOptimalUnitSize:
    def test_zero_warming_prefers_smallest_unit(self):
        """Figure 5 (left): with W = 0 the smallest U minimizes work,
        because CV decreases too slowly to favour larger units."""
        cv = {10: 2.0, 100: 1.8, 1000: 1.5, 10000: 1.4}
        best, fractions = optimal_unit_size(10_000_000, cv, warming=0)
        assert best == 10
        assert fractions[10] < fractions[10000]

    def test_warming_pushes_optimum_upward(self):
        """Figure 5: larger W shifts the optimal U to larger values."""
        cv = {10: 2.0, 100: 1.8, 1000: 1.5, 10000: 1.4}
        best_small, _ = optimal_unit_size(10_000_000, cv, warming=0)
        best_large, _ = optimal_unit_size(10_000_000, cv, warming=100_000)
        assert best_large > best_small

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError):
            optimal_unit_size(100, {1000: 1.0}, warming=0)
