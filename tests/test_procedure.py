"""Tests for the two-step SMARTS estimation procedure (Section 5.1)."""

import pytest

from repro.core.procedure import (
    ProcedureResult,
    analytic_warming_bound,
    estimate_metric,
    recommended_warming,
)


class TestWarmingRecommendations:
    def test_analytic_bound_matches_paper_formula(self, machine_8way):
        expected = (machine_8way.store_buffer_entries
                    * machine_8way.mem_latency
                    * machine_8way.commit_width)
        assert analytic_warming_bound(machine_8way) == expected

    def test_paper_8way_bound_is_12800(self):
        from repro.config import table3_8way
        assert analytic_warming_bound(table3_8way()) == 12_800

    def test_recommended_far_below_analytic_bound(self, machine_8way,
                                                  machine_16way):
        for machine in (machine_8way, machine_16way):
            assert recommended_warming(machine) < analytic_warming_bound(machine)

    def test_recommended_scales_with_window(self, machine_8way, machine_16way):
        assert recommended_warming(machine_16way) == \
            2 * recommended_warming(machine_8way)
        assert recommended_warming(machine_8way) == 4 * machine_8way.ruu_size


class TestEstimateMetric:
    def test_basic_cpi_estimation(self, micro, machine_8way, micro_reference):
        result = estimate_metric(
            micro.program, machine_8way, metric="cpi",
            unit_size=25, detailed_warming=100, n_init=60,
            epsilon=0.2, max_rounds=1,
            benchmark_length=micro_reference.instructions)
        assert isinstance(result, ProcedureResult)
        assert result.metric == "cpi"
        assert result.estimate.mean > 0
        error = abs(result.estimate.mean - micro_reference.cpi) / micro_reference.cpi
        assert error < max(2 * result.confidence_interval, 0.10)

    def test_epi_estimation(self, micro, machine_8way, micro_reference):
        result = estimate_metric(
            micro.program, machine_8way, metric="epi",
            unit_size=25, detailed_warming=100, n_init=60,
            epsilon=0.2, max_rounds=1,
            benchmark_length=micro_reference.instructions)
        error = abs(result.estimate.mean - micro_reference.epi) / micro_reference.epi
        assert error < 0.25

    def test_second_round_triggered_when_target_missed(
            self, micro, machine_8way, micro_reference):
        result = estimate_metric(
            micro.program, machine_8way, metric="cpi",
            unit_size=25, detailed_warming=50, n_init=30,
            epsilon=0.02, max_rounds=2,
            benchmark_length=micro_reference.instructions)
        # A tiny initial sample cannot reach ±2% on this benchmark, so a
        # tuned second run must have been attempted with a larger sample.
        assert len(result.runs) == 2
        assert result.tuned_sample_sizes
        assert result.final_run.sample_size > result.initial_run.sample_size

    def test_single_round_when_target_met(self, micro, machine_8way,
                                           micro_reference):
        result = estimate_metric(
            micro.program, machine_8way, metric="cpi",
            unit_size=25, detailed_warming=50, n_init=100,
            epsilon=0.95, max_rounds=2,
            benchmark_length=micro_reference.instructions)
        assert len(result.runs) == 1
        assert result.target_met

    def test_default_warming_and_length_measurement(self, micro, machine_8way):
        # Omitting detailed_warming and benchmark_length exercises the
        # defaults (recommended warming; functional length measurement).
        result = estimate_metric(
            micro.program, machine_8way, metric="cpi",
            unit_size=25, n_init=40, epsilon=0.5, max_rounds=1)
        assert result.benchmark_length > 0
        assert result.final_run.detailed_warming == \
            recommended_warming(machine_8way)

    def test_invalid_metric(self, micro, machine_8way):
        with pytest.raises(ValueError):
            estimate_metric(micro.program, machine_8way, metric="ipc")

    def test_invalid_rounds(self, micro, machine_8way):
        with pytest.raises(ValueError):
            estimate_metric(micro.program, machine_8way, max_rounds=0)

    def test_summary_and_totals(self, micro, machine_8way, micro_reference):
        result = estimate_metric(
            micro.program, machine_8way, metric="cpi",
            unit_size=25, detailed_warming=50, n_init=40,
            epsilon=0.3, max_rounds=1,
            benchmark_length=micro_reference.instructions)
        summary = result.summary()
        assert summary["benchmark"] == micro.program.name
        assert summary["rounds"] == 1
        assert result.total_measured_instructions == \
            result.final_run.instructions_measured
        assert result.total_detailed_instructions >= \
            result.total_measured_instructions
