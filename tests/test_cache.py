"""Unit and property-based tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import SetAssociativeCache


class TestCacheBasics:
    def test_geometry(self):
        cache = SetAssociativeCache("c", 1024, 2, block_bytes=32)
        assert cache.num_sets == 16

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("c", 0, 2)
        with pytest.raises(ValueError):
            SetAssociativeCache("c", 64, 4, block_bytes=32)

    def test_first_access_misses_then_hits(self):
        cache = SetAssociativeCache("c", 1024, 2)
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True

    def test_same_block_different_offset_hits(self):
        cache = SetAssociativeCache("c", 1024, 2, block_bytes=32)
        cache.access(0x100)
        assert cache.access(0x100 + 31) is True
        assert cache.access(0x100 + 32) is False

    def test_stats(self):
        cache = SetAssociativeCache("c", 1024, 2)
        cache.access(0)
        cache.access(0)
        cache.access(4096)
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_probe_does_not_touch_state(self):
        cache = SetAssociativeCache("c", 1024, 2)
        assert cache.probe(0x40) is False
        cache.access(0x40)
        accesses = cache.stats.accesses
        assert cache.probe(0x40) is True
        assert cache.stats.accesses == accesses

    def test_flush(self):
        cache = SetAssociativeCache("c", 1024, 2)
        cache.access(0x40)
        cache.flush()
        assert cache.probe(0x40) is False
        assert cache.resident_blocks() == 0


class TestLRUReplacement:
    def test_lru_eviction_order(self):
        # 2-way cache with 1 set: 64 bytes, 2 ways, 32-byte blocks.
        cache = SetAssociativeCache("c", 64, 2, block_bytes=32)
        a, b, c = 0, 1000 * 32, 2000 * 32
        cache.access(a)
        cache.access(b)
        cache.access(a)          # a becomes MRU
        cache.access(c)          # evicts b (LRU)
        assert cache.probe(a) is True
        assert cache.probe(b) is False
        assert cache.probe(c) is True

    def test_direct_mapped_conflicts(self):
        cache = SetAssociativeCache("c", 64, 1, block_bytes=32)
        a = 0
        conflict = cache.num_sets * 32   # maps to the same set
        cache.access(a)
        cache.access(conflict)
        assert cache.probe(a) is False

    def test_capacity_never_exceeded(self):
        cache = SetAssociativeCache("c", 256, 4, block_bytes=32)
        for i in range(100):
            cache.access(i * 32)
        assert cache.resident_blocks() <= 8

    def test_writeback_counted_for_dirty_victims(self):
        cache = SetAssociativeCache("c", 64, 1, block_bytes=32)
        cache.access(0, is_write=True)
        cache.access(cache.num_sets * 32)     # evicts dirty block
        assert cache.stats.writebacks == 1
        assert cache.stats.evictions == 1

    def test_write_no_allocate(self):
        cache = SetAssociativeCache("c", 1024, 2, write_allocate=False)
        cache.access(0x40, is_write=True)
        assert cache.probe(0x40) is False

    def test_state_copy_restore(self):
        cache = SetAssociativeCache("c", 256, 2)
        for addr in (0, 64, 128):
            cache.access(addr)
        saved = cache.copy_state()
        cache.access(4096)
        cache.flush()
        cache.restore_state(saved)
        assert cache.probe(0) and cache.probe(64) and cache.probe(128)


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_bounded_and_repeat_hits(self, addresses):
        cache = SetAssociativeCache("c", 512, 2, block_bytes=32)
        for addr in addresses:
            cache.access(addr)
        assert cache.resident_blocks() <= 16
        # Re-access of the most recent address must hit.
        assert cache.access(addresses[-1]) is True

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                    max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_stats_consistency(self, addresses):
        cache = SetAssociativeCache("c", 256, 4, block_bytes=32)
        for addr in addresses:
            cache.access(addr)
        stats = cache.stats
        assert stats.accesses == len(addresses)
        assert 0 <= stats.misses <= stats.accesses
        assert stats.hits + stats.misses == stats.accesses

    @given(st.integers(min_value=0, max_value=1 << 24))
    @settings(max_examples=50, deadline=None)
    def test_working_set_smaller_than_cache_always_hits_after_warmup(self, base):
        cache = SetAssociativeCache("c", 1024, 2, block_bytes=32)
        addresses = [base + i * 32 for i in range(8)]
        for addr in addresses:
            cache.access(addr)
        assert all(cache.access(addr) for addr in addresses)
