"""Tests for the declarative study layer.

Covers the registry, `Session.run_study`, custom study registration,
and — the migration contract — golden equality of every migrated
study's payload against the legacy ``repro.harness.experiments`` entry
point (same data dictionary, byte-identical report) at miniature scale.
"""

import json

import pytest

from repro.api import (
    EXPERIMENT_NAMES,
    STUDIES,
    ResultSet,
    RunSpec,
    Session,
    Study,
    StudyContext,
    SystematicStrategy,
    get_study,
    register_study,
    run_study,
    study_names,
)
from repro.harness import experiments as legacy


@pytest.fixture(scope="module")
def tiny_ctx(tmp_path_factory):
    """A miniature study context with isolated on-disk caches.

    ``use_cache=True`` so the second execution of each study (the
    legacy-shim side of the golden comparison) hits the run-result
    cache instead of re-simulating.
    """
    mp = pytest.MonkeyPatch()
    base = tmp_path_factory.mktemp("study_caches")
    mp.setenv("REPRO_RUN_CACHE_DIR", str(base / "run"))
    mp.setenv("REPRO_CACHE_DIR", str(base / "ref"))
    mp.setenv("REPRO_CHECKPOINT_DIR", str(base / "ckpt"))
    ctx = StudyContext(
        scale=0.05,
        fast=True,
        suite_names=["gzip.syn", "mcf.syn"],
        unit_size=50,
        chunk_size=25,
        n_init=60,
        epsilon=0.2,
        use_cache=True,
    )
    yield ctx
    mp.undo()


class TestRegistry:
    def test_all_paper_experiments_are_registered(self):
        assert set(study_names()) == {
            "table3", "fig2", "fig3", "fig4", "fig5", "table4", "table5",
            "fig6", "fig7", "table6", "fig8", "ablation",
            "adaptive_vs_two_round"}
        assert EXPERIMENT_NAMES == study_names()

    def test_get_study_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown study"):
            get_study("fig99")

    def test_estimation_studies_have_grids(self):
        for name in ("fig6", "fig7", "fig8"):
            assert get_study(name).grid is not None
        for name in ("table3", "fig2", "table6"):
            assert get_study(name).grid is None

    def test_every_study_names_its_legacy_shim(self):
        for study in STUDIES.values():
            if study.legacy:  # post-harness studies (ablation) have none
                assert hasattr(legacy, study.legacy)

    def test_ablation_study_registered_without_grid(self):
        study = get_study("ablation")
        assert study.grid is None
        assert study.tidy is not None

    def test_ablation_study_payload(self, tiny_ctx):
        report = run_study("ablation", tiny_ctx)
        details = report.data["details"]
        assert set(details) == set(tiny_ctx.suite_names)
        for detail in details.values():
            assert {"delta", "systematic_rmse", "random_rmse",
                    "systematic_mean_error"} <= set(detail)
        assert "systematic vs simple random" in report.report
        rows = report.rows
        assert len(rows) == len(tiny_ctx.suite_names)
        assert {row["benchmark"] for row in rows} == set(details)

    def test_duplicate_name_rejected(self):
        clone = Study(name="fig6", title="imposter",
                      analyze=lambda ctx, results: {})
        with pytest.raises(ValueError, match="already registered"):
            register_study(clone)

    def test_reregistering_same_object_is_idempotent(self):
        study = get_study("fig6")
        assert register_study(study) is study

    def test_describe_row(self):
        row = get_study("fig6").describe()
        assert row == {"name": "fig6",
                       "title": "Figure 6: CPI estimation across the suite",
                       "has_grid": True,
                       "legacy": "figure6_cpi_estimates"}


class TestRunStudy:
    def test_custom_study_runs_through_session(self, tiny_ctx):
        def grid(ctx, epsilon=0.5):
            return [RunSpec(benchmark="micro.syn", scale=0.05,
                            epsilon=epsilon,
                            strategy=SystematicStrategy(
                                unit_size=25, n_init=20, max_rounds=1,
                                detailed_warming=50))]

        def analyze(ctx, results, epsilon=0.5):
            assert isinstance(results, ResultSet)
            return {"cpi": results[0].estimate_mean,
                    "report": f"micro CPI {results[0].estimate_mean:.3f}"}

        study = Study(name="micro-demo", title="demo", grid=grid,
                      analyze=analyze,
                      tidy=lambda data: [{"cpi": data["cpi"]}])
        session = Session(use_cache=False)
        report = session.run_study(study, ctx=tiny_ctx,
                                   params={"epsilon": 0.4})
        assert report.study == "micro-demo"
        assert report.data["cpi"] > 0
        assert report.rows == [{"cpi": report.data["cpi"]}]
        assert len(report.results) == 1
        assert report.results[0].spec.epsilon == 0.4
        assert "micro CPI" in report.report

    def test_report_row_export(self, tiny_ctx):
        report = run_study("table3", tiny_ctx)
        assert report.rows[0]["parameter"] == "RUU/LSQ"
        csv_text = report.rows_csv()
        assert csv_text.splitlines()[0] == "parameter,8-way,16-way"
        assert "RUU/LSQ" in report.rows_json()

    def test_analysis_only_params_need_no_grid_mirror(self, tiny_ctx):
        """A param only the analysis accepts must not reach the grid."""
        def grid(ctx):
            return []

        def analyze(ctx, results, label="default"):
            return {"label": label, "report": label}

        study = Study(name="param-split", title="demo", grid=grid,
                      analyze=analyze)
        report = Session(use_cache=False).run_study(
            study, ctx=tiny_ctx, params={"label": "custom"})
        assert report.data["label"] == "custom"

    def test_unknown_param_raises_before_running(self, tiny_ctx):
        study = Study(name="strict-params", title="demo",
                      analyze=lambda ctx, results: {"report": ""})
        with pytest.raises(TypeError, match="no parameter"):
            Session(use_cache=False).run_study(
                study, ctx=tiny_ctx, params={"typo": 1})

    def test_rows_json_handles_numpy_scalars(self):
        import numpy as np

        from repro.api import StudyReport

        report = StudyReport(study="x", title="x", data={}, rows=[
            {"a": np.float64(1.5), "b": np.int64(2),
             "c": np.array([1, 2])}])
        assert json.loads(report.rows_json()) == \
            [{"a": 1.5, "b": 2, "c": [1, 2]}]

    def test_grid_study_exposes_executed_results(self, tiny_ctx):
        report = run_study("fig6", tiny_ctx,
                           params={"machine_names": ("8-way",)})
        assert len(report.results) == len(tiny_ctx.suite_names)
        assert {r.spec.benchmark for r in report.results} == \
            set(tiny_ctx.suite_names)
        assert report.rows and report.rows[0]["machine"] == "8-way"


#: (study name, legacy entry point, params) — miniature-scale variants
#: of every migrated experiment.
GOLDEN_CASES = [
    ("table3", "table3_configurations", {}),
    ("fig2", "figure2_cv_curves", {"machine_name": "8-way"}),
    ("fig3", "figure3_minimum_instructions",
     {"machine_names": ("8-way",)}),
    ("fig4", "figure4_speed_model", {"benchmark_name": "gzip.syn"}),
    ("fig5", "figure5_optimal_unit_size",
     {"benchmark_names": ["gzip.syn"], "machine_name": "8-way"}),
    ("table4", "table4_detailed_warming",
     {"benchmark_names": ["gzip.syn"], "warming_values": [0, 128]}),
    ("table5", "table5_functional_warming_bias",
     {"machine_names": ("8-way",), "phases": 2}),
    ("fig6", "figure6_cpi_estimates", {"machine_names": ("8-way",)}),
    ("fig7", "figure7_epi_estimates", {"machine_names": ("8-way",)}),
    ("table6", "table6_runtimes", {"machine_name": "8-way"}),
    ("fig8", "figure8_simpoint_comparison",
     {"benchmark_names": ["gzip.syn"], "interval_size": 1500,
      "max_clusters": 4}),
]


class TestGoldenEquality:
    """Every migrated study reproduces the legacy harness output."""

    @pytest.mark.parametrize("name,legacy_name,params",
                             GOLDEN_CASES, ids=[c[0] for c in GOLDEN_CASES])
    def test_study_matches_legacy_entry_point(self, tiny_ctx, name,
                                              legacy_name, params):
        report = run_study(name, tiny_ctx, params=params)
        data = getattr(legacy, legacy_name)(tiny_ctx, **params)
        # measure_rates times real execution, so studies that embed it
        # (fig4, table6) can only be compared modulo that field and the
        # report lines derived from it.
        if name in ("fig4", "table6"):
            assert report.data.keys() == data.keys()
            for key in data:
                if key in ("measured_rates", "report"):
                    continue
                if name == "fig4" and key == "curves":
                    # The measured-rates curve depends on wall time.
                    assert data["curves"].keys() == \
                        report.data["curves"].keys()
                    continue
                if name == "table6" and key in ("details", "average_speedup",
                                                "paper_scale_average_speedup"):
                    # Runtime projections use the measured rates; only
                    # the structure is stable across measurements.
                    assert set(data["details"]) == set(report.data["details"])
                    continue
                assert report.data[key] == data[key], key
        else:
            assert report.data == data
            assert report.report == data["report"]
        assert report.rows, f"study {name} produced no tidy rows"
