"""Tests for the bias-measurement harness and the report formatting."""

import pytest

from repro.harness.bias import measure_bias, required_detailed_warming
from repro.harness.reporting import format_table, percent, unsigned_percent


class TestBiasMeasurement:
    def test_functional_warming_bias_is_small(self, micro, machine_8way,
                                              micro_reference):
        measurement = measure_bias(
            micro.program, machine_8way, micro_reference,
            unit_size=25, target_sample_size=100,
            detailed_warming=100, functional_warming=True, phases=2)
        assert len(measurement.phase_errors) == 2
        assert abs(measurement.bias) < 0.05
        assert measurement.true_value == pytest.approx(micro_reference.cpi)

    def test_no_warming_bias_is_larger(self, micro, machine_8way,
                                       micro_reference):
        warmed = measure_bias(
            micro.program, machine_8way, micro_reference,
            unit_size=25, target_sample_size=100,
            detailed_warming=100, functional_warming=True, phases=2)
        cold = measure_bias(
            micro.program, machine_8way, micro_reference,
            unit_size=25, target_sample_size=100,
            detailed_warming=0, functional_warming=False, phases=2)
        assert abs(cold.bias) >= abs(warmed.bias)

    def test_total_error_tracked_separately(self, micro, machine_8way,
                                            micro_reference):
        measurement = measure_bias(
            micro.program, machine_8way, micro_reference,
            unit_size=25, target_sample_size=50,
            detailed_warming=100, functional_warming=True, phases=2)
        assert len(measurement.phase_total_errors) == 2
        # Total error includes sampling error so it is generally at least
        # as large in magnitude as the isolated measurement bias.
        assert abs(measurement.total_error) + 1e-9 >= 0

    def test_epi_bias_measurement(self, micro, machine_8way, micro_reference):
        measurement = measure_bias(
            micro.program, machine_8way, micro_reference,
            unit_size=25, target_sample_size=50,
            detailed_warming=100, functional_warming=True, phases=2,
            metric="epi")
        assert abs(measurement.bias) < 0.1

    def test_required_detailed_warming_sweep(self, micro, machine_8way,
                                             micro_reference):
        required, biases = required_detailed_warming(
            micro.program, machine_8way, micro_reference,
            unit_size=25, target_sample_size=100,
            warming_values=[0, 200], bias_threshold=0.05, phases=2)
        assert set(biases) <= {0, 200}
        if required is not None:
            assert abs(biases[required]) < 0.05
        else:
            assert all(abs(b) >= 0.05 for b in biases.values())


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"],
            [["a", 1.0], ["long-name", 123456.0]],
            title="Demo")
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[2]
        # All data lines have the same column start for the second field.
        header_pos = lines[2].index("value")
        assert lines[4][header_pos - 2:].strip()

    def test_format_table_number_rendering(self):
        table = format_table(["x"], [[0.1234567], [1234.5], [3.14159]])
        assert "0.1235" in table
        assert "1,234" in table or "1,235" in table
        assert "3.142" in table

    def test_percent_helpers(self):
        assert percent(0.0123) == "+1.23%"
        assert percent(-0.5, digits=1) == "-50.0%"
        assert unsigned_percent(0.0123) == "1.23%"
