"""Seeded chaos campaigns across all three executor backends.

Each campaign installs a deterministic :class:`FaultPlan` mixing fault
kinds (I/O errors, byte corruption, delays, process crashes / SIGKILL)
at the seams a backend actually crosses, runs a small spec batch, and
asserts the system-level invariants the reliability layer promises:

* **Bit-identity.**  Every spec that completes produces an
  ``estimates_dict()`` byte-for-byte equal to a fault-free run — faults
  may cost retries, never correctness.
* **No corrupt artifact served.**  Corrupted store entries surface as
  misses/quarantines and get rebuilt; they never flow into results.
* **No lost or doubled queue jobs.**  After a queue campaign every job
  has exactly one terminal record, and nothing is left pending/claimed.
"""

import pytest

from repro.api import RunSpec, Session, SystematicStrategy
from repro.reliability import FaultPlan, FaultRule, RetryPolicy, SpecFailure

#: Specs per campaign: distinct seeds → distinct content hashes/jobs.
N_SPECS = 3


@pytest.fixture(autouse=True)
def isolated_store(tmp_path, monkeypatch):
    for var in ("REPRO_RUN_CACHE_DIR", "REPRO_CHECKPOINT_DIR",
                "REPRO_REF_CACHE_DIR", "REPRO_CACHE_DIR", "REPRO_BACKEND"):
        monkeypatch.delenv(var, raising=False)
    monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "artifacts"))
    monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path / "queue"))


def _specs() -> list[RunSpec]:
    return [
        RunSpec(benchmark="micro.syn",
                strategy=SystematicStrategy(unit_size=25, n_init=30,
                                            max_rounds=1,
                                            detailed_warming=50),
                epsilon=0.5, seed=seed)
        for seed in range(N_SPECS)
    ]


@pytest.fixture(scope="module")
def golden():
    """Fault-free estimates for the campaign specs (no cache, serial)."""
    return [result.estimates_dict()
            for result in Session(use_cache=False).run_batch(_specs())]


def _assert_bit_identical(outcomes, golden):
    failures = [o.row() for o in outcomes if isinstance(o, SpecFailure)]
    assert not failures, failures
    assert [o.estimates_dict() for o in outcomes] == golden


class TestSerialCampaign:
    def test_io_faults_and_corruption(self, golden, monkeypatch, tmp_path):
        """Serial backend: EIO on reads, write corruption, stalls."""
        plan = FaultPlan(rules=[
            FaultRule(site="store.read", kind="oserror", errno_name="EIO",
                      probability=0.5, times=4),
            FaultRule(site="store.write", kind="corrupt", probability=0.5,
                      times=3),
            FaultRule(site="store.write", kind="delay", delay=0.01,
                      times=2),
        ], seed=42)
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        session = Session(backend="serial")  # cache on: corruption lands
        report = session.run_batch_report(_specs())
        _assert_bit_identical(list(report), golden)
        # Nothing corrupt was served: a re-read session reproduces the
        # same estimates with the plan gone (corrupt entries were
        # misses, valid ones verify).
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        rerun = Session(backend="serial").run_batch(_specs())
        assert [r.estimates_dict() for r in rerun] == golden

    def test_transient_execution_faults_are_retried(self, golden,
                                                    monkeypatch, tmp_path):
        import repro.api.executor as executor_module

        real = executor_module.execute_spec
        calls = {"n": 0}

        def flaky(spec):
            calls["n"] += 1
            if calls["n"] % 2 == 1:  # every other call EIOs first
                raise OSError(5, "injected flaky I/O")
            return real(spec)

        monkeypatch.setattr(executor_module, "execute_spec", flaky)
        from repro.backends.local import SerialBackend

        backend = SerialBackend(retry=RetryPolicy(max_attempts=3,
                                                  base_delay=0))
        outcomes = backend.run_specs(_specs())
        _assert_bit_identical(outcomes, golden)


class TestLocalPoolCampaign:
    def test_crash_corrupt_and_stall(self, golden, monkeypatch, tmp_path):
        """Pool backend: one worker crash + write corruption + stalls."""
        from repro.backends.local import LocalPoolBackend

        plan = FaultPlan(rules=[
            FaultRule(site="pool.task", kind="crash", scope="shared",
                      times=1),
            FaultRule(site="store.write", kind="corrupt", probability=0.5,
                      times=3),
            FaultRule(site="store.read", kind="delay", delay=0.01,
                      times=2),
        ], seed=7, state_dir=str(tmp_path / "fuses"))
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        backend = LocalPoolBackend(
            max_workers=2, retry=RetryPolicy(max_attempts=3, base_delay=0))
        outcomes = backend.run_specs(_specs())
        _assert_bit_identical(outcomes, golden)

    def test_sigkill_mid_batch(self, golden, monkeypatch, tmp_path):
        from repro.backends.local import LocalPoolBackend

        plan = FaultPlan(rules=[
            FaultRule(site="pool.task", kind="kill", scope="shared",
                      times=1),
        ], seed=1, state_dir=str(tmp_path / "fuses"))
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        backend = LocalPoolBackend(
            max_workers=2, retry=RetryPolicy(max_attempts=3, base_delay=0))
        _assert_bit_identical(backend.run_specs(_specs()), golden)


class TestQueueCampaign:
    def test_worker_crash_corruption_and_stalls(self, golden, monkeypatch,
                                                tmp_path):
        """Queue backend with real worker subprocesses under chaos.

        One worker crashes mid-job (crash exactly once, shared fuse),
        result-cache writes corrupt with probability 0.5, and
        heartbeats stall briefly.  The batch must still complete
        bit-identically, and the queue must end with exactly one
        terminal record per job.
        """
        from repro.backends import FileWorkQueue
        from repro.backends.queue import QueueBackend

        plan = FaultPlan(rules=[
            FaultRule(site="worker.execute", kind="crash", scope="shared",
                      times=1),
            FaultRule(site="store.write", kind="corrupt", probability=0.5,
                      times=3),
            FaultRule(site="queue.heartbeat", kind="delay", delay=0.02,
                      times=2),
            FaultRule(site="worker.execute", kind="raise", scope="shared",
                      times=1),
        ], seed=13, state_dir=str(tmp_path / "fuses"))
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())

        specs = _specs()
        backend = QueueBackend(workers=2, poll=0.05, lease=1.5,
                               timeout=300.0)
        outcomes = backend.run_specs(specs, use_cache=True)
        _assert_bit_identical(outcomes, golden)

        # Queue invariant: every job has exactly one terminal record —
        # none lost, none double-completed, nothing stuck in flight.
        queue = FileWorkQueue()
        names = {FileWorkQueue.job_name(spec) for spec in specs}
        assert len(names) == len(specs)
        for name in names:
            done = queue._path("done", name).exists()
            failed = queue._path("failed", name).exists()
            assert done and not failed, (name, done, failed)
            assert not queue._path("pending", name).exists()
            assert not queue._path("claimed", name).exists()
        counts = queue.counts()
        assert counts["pending"] == 0 and counts["claimed"] == 0
        assert counts["done"] == len(names)
