"""Property-based tests over randomly generated programs.

Hypothesis generates small but arbitrary straight-line/looping programs
and the properties check the invariants the rest of the stack relies on:
deterministic execution, architectural invariants (r0 is zero, memory is
word-aligned), agreement between functional and detailed execution of
the same stream, and sane timing behaviour (cycles grow monotonically,
CPI is bounded below by the machine's width).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import scaled_8way
from repro.detailed import DetailedSimulator, MicroarchState
from repro.functional import FunctionalCore
from repro.isa import Opcode, ProgramBuilder

#: Register names the generated programs may use (r0 excluded as a
#: destination on purpose: writes to it must be discarded).
_REGS = [f"r{i}" for i in range(1, 8)]


@st.composite
def straight_line_programs(draw):
    """Generate a small program: init block, a loop, and ALU/memory body."""
    body_ops = draw(st.lists(
        st.tuples(
            st.sampled_from(["add", "sub", "xor", "addi", "mul",
                             "load", "store"]),
            st.sampled_from(_REGS),
            st.sampled_from(_REGS),
            st.integers(min_value=-64, max_value=64),
        ),
        min_size=1, max_size=12))
    iterations = draw(st.integers(min_value=1, max_value=20))

    b = ProgramBuilder("generated")
    base = 0x1000
    b.data_block(base, list(range(16)))
    for i, reg in enumerate(_REGS):
        b.addi(reg, "r0", i + 1)
    b.addi("r20", "r0", iterations)
    b.label("loop")
    for op, rd, rs, imm in body_ops:
        if op == "addi":
            b.addi(rd, rs, imm)
        elif op == "load":
            b.load(rd, "r0", base + (abs(imm) % 16) * 8)
        elif op == "store":
            b.store(rs, "r0", base + (abs(imm) % 16) * 8)
        else:
            getattr(b, "and_" if op == "and" else op)(rd, rd, rs)
    b.addi("r20", "r20", -1)
    b.bne("r20", "r0", "loop")
    b.halt()
    return b.build()


class TestGeneratedPrograms:
    @given(straight_line_programs())
    @settings(max_examples=25, deadline=None)
    def test_functional_execution_is_deterministic(self, program):
        first = FunctionalCore(program)
        second = FunctionalCore(program)
        n1 = first.run_to_completion(limit=100_000)
        n2 = second.run_to_completion(limit=100_000)
        assert n1 == n2
        assert first.state == second.state

    @given(straight_line_programs())
    @settings(max_examples=25, deadline=None)
    def test_architectural_invariants(self, program):
        core = FunctionalCore(program)
        while (dyn := core.step()) is not None:
            assert core.state.int_regs[0] == 0
            if dyn.mem_addr is not None:
                assert dyn.mem_addr % 8 == 0
            assert dyn.opclass is not None

    @given(straight_line_programs())
    @settings(max_examples=15, deadline=None)
    def test_detailed_simulation_consumes_same_stream(self, program):
        """The detailed timing model retires exactly the instructions the
        functional core executes, with plausible timing."""
        machine = scaled_8way()
        functional_count = FunctionalCore(program).run_to_completion(
            limit=100_000)

        core = FunctionalCore(program)
        counters = DetailedSimulator(machine, MicroarchState(machine)) \
            .simulate(core)
        assert counters.instructions == functional_count
        assert counters.cycles > 0
        # The machine cannot commit more than commit_width per cycle.
        assert counters.cpi >= 1.0 / machine.commit_width - 1e-9
        # Committed memory operations match the functional stream.
        mem_ops = counters.loads + counters.stores
        assert mem_ops <= counters.instructions

    @given(straight_line_programs(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_chunked_detailed_simulation_matches_single_run(self, program,
                                                            chunks):
        """Splitting a detailed run into consecutive ``run`` calls inside
        one period yields the same total cycles as one big call."""
        machine = scaled_8way()

        core_a = FunctionalCore(program)
        total_a = DetailedSimulator(machine, MicroarchState(machine)) \
            .simulate(core_a)

        core_b = FunctionalCore(program)
        sim_b = DetailedSimulator(machine, MicroarchState(machine))
        sim_b.begin_period()
        chunk_size = max(1, total_a.instructions // chunks)
        cycles = 0
        instructions = 0
        while True:
            counters = sim_b.run(core_b, chunk_size)
            if counters.instructions == 0:
                break
            cycles += counters.cycles
            instructions += counters.instructions
        assert instructions == total_a.instructions
        assert cycles == total_a.cycles
