"""In-process WSGI tests for every repro.server endpoint.

The app object returned by ``create_app`` is driven directly through
:class:`ReproClient`'s WSGI transport — no sockets — which is the same
path the CI server-smoke job exercises.  Covers the submit → poll →
fetch flow for both RunSpecs and registered studies, the
duplicate-submission cache-hit path (one simulation, two identical
``estimates_dict`` payloads), structured validation 400s, and the
introspection endpoints.
"""

import json
import threading

import pytest

from repro.api import RunSpec, StudyContext, SystematicStrategy, to_jsonable
from repro.api.study import STUDIES, Study, register_study
from repro.server import ServerConfig, ServerError, create_app, make_http_server
from repro.server import jobs as server_jobs
from repro.server.client import ReproClient


@pytest.fixture(autouse=True)
def isolated_dirs(tmp_path, monkeypatch):
    """Keep server runs out of the repository-level cache directories."""
    monkeypatch.setenv("REPRO_RUN_CACHE_DIR", str(tmp_path / "run"))
    monkeypatch.setenv("REPRO_JOBS_DIR", str(tmp_path / "jobs"))
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ckpt"))
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ref"))
    yield tmp_path


#: A cheap systematic spec payload on the micro benchmark.
MICRO_PAYLOAD = {
    "benchmark": "micro.syn",
    "epsilon": 0.5,
    "strategy": {"name": "systematic",
                 "params": {"unit_size": 25, "n_init": 40, "max_rounds": 1,
                            "detailed_warming": 64}},
}

MICRO_SPEC = RunSpec(
    benchmark="micro.syn", epsilon=0.5,
    strategy=SystematicStrategy(unit_size=25, n_init=40, max_rounds=1,
                                detailed_warming=64))


@pytest.fixture()
def app():
    application = create_app(ServerConfig(workers=2, queue_depth=8))
    yield application
    application.close()


@pytest.fixture()
def client(app):
    return ReproClient(app=app)


@pytest.fixture()
def micro_study():
    """A tiny registered study the server can run by name."""

    def grid(ctx, epsilon=0.5):
        return [MICRO_SPEC.with_(epsilon=epsilon)]

    def analyze(ctx, results, epsilon=0.5):
        return {"cpi": results[0].estimate_mean,
                "report": f"micro CPI {results[0].estimate_mean:.3f}"}

    study = Study(name="server-micro", title="server test study",
                  grid=grid, analyze=analyze,
                  tidy=lambda data: [{"cpi": data["cpi"]}])
    register_study(study)
    yield study
    STUDIES.pop(study.name, None)


class TestIntrospection:
    def test_index_lists_endpoints(self, client):
        payload = client.request("GET", "/")
        assert any("POST ^/runs$" in entry for entry in payload["endpoints"])

    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["jobs"] == {"queued": 0, "running": 0,
                                  "done": 0, "failed": 0}

    def test_studies_registry_listing(self, client):
        names = {row["name"] for row in client.studies()}
        assert {"fig6", "fig7", "table6"} <= names

    def test_cache_stats_empty(self, client):
        stats = client.cache_stats()
        assert stats["entries"] == 0
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert stats["enabled"] is True

    def test_unknown_route_404(self, client):
        with pytest.raises(ServerError) as exc:
            client.request("GET", "/nope")
        assert exc.value.status == 404

    def test_method_not_allowed_405(self, client):
        with pytest.raises(ServerError) as exc:
            client.request("POST", "/healthz", {})
        assert exc.value.status == 405


class TestRunJobs:
    def test_submit_poll_fetch(self, client):
        job = client.submit_run(MICRO_PAYLOAD)
        assert job["id"].startswith("run-")
        assert job["created"] is True
        record = client.wait(job["id"], timeout=120)
        assert record["status"] == "done"
        assert record["has_result"] is True
        payload = client.run_result(job["id"])
        assert payload["cached"] is False
        assert payload["result"]["estimate_mean"] > 0
        # The estimates view matches the library's estimates_dict.
        from repro.api import execute_spec

        local = execute_spec(MICRO_SPEC)
        assert payload["result"] == local.estimates_dict()

    def test_result_views(self, client):
        job = client.submit_run(MICRO_PAYLOAD)
        client.wait(job["id"], timeout=120)
        full = client.run_result(job["id"], view="full")["result"]
        summary = client.run_result(job["id"], view="summary")["result"]
        assert "wall_seconds" in full  # estimates view strips this
        assert summary["benchmark"] == "micro.syn"
        with pytest.raises(ServerError) as exc:
            client.run_result(job["id"], view="everything")
        assert exc.value.status == 400

    def test_duplicate_submission_single_simulation(self, client,
                                                    monkeypatch):
        calls = []
        real = server_jobs.execute_run

        def counting(session, spec):
            calls.append(spec.key())
            return real(session, spec)

        monkeypatch.setattr(server_jobs, "execute_run", counting)
        first = client.submit_run(MICRO_PAYLOAD)
        client.wait(first["id"], timeout=120)
        second = client.submit_run(MICRO_PAYLOAD)
        # Same content hash -> same job; nothing new simulated.
        assert second["id"] == first["id"]
        assert second["created"] is False
        a = client.run_result(first["id"])["result"]
        b = client.run_result(second["id"])["result"]
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert len(calls) == 1

    def test_cross_restart_cache_hit(self, client, app, tmp_path,
                                     monkeypatch):
        """A fresh job store still answers from the shared result cache."""
        job = client.submit_run(MICRO_PAYLOAD)
        client.wait(job["id"], timeout=120)
        app.close()
        # New service instance, new client, same cache dir, empty jobs dir.
        monkeypatch.setenv("REPRO_JOBS_DIR", str(tmp_path / "jobs2"))

        def fail(session, spec):  # pragma: no cover - must not run
            raise AssertionError("cache hit should not simulate")

        monkeypatch.setattr(server_jobs, "execute_run", fail)
        app2 = create_app(ServerConfig(workers=1))
        try:
            client2 = ReproClient(app=app2)
            resubmitted = client2.submit_run(MICRO_PAYLOAD)
            assert resubmitted["status"] == "done"
            assert resubmitted["cached"] is True
            payload = client2.run_result(resubmitted["id"])
            assert payload["cached"] is True
            assert payload["result"]["estimate_mean"] > 0
            stats = client2.cache_stats()
            assert stats["hits"] == 1 and stats["entries"] == 1
        finally:
            app2.close()

    def test_unknown_job_404(self, client):
        with pytest.raises(ServerError) as exc:
            client.job("run-doesnotexist")
        assert exc.value.status == 404

    def test_result_of_queued_job_is_202(self, tmp_path):
        app = create_app(ServerConfig(workers=0))  # nothing drains
        try:
            client = ReproClient(app=app)
            job = client.submit_run(MICRO_PAYLOAD)
            assert job["status"] == "queued"
            pending = client.run_result(job["id"])
            assert pending["status"] == "queued"  # 202 body is the record
        finally:
            app.close()

    def test_jobs_listing_and_filter(self, client):
        job = client.submit_run(MICRO_PAYLOAD)
        client.wait(job["id"], timeout=120)
        assert any(r["id"] == job["id"] for r in client.jobs())
        assert any(r["id"] == job["id"] for r in client.jobs("done"))
        assert client.jobs("failed") == []
        with pytest.raises(ServerError) as exc:
            client.jobs("exploded")
        assert exc.value.status == 400


class TestValidation:
    def test_malformed_json_400(self, app):
        client = ReproClient(app=app)
        status, _, body = client._transport.request(
            "POST", "/runs", b"{not json")
        assert status == 400
        assert "malformed JSON" in json.loads(body)["error"]

    def test_oversized_body_413(self, tmp_path):
        app = create_app(ServerConfig(workers=0, max_body_bytes=64))
        try:
            client = ReproClient(app=app)
            with pytest.raises(ServerError) as exc:
                client.submit_run({"benchmark": "micro.syn",
                                   "padding": "x" * 200})
            assert exc.value.status == 413
        finally:
            app.close()

    def test_unknown_names_are_structured_400s(self, client):
        with pytest.raises(ServerError) as exc:
            client.submit_run({"benchmark": "gcc", "machine": "4-way",
                               "strategy": {"name": "magic"}})
        assert exc.value.status == 400
        errors = {e["field"]: e["message"] for e in
                  exc.value.payload["errors"]}
        assert "available" in errors["benchmark"]
        assert "available" in errors["machine"]
        assert "available" in errors["strategy.name"]

    def test_unknown_spec_field_and_bad_types(self, client):
        with pytest.raises(ServerError) as exc:
            client.submit_run({"benchmark": "micro.syn", "wat": 1,
                               "scale": "big", "seed": 1.5})
        fields = {e["field"] for e in exc.value.payload["errors"]}
        assert {"wat", "scale", "seed"} <= fields

    def test_bad_strategy_params(self, client):
        with pytest.raises(ServerError) as exc:
            client.submit_run({"benchmark": "micro.syn",
                               "strategy": {"name": "systematic",
                                            "params": {"bogus": 1}}})
        errors = exc.value.payload["errors"]
        assert errors[0]["field"] == "strategy.params"
        assert "bogus" in errors[0]["message"]

    def test_nonpositive_epsilon_and_bad_confidence_400(self, client):
        with pytest.raises(ServerError) as exc:
            client.submit_run({"benchmark": "micro.syn", "epsilon": 0,
                               "confidence": 1.0})
        assert exc.value.status == 400
        errors = {e["field"]: e["message"] for e in
                  exc.value.payload["errors"]}
        assert "positive" in errors["epsilon"]
        assert "(0, 1)" in errors["confidence"]

    def test_negative_epsilon_400(self, client):
        with pytest.raises(ServerError) as exc:
            client.submit_run({"benchmark": "micro.syn", "epsilon": -0.05})
        assert exc.value.status == 400
        assert exc.value.payload["errors"][0]["field"] == "epsilon"

    def test_bad_adaptive_params_400(self, client):
        with pytest.raises(ServerError) as exc:
            client.submit_run({"benchmark": "micro.syn",
                               "strategy": {"name": "adaptive",
                                            "params": {"n_min": 1}}})
        assert exc.value.status == 400
        errors = exc.value.payload["errors"]
        assert errors[0]["field"] == "strategy.params"
        assert "n_min" in errors[0]["message"]

    def test_bad_metric_400_not_traceback(self, client):
        with pytest.raises(ServerError) as exc:
            client.submit_run({"benchmark": "micro.syn", "metric": "mips"})
        assert exc.value.status == 400

    def test_missing_benchmark(self, client):
        with pytest.raises(ServerError) as exc:
            client.submit_run({"scale": 0.2})
        assert exc.value.payload["errors"][0]["field"] == "benchmark"

    def test_unknown_study_and_param(self, client, micro_study):
        with pytest.raises(ServerError) as exc:
            client.submit_study("not-a-study")
        assert exc.value.status == 400
        assert exc.value.payload["errors"][0]["field"] == "study"
        with pytest.raises(ServerError) as exc:
            client.submit_study(micro_study.name, {"volume": 11})
        assert exc.value.payload["errors"][0]["field"] == "params.volume"


class TestHTTPTransport:
    """The real socket path: what `repro-smarts serve` actually runs."""

    def test_submit_poll_fetch_over_http(self, app):
        server = make_http_server(app, port=0, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            client = ReproClient(f"http://{host}:{port}")
            assert client.health()["status"] == "ok"
            job = client.submit_run(MICRO_PAYLOAD)
            client.wait(job["id"], timeout=120)
            assert client.run_result(job["id"])["result"]["estimate_mean"] > 0
            with pytest.raises(ServerError) as exc:
                client.request("GET", "/nope")
            assert exc.value.status == 404
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_create_app_rejects_unknown_override(self):
        with pytest.raises(TypeError):
            create_app(turbo=True)


class TestStudyJobs:
    def test_submit_rows_report_and_local_equivalence(self, client,
                                                      micro_study):
        job = client.submit_study(micro_study.name, {"epsilon": 0.4})
        assert job["id"].startswith("study-")
        client.wait(job["id"], timeout=120)

        rows = client.study_rows(job["id"])
        report = client.study_report(job["id"])
        assert "micro CPI" in report

        # Byte-equivalence with Session.run_study run locally.
        from repro.api import Session

        local = Session().run_study(micro_study, ctx=StudyContext(),
                                    params={"epsilon": 0.4})
        assert (json.dumps(to_jsonable(local.rows), sort_keys=True)
                == json.dumps(rows, sort_keys=True))
        assert report == local.report

        csv_text = client.study_rows(job["id"], fmt="csv")
        assert csv_text.splitlines()[0] == "cpi"

    def test_duplicate_study_submission_dedupes(self, client, micro_study):
        first = client.submit_study(micro_study.name)
        second = client.submit_study(micro_study.name)
        assert first["id"] == second["id"]
        assert second["created"] is False
        # Different params -> different job.
        other = client.submit_study(micro_study.name, {"epsilon": 0.3})
        assert other["id"] != first["id"]
        client.wait(first["id"], timeout=120)
        client.wait(other["id"], timeout=120)

    def test_run_result_route_rejects_study_jobs(self, client, micro_study):
        job = client.submit_study(micro_study.name)
        client.wait(job["id"], timeout=120)
        with pytest.raises(ServerError) as exc:
            client.run_result(job["id"])
        assert exc.value.status == 404
        with pytest.raises(ServerError) as exc:
            client.study_rows(job["id"], fmt="xml")
        assert exc.value.status == 400
