"""Tests for result dataclasses (unit records, metric estimates, run results)."""

import math

import pytest

from repro.core.estimates import (
    MetricEstimate,
    ReferenceResult,
    SmartsRunResult,
    UnitRecord,
)


class TestUnitRecord:
    def test_cpi_and_epi(self):
        unit = UnitRecord(index=3, instructions=100, cycles=250, energy=500.0)
        assert unit.cpi == pytest.approx(2.5)
        assert unit.epi == pytest.approx(5.0)

    def test_zero_instructions(self):
        unit = UnitRecord(index=0, instructions=0, cycles=10, energy=1.0)
        assert unit.cpi == 0.0
        assert unit.epi == 0.0


class TestMetricEstimate:
    def test_from_values(self):
        estimate = MetricEstimate.from_values("cpi", [1.0, 2.0, 3.0],
                                              population_size=100)
        assert estimate.mean == pytest.approx(2.0)
        assert estimate.sample_size == 3
        assert estimate.population_size == 100

    def test_confidence_and_meets(self):
        values = [1.0, 1.1, 0.9, 1.05, 0.95] * 40
        estimate = MetricEstimate.from_values("cpi", values)
        ci = estimate.confidence_interval(0.997)
        assert 0 < ci < 0.05
        assert estimate.meets(0.05, 0.997)
        assert not estimate.meets(ci / 10, 0.997)
        assert estimate.absolute_confidence_interval(0.997) == \
            pytest.approx(ci * estimate.mean)

    def test_corrected_confidence_interval_applies_fpc(self):
        values = [1.0, 1.1, 0.9, 1.05, 0.95] * 10
        # Half the population sampled -> CI shrinks by sqrt(1 - 1/2).
        estimate = MetricEstimate.from_values("cpi", values,
                                              population_size=100)
        raw = estimate.confidence_interval(0.997)
        assert estimate.corrected_confidence_interval(0.997) == \
            pytest.approx(raw * math.sqrt(0.5))
        # Without a population size the correction is a no-op.
        plain = MetricEstimate.from_values("cpi", values)
        assert plain.corrected_confidence_interval(0.997) == pytest.approx(raw)

    def test_corrected_confidence_interval_census_is_exact(self):
        estimate = MetricEstimate.from_values("cpi", [1.0, 2.0],
                                              population_size=2)
        assert estimate.corrected_confidence_interval(0.997) == 0.0
        # Degenerate single-unit census: raw CI is inf, corrected is 0.
        single = MetricEstimate.from_values("cpi", [1.5], population_size=1)
        assert single.confidence_interval(0.997) == float("inf")
        assert single.corrected_confidence_interval(0.997) == 0.0


def make_run(unit_values, unit_size=10, benchmark_length=10_000):
    run = SmartsRunResult(
        benchmark="bench", machine="8-way", unit_size=unit_size, interval=5,
        offset=0, detailed_warming=20, functional_warming=True,
        benchmark_length=benchmark_length)
    for i, cpi in enumerate(unit_values):
        cycles = int(round(cpi * unit_size))
        run.units.append(UnitRecord(index=i * 5, instructions=unit_size,
                                    cycles=cycles, energy=cycles * 2.0))
    run.instructions_measured = unit_size * len(unit_values)
    run.instructions_detailed_warming = 20 * len(unit_values)
    run.instructions_fastforwarded = (
        benchmark_length - run.instructions_measured
        - run.instructions_detailed_warming)
    return run


class TestSmartsRunResult:
    def test_cpi_estimate(self):
        run = make_run([1.0, 2.0, 3.0, 2.0])
        assert run.cpi.mean == pytest.approx(2.0)
        assert run.sample_size == 4
        assert run.population_size == 1000

    def test_epi_estimate(self):
        run = make_run([1.0, 2.0])
        assert run.epi.mean == pytest.approx(3.0)   # energy = 2 nJ per cycle

    def test_detailed_fraction(self):
        run = make_run([1.0] * 10)
        expected = (10 * 10 + 10 * 20) / 10_000
        assert run.detailed_fraction == pytest.approx(expected)

    def test_unit_value_arrays(self):
        run = make_run([1.0, 2.0, 4.0])
        assert list(run.unit_cpi_values()) == pytest.approx([1.0, 2.0, 4.0])
        assert len(run.unit_epi_values()) == 3

    def test_summary_round_trip(self):
        run = make_run([1.5] * 5)
        summary = run.summary()
        assert summary["n"] == 5
        assert summary["cpi"] == pytest.approx(1.5)
        assert summary["functional_warming"] is True

    def test_empty_run_statistics_raise(self):
        run = make_run([])
        with pytest.raises(ValueError):
            _ = run.cpi

    def test_truncated_units_excluded_from_estimates(self):
        """Regression: a partial final unit must not skew the CPI mean.

        Before the ``truncated`` flag, a unit cut short by the end of
        the stream entered the estimate with full weight despite its
        per-instruction values carrying partial-unit noise.
        """
        run = make_run([2.0, 2.0, 2.0])
        run.units.append(UnitRecord(index=999, instructions=3, cycles=30,
                                    energy=60.0, truncated=True))
        # The truncated unit's CPI of 10.0 is excluded from the estimate…
        assert run.cpi.sample_size == 3
        assert run.cpi.mean == pytest.approx(2.0)
        assert run.epi.mean == pytest.approx(4.0)
        # …but the unit stays in the sample bookkeeping.
        assert run.sample_size == 4

    def test_all_truncated_fallback(self):
        run = make_run([])
        run.units.append(UnitRecord(index=0, instructions=4, cycles=12,
                                    energy=0.0, truncated=True))
        assert run.cpi.sample_size == 1
        assert run.cpi.mean == pytest.approx(3.0)


class TestReferenceResult:
    def test_cpi_epi(self):
        ref = ReferenceResult(benchmark="b", machine="m", instructions=1000,
                              cycles=2500, energy=5000.0)
        assert ref.cpi == pytest.approx(2.5)
        assert ref.epi == pytest.approx(5.0)

    def test_zero_instruction_reference(self):
        ref = ReferenceResult(benchmark="b", machine="m", instructions=0,
                              cycles=0, energy=0.0)
        assert ref.cpi == 0.0 and ref.epi == 0.0
