"""Unit and property-based tests for sampling plans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import (
    RandomSamplingPlan,
    SamplingPlan,
    StratifiedSamplingPlan,
    SystematicSamplingPlan,
    offsets_for_bias_estimation,
)


class TestSystematicPlan:
    def test_unit_enumeration(self):
        plan = SystematicSamplingPlan(unit_size=10, interval=4, offset=1)
        units = list(plan.units(200))
        assert [u.index for u in units] == [1, 5, 9, 13, 17]
        assert units[0].start == 10
        assert units[0].end == 20

    def test_sample_size_matches_enumeration(self):
        plan = SystematicSamplingPlan(unit_size=10, interval=3, offset=2)
        length = 1000
        assert plan.sample_size(length) == len(list(plan.units(length)))

    def test_population_size(self):
        plan = SystematicSamplingPlan(unit_size=50, interval=10)
        assert plan.population_size(1234) == 24

    def test_detailed_instruction_accounting(self):
        plan = SystematicSamplingPlan(unit_size=10, interval=5,
                                      detailed_warming=20)
        length = 1000
        n = plan.sample_size(length)
        assert plan.measured_instructions(length) == n * 10
        assert plan.detailed_instructions(length) == n * 30
        assert plan.detailed_fraction(length) == pytest.approx(n * 30 / length)

    def test_validation(self):
        with pytest.raises(ValueError):
            SystematicSamplingPlan(unit_size=0, interval=1)
        with pytest.raises(ValueError):
            SystematicSamplingPlan(unit_size=10, interval=0)
        with pytest.raises(ValueError):
            SystematicSamplingPlan(unit_size=10, interval=5, offset=5)
        with pytest.raises(ValueError):
            SystematicSamplingPlan(unit_size=10, interval=2,
                                   detailed_warming=-1)

    def test_for_sample_size_interval_selection(self):
        plan = SystematicSamplingPlan.for_sample_size(
            benchmark_length=100_000, unit_size=100, target_sample_size=50)
        assert plan.interval == 20           # 1000 units / 50
        assert plan.sample_size(100_000) >= 50

    def test_for_sample_size_larger_than_population(self):
        plan = SystematicSamplingPlan.for_sample_size(
            benchmark_length=1000, unit_size=100, target_sample_size=500)
        assert plan.interval == 1
        assert plan.sample_size(1000) == 10

    def test_for_sample_size_too_short_benchmark(self):
        with pytest.raises(ValueError):
            SystematicSamplingPlan.for_sample_size(
                benchmark_length=10, unit_size=100, target_sample_size=5)

    def test_for_sample_size_offsets_do_not_alias(self):
        """Regression: offsets at/above the interval wrap instead of clamp.

        The old ``min(offset, interval - 1)`` collapsed every offset
        >= interval onto the same phase, silently aliasing an offset
        sweep; ``offset % interval`` keeps distinct phases distinct.
        """
        kwargs = dict(benchmark_length=10_000, unit_size=10,
                      target_sample_size=100)   # interval = 10
        a = SystematicSamplingPlan.for_sample_size(offset=9, **kwargs)
        b = SystematicSamplingPlan.for_sample_size(offset=13, **kwargs)
        assert a.interval == b.interval == 10
        assert a.offset == 9 and b.offset == 3
        units_a = {u.index for u in a.units(10_000)}
        units_b = {u.index for u in b.units(10_000)}
        assert units_a != units_b and units_a.isdisjoint(units_b)

    @given(
        length=st.integers(min_value=1_000, max_value=500_000),
        unit_size=st.integers(min_value=1, max_value=500),
        interval=st.integers(min_value=1, max_value=50),
        offset=st.integers(min_value=0, max_value=49),
    )
    @settings(max_examples=100, deadline=None)
    def test_units_are_disjoint_ordered_and_in_range(self, length, unit_size,
                                                     interval, offset):
        offset = min(offset, interval - 1)
        plan = SystematicSamplingPlan(unit_size=unit_size, interval=interval,
                                      offset=offset)
        units = list(plan.units(length))
        assert len(units) == plan.sample_size(length)
        previous_end = -1
        for unit in units:
            assert unit.start >= 0
            assert unit.end <= plan.population_size(length) * unit_size
            assert unit.start > previous_end
            previous_end = unit.end - 1
        # Consecutive selected units are exactly interval*unit_size apart.
        for a, b in zip(units, units[1:]):
            assert b.start - a.start == interval * unit_size

    @given(
        length=st.integers(min_value=10_000, max_value=1_000_000),
        unit_size=st.sampled_from([10, 25, 50, 100]),
        target=st.integers(min_value=1, max_value=2000),
    )
    @settings(max_examples=100, deadline=None)
    def test_for_sample_size_hits_target_when_possible(self, length, unit_size,
                                                       target):
        plan = SystematicSamplingPlan.for_sample_size(
            benchmark_length=length, unit_size=unit_size,
            target_sample_size=target)
        population = length // unit_size
        achieved = plan.sample_size(length)
        assert achieved >= min(target, population) * 0.99
        # Never more than twice the target unless the population forces it.
        if population > 2 * target:
            assert achieved <= 2 * target


class TestRandomPlan:
    def test_selection_without_replacement(self):
        plan = RandomSamplingPlan(unit_size=10, sample_size=20, seed=3)
        units = list(plan.units(1000))
        indices = [u.index for u in units]
        assert len(indices) == 20
        assert len(set(indices)) == 20
        assert indices == sorted(indices)

    def test_sample_capped_by_population(self):
        plan = RandomSamplingPlan(unit_size=10, sample_size=500, seed=0)
        units = list(plan.units(100))
        assert len(units) == 10

    def test_deterministic_by_seed(self):
        a = [u.index for u in RandomSamplingPlan(10, 20, seed=1).units(5000)]
        b = [u.index for u in RandomSamplingPlan(10, 20, seed=1).units(5000)]
        c = [u.index for u in RandomSamplingPlan(10, 20, seed=2).units(5000)]
        assert a == b
        assert a != c

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomSamplingPlan(unit_size=0, sample_size=5)
        with pytest.raises(ValueError):
            RandomSamplingPlan(unit_size=10, sample_size=0)

    def test_explicit_rng_threading(self):
        import random

        plan = RandomSamplingPlan(unit_size=10, sample_size=20, seed=7)
        via_seed = [u.index for u in plan.units(5000)]
        via_rng = [u.index for u in plan.units(5000, rng=random.Random(7))]
        assert via_seed == via_rng
        assert plan.rng().random() == random.Random(7).random()


class TestStratifiedPlan:
    def test_explicit_indices(self):
        plan = StratifiedSamplingPlan(unit_size=10, unit_indices=(5, 1, 9))
        units = list(plan.units(200))
        assert [u.index for u in units] == [1, 5, 9]
        assert plan.sample_size == 3
        assert units[0].start == 10

    def test_indices_deduplicated_and_sorted(self):
        plan = StratifiedSamplingPlan(unit_size=10, unit_indices=(3, 3, 1))
        assert plan.unit_indices == (1, 3)

    def test_indices_beyond_population_skipped(self):
        plan = StratifiedSamplingPlan(unit_size=10, unit_indices=(0, 5, 50))
        assert [u.index for u in plan.units(100)] == [0, 5]
        assert plan.detailed_instructions(100) == 2 * 10

    def test_validation(self):
        with pytest.raises(ValueError):
            StratifiedSamplingPlan(unit_size=0, unit_indices=(1,))
        with pytest.raises(ValueError):
            StratifiedSamplingPlan(unit_size=10, unit_indices=())
        with pytest.raises(ValueError):
            StratifiedSamplingPlan(unit_size=10, unit_indices=(-1,))

    def test_satisfies_sampling_plan_protocol(self):
        plan = StratifiedSamplingPlan(unit_size=10, unit_indices=(1, 2))
        assert isinstance(plan, SamplingPlan)
        assert isinstance(SystematicSamplingPlan(unit_size=10, interval=2),
                          SamplingPlan)
        assert isinstance(RandomSamplingPlan(unit_size=10, sample_size=2),
                          SamplingPlan)


class TestBiasOffsets:
    def test_five_even_phases(self):
        assert offsets_for_bias_estimation(100, phases=5) == [0, 20, 40, 60, 80]

    def test_phases_capped_by_interval(self):
        assert offsets_for_bias_estimation(3, phases=5) == [0, 1, 2]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            offsets_for_bias_estimation(0)
