"""Tests for the repro.api session layer: execution, caching, parallelism.

The specs here run the tiny ``micro.syn`` benchmark (~15k instructions)
or suite benchmarks at very small scale so the whole module stays fast.
"""

import pytest

from repro.api import (
    RandomStrategy,
    ResultCache,
    RunSpec,
    Session,
    StratifiedStrategy,
    SystematicStrategy,
    execute_spec,
    resolve_benchmark,
    resolve_machine,
)

@pytest.fixture(autouse=True)
def isolated_checkpoint_store(tmp_path, monkeypatch):
    """Keep stratified runs' BBV profiles out of the repo's .ckpt_cache."""
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ckpt"))


#: A cheap systematic spec on the micro benchmark.
MICRO_SPEC = RunSpec(
    benchmark="micro.syn",
    strategy=SystematicStrategy(unit_size=25, n_init=40, max_rounds=1,
                                detailed_warming=64),
    epsilon=0.5,
)


class TestResolvers:
    def test_resolve_machine_scaled_names(self):
        assert resolve_machine("8-way").name == "8-way-scaled"
        assert resolve_machine("16-way").name == "16-way-scaled"
        assert resolve_machine("8-way-scaled").name == "8-way-scaled"

    def test_resolve_benchmark(self):
        assert resolve_benchmark("micro.syn", 1.0).name == "micro.syn"
        assert resolve_benchmark("gzip.syn", 0.05).name == "gzip.syn"


class TestExecuteSpec:
    def test_systematic(self):
        result = execute_spec(MICRO_SPEC)
        assert result.spec == MICRO_SPEC
        assert result.estimate_mean > 0
        assert result.sample_size >= 40
        assert result.rounds == 1
        assert len(result.units) == result.sample_size
        assert result.benchmark_length > 0

    def test_deterministic(self):
        a = execute_spec(MICRO_SPEC)
        b = execute_spec(MICRO_SPEC)
        assert a.estimate_mean == b.estimate_mean
        assert a.units == b.units

    def test_random_strategy_seeded(self):
        spec = MICRO_SPEC.with_(
            strategy=RandomStrategy(unit_size=25, sample_size=40,
                                    detailed_warming=64))
        a = execute_spec(spec.with_(seed=1))
        b = execute_spec(spec.with_(seed=1))
        c = execute_spec(spec.with_(seed=2))
        assert [u.index for u in a.units] == [u.index for u in b.units]
        assert [u.index for u in a.units] != [u.index for u in c.units]

    def test_stratified_strategy_covers_phases(self):
        spec = MICRO_SPEC.with_(
            strategy=StratifiedStrategy(unit_size=25, sample_size=40,
                                        detailed_warming=64,
                                        units_per_interval=8, max_phases=4))
        result = execute_spec(spec)
        info = result.strategy_info
        assert info["phases"] >= 1
        assert sum(info["allocation"].values()) >= result.sample_size
        # Unit indices must be strictly increasing (one forward pass).
        indices = [u.index for u in result.units]
        assert indices == sorted(indices)

    def test_stratified_respects_sample_budget(self):
        # More phases than budget: the allocation must never exceed the
        # requested sample size (no silent 1-per-stratum inflation).
        spec = MICRO_SPEC.with_(
            strategy=StratifiedStrategy(unit_size=25, sample_size=2,
                                        detailed_warming=64,
                                        units_per_interval=8, max_phases=6))
        result = execute_spec(spec)
        assert result.sample_size <= 2
        assert sum(result.strategy_info["allocation"].values()) <= 2

    def test_epi_metric(self):
        result = execute_spec(MICRO_SPEC.with_(metric="epi"))
        assert result.estimate_mean > 0
        assert all(u.energy > 0 for u in result.units)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(MICRO_SPEC) is None
        result = execute_spec(MICRO_SPEC)
        cache.put(result)
        hit = cache.get(MICRO_SPEC)
        assert hit == result
        assert cache.path(MICRO_SPEC).exists()

    def test_different_spec_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(execute_spec(MICRO_SPEC))
        assert cache.get(MICRO_SPEC.with_(seed=9)) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(execute_spec(MICRO_SPEC))
        cache.path(MICRO_SPEC).write_text("{not json")
        assert cache.get(MICRO_SPEC) is None

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=False)
        cache.put(execute_spec(MICRO_SPEC))
        assert cache.get(MICRO_SPEC) is None
        assert not any(tmp_path.iterdir())


class TestSession:
    def test_run_uses_cache(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        first = session.run(MICRO_SPEC)
        second = session.run(MICRO_SPEC)
        # The second call is a cache hit: identical payload, including
        # the recorded wall time of the original execution.
        assert second == first

    def test_estimate_shim(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        result = session.estimate("micro.syn", epsilon=0.5,
                                  unit_size=25, n_init=40, max_rounds=1,
                                  detailed_warming=64)
        assert result == session.run(MICRO_SPEC)

    def test_estimate_shim_rejects_mixed_strategy_params(self):
        session = Session(use_cache=False)
        with pytest.raises(TypeError, match="strategy parameters"):
            session.estimate("micro.syn", strategy=RandomStrategy(),
                             unit_size=25)

    def test_sweep_specs_cross_product(self):
        specs = Session.sweep_specs(["a.syn", "b.syn"],
                                    machines=["8-way", "16-way"],
                                    scale=0.1)
        assert len(specs) == 4
        assert {(s.benchmark, s.machine) for s in specs} == {
            ("a.syn", "8-way"), ("a.syn", "16-way"),
            ("b.syn", "8-way"), ("b.syn", "16-way")}

    def test_parallel_matches_serial_bit_for_bit(self, tmp_path):
        strategy = SystematicStrategy(unit_size=25, n_init=30, max_rounds=1,
                                      detailed_warming=64)
        specs = [RunSpec(benchmark=name, strategy=strategy, scale=0.03,
                         epsilon=0.5)
                 for name in ["gzip.syn", "mcf.syn", "mesa.syn", "parser.syn"]]

        serial = Session(use_cache=False).run_batch(specs)
        parallel = Session(use_cache=False).run_batch(specs, max_workers=2)

        assert [r.spec for r in parallel] == specs
        for s, p in zip(serial, parallel):
            assert p.estimate_mean == s.estimate_mean
            assert p.units == s.units
            assert p.round_estimates == s.round_estimates

    def test_parallel_fills_cache(self, tmp_path):
        strategy = SystematicStrategy(unit_size=25, n_init=30, max_rounds=1,
                                      detailed_warming=64)
        specs = [RunSpec(benchmark=name, strategy=strategy, scale=0.03,
                         epsilon=0.5)
                 for name in ["gzip.syn", "mcf.syn"]]
        session = Session(cache_dir=tmp_path)
        first = session.run_batch(specs, max_workers=2)
        second = session.run_batch(specs)  # all hits
        assert second == first
