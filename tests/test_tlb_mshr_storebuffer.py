"""Unit tests for the TLB, MSHR file, and store buffer models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import MSHRFile, StoreBuffer, TLB


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB("t", entries=16, assoc=4)
        assert tlb.access(0x1000) is False
        assert tlb.access(0x1004) is True       # same page
        assert tlb.access(0x2000) is False      # different page

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            TLB("t", entries=0, assoc=4)
        with pytest.raises(ValueError):
            TLB("t", entries=10, assoc=4)

    def test_lru_within_set(self):
        tlb = TLB("t", entries=2, assoc=2, page_bytes=4096)
        pages = [0, 2 * 4096, 4 * 4096]          # all map to set 0
        tlb.access(pages[0])
        tlb.access(pages[1])
        tlb.access(pages[0])
        tlb.access(pages[2])                      # evicts pages[1]
        assert tlb.access(pages[0]) is True
        assert tlb.access(pages[1]) is False

    def test_stats_and_flush(self):
        tlb = TLB("t", entries=8, assoc=2)
        tlb.access(0)
        tlb.access(0)
        assert tlb.stats.accesses == 2
        assert tlb.stats.misses == 1
        assert tlb.stats.miss_rate == pytest.approx(0.5)
        tlb.flush()
        assert tlb.access(0) is False

    @given(st.lists(st.integers(min_value=0, max_value=1 << 22), min_size=1,
                    max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_reach_bounded(self, addresses):
        tlb = TLB("t", entries=8, assoc=4, page_bytes=1024)
        for addr in addresses:
            tlb.access(addr)
        resident = sum(len(s) for s in tlb._sets)
        assert resident <= 8


class TestMSHR:
    def test_allocation_and_merge(self):
        mshr = MSHRFile(entries=2)
        ready, stall = mshr.request(block=1, now=0, latency=100)
        assert (ready, stall) == (100, 0)
        # Second request to the same block merges onto the same completion.
        ready2, stall2 = mshr.request(block=1, now=10, latency=100)
        assert ready2 == 100 and stall2 == 0
        assert mshr.stats.merges == 1

    def test_structural_stall_when_full(self):
        mshr = MSHRFile(entries=1)
        mshr.request(block=1, now=0, latency=100)
        ready, stall = mshr.request(block=2, now=10, latency=100)
        assert stall == 90                     # waits for the first miss
        assert ready == 10 + 90 + 100
        assert mshr.stats.structural_stalls == 1

    def test_entries_expire(self):
        mshr = MSHRFile(entries=1)
        mshr.request(block=1, now=0, latency=10)
        assert mshr.outstanding(now=5) == 1
        assert mshr.outstanding(now=20) == 0
        ready, stall = mshr.request(block=2, now=20, latency=10)
        assert stall == 0 and ready == 30

    def test_invalid_entry_count(self):
        with pytest.raises(ValueError):
            MSHRFile(entries=0)

    def test_flush(self):
        mshr = MSHRFile(entries=2)
        mshr.request(block=1, now=0, latency=100)
        mshr.flush()
        assert mshr.outstanding(now=0) == 0


class TestStoreBuffer:
    def test_push_without_stall(self):
        sb = StoreBuffer(entries=2)
        completion, stall = sb.push(now=0, drain_latency=10)
        assert (completion, stall) == (10, 0)
        assert sb.occupancy(now=5) == 1
        assert sb.occupancy(now=20) == 0

    def test_full_buffer_stalls(self):
        sb = StoreBuffer(entries=1)
        sb.push(now=0, drain_latency=50)
        completion, stall = sb.push(now=5, drain_latency=50)
        assert stall == 45
        assert completion == 5 + 45 + 50
        assert sb.stats.full_stalls == 1

    def test_drained_entries_free_slots(self):
        sb = StoreBuffer(entries=1)
        sb.push(now=0, drain_latency=5)
        completion, stall = sb.push(now=10, drain_latency=5)
        assert stall == 0 and completion == 15

    def test_invalid_entry_count(self):
        with pytest.raises(ValueError):
            StoreBuffer(entries=0)

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                              st.integers(min_value=1, max_value=100)),
                    min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, pushes):
        sb = StoreBuffer(entries=4)
        now = 0
        for delta, latency in pushes:
            now += delta
            completion, stall = sb.push(now=now, drain_latency=latency)
            assert completion >= now
            assert sb.occupancy(now) <= 4
