"""Schema tests for every machine-readable CLI surface.

The ``--json`` payloads of ``estimate``, ``sweep``, ``experiment`` and
``checkpoint ls`` are contracts consumed by scripts; these tests pin
them with explicit schemas (a small JSON-Schema subset validated by
hand, so the contract lives in this file, not in a library), including
the ``--checkpoints`` flag's bookkeeping fields.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main


# ----------------------------------------------------------------------
# Minimal JSON-Schema-style validator (type/properties/required/items/
# enum/additionalProperties), enough to pin the CLI contracts exactly.
# ----------------------------------------------------------------------
_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "number": (int, float),
    "null": type(None),
}


def validate(payload, schema, path="$"):
    allowed = schema.get("type")
    if allowed is not None:
        names = allowed if isinstance(allowed, list) else [allowed]
        if not any(isinstance(payload, _TYPES[name])
                   and not (name in ("integer", "number")
                            and isinstance(payload, bool))
                   for name in names):
            raise AssertionError(
                f"{path}: expected {names}, got {type(payload).__name__} "
                f"({payload!r})")
    if "enum" in schema and payload not in schema["enum"]:
        raise AssertionError(f"{path}: {payload!r} not in {schema['enum']}")
    if isinstance(payload, dict) and "properties" in schema:
        for key in schema.get("required", []):
            if key not in payload:
                raise AssertionError(f"{path}: missing required key {key!r}")
        for key, value in payload.items():
            subschema = schema["properties"].get(key)
            if subschema is None:
                if not schema.get("additionalProperties", True):
                    raise AssertionError(f"{path}: unexpected key {key!r}")
                continue
            validate(value, subschema, f"{path}.{key}")
    if isinstance(payload, list) and "items" in schema:
        for i, item in enumerate(payload):
            validate(item, schema["items"], f"{path}[{i}]")


NUMBER = {"type": "number"}
INTEGER = {"type": "integer"}
STRING = {"type": "string"}
BOOLEAN = {"type": "boolean"}

STRATEGY_SCHEMA = {
    "type": "object",
    "required": ["name", "params"],
    "additionalProperties": False,
    "properties": {
        "name": {"type": "string",
                 "enum": ["systematic", "random", "stratified"]},
        "params": {"type": "object"},
    },
}

SPEC_SCHEMA = {
    "type": "object",
    "required": ["benchmark", "machine", "strategy", "scale", "metric",
                 "seed", "epsilon", "confidence", "benchmark_length",
                 "checkpoints"],
    "additionalProperties": False,
    "properties": {
        "benchmark": STRING,
        "machine": STRING,
        "strategy": STRATEGY_SCHEMA,
        "scale": NUMBER,
        "metric": {"type": "string", "enum": ["cpi", "epi"]},
        "seed": INTEGER,
        "epsilon": NUMBER,
        "confidence": NUMBER,
        "benchmark_length": {"type": ["integer", "null"]},
        "checkpoints": {"type": "string", "enum": ["off", "auto"]},
    },
}

RUN_RESULT_SCHEMA = {
    "type": "object",
    "required": [
        "spec", "estimate_mean", "estimate_cv", "confidence_interval",
        "target_met", "sample_size", "population_size", "benchmark_length",
        "rounds", "round_estimates", "tuned_sample_sizes",
        "instructions_measured", "instructions_detailed_warming",
        "instructions_fastforwarded", "instructions_restored",
        "checkpoint_restores", "detailed_fraction", "wall_seconds",
        "units", "strategy_info",
    ],
    "properties": {
        "spec": SPEC_SCHEMA,
        "estimate_mean": NUMBER,
        "estimate_cv": NUMBER,
        "confidence_interval": NUMBER,
        "target_met": BOOLEAN,
        "sample_size": INTEGER,
        "population_size": INTEGER,
        "benchmark_length": INTEGER,
        "rounds": INTEGER,
        "round_estimates": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["sample_size", "mean", "cv", "ci"],
                "additionalProperties": False,
                "properties": {"sample_size": INTEGER, "mean": NUMBER,
                               "cv": NUMBER, "ci": NUMBER},
            },
        },
        "tuned_sample_sizes": {"type": "array", "items": INTEGER},
        "instructions_measured": INTEGER,
        "instructions_detailed_warming": INTEGER,
        "instructions_fastforwarded": INTEGER,
        "instructions_restored": INTEGER,
        "checkpoint_restores": INTEGER,
        "detailed_fraction": NUMBER,
        "wall_seconds": NUMBER,
        "units": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["index", "instructions", "cycles", "energy"],
                "additionalProperties": False,
                "properties": {"index": INTEGER, "instructions": INTEGER,
                               "cycles": INTEGER, "energy": NUMBER,
                               "truncated": {"type": "boolean"}},
            },
        },
        "strategy_info": {"type": "object"},
    },
}

ESTIMATE_SCHEMA = {
    **RUN_RESULT_SCHEMA,
    "properties": {
        **RUN_RESULT_SCHEMA["properties"],
        "validation": {
            "type": "object",
            "required": ["true_value", "error"],
            "additionalProperties": False,
            "properties": {"true_value": NUMBER, "error": NUMBER},
        },
    },
    "additionalProperties": False,
}

SWEEP_SCHEMA = {"type": "array", "items": {**RUN_RESULT_SCHEMA,
                                           "additionalProperties": False}}

EXPERIMENT_SCHEMA = {
    "type": "object",
    "required": ["experiment", "data"],
    "additionalProperties": False,
    "properties": {"experiment": STRING, "data": {"type": "object"}},
}

CHECKPOINT_LS_SCHEMA = {
    "type": "object",
    "required": ["directory", "sets", "bbv_profiles"],
    "additionalProperties": False,
    "properties": {
        "directory": STRING,
        "bbv_profiles": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["benchmark", "program_hash", "interval_size",
                             "limit", "version", "intervals", "file",
                             "size_bytes"],
                "additionalProperties": False,
                "properties": {
                    "benchmark": STRING,
                    "program_hash": STRING,
                    "interval_size": INTEGER,
                    "limit": {"type": ["integer", "null"]},
                    "version": INTEGER,
                    "intervals": INTEGER,
                    "file": STRING,
                    "size_bytes": INTEGER,
                },
            },
        },
        "sets": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["benchmark", "machine", "program_hash",
                             "machine_hash", "unit_size", "stride",
                             "benchmark_length", "snapshots", "version",
                             "file", "size_bytes"],
                "additionalProperties": False,
                "properties": {
                    "benchmark": STRING,
                    "machine": STRING,
                    "program_hash": STRING,
                    "machine_hash": STRING,
                    "unit_size": INTEGER,
                    "stride": INTEGER,
                    "benchmark_length": INTEGER,
                    "snapshots": INTEGER,
                    "version": INTEGER,
                    "file": STRING,
                    "size_bytes": INTEGER,
                },
            },
        },
    },
}


@pytest.fixture(autouse=True)
def isolated_stores(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_CACHE_DIR", str(tmp_path / "runs"))
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ckpt"))
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "refs"))


def run_json(capsys, argv) -> object:
    assert main(argv) == 0
    return json.loads(capsys.readouterr().out)


ESTIMATE_ARGS = ["estimate", "gzip.syn", "--scale", "0.05", "--n-init", "40",
                 "--epsilon", "0.5", "--rounds", "1", "--unit-size", "25",
                 "--warming", "50", "--json"]


class TestEstimateJson:
    def test_schema(self, capsys):
        payload = run_json(capsys, ESTIMATE_ARGS)
        validate(payload, ESTIMATE_SCHEMA)
        assert payload["spec"]["checkpoints"] == "off"
        assert payload["checkpoint_restores"] == 0

    def test_schema_with_checkpoints(self, capsys):
        payload = run_json(capsys, ESTIMATE_ARGS + ["--checkpoints"])
        validate(payload, ESTIMATE_SCHEMA)
        assert payload["spec"]["checkpoints"] == "auto"
        assert payload["checkpoint_restores"] > 0
        assert payload["instructions_restored"] > 0

    def test_checkpoints_do_not_change_estimates(self, capsys):
        serial = run_json(capsys, ESTIMATE_ARGS)
        restored = run_json(capsys, ESTIMATE_ARGS + ["--checkpoints"])
        for key in ("estimate_mean", "estimate_cv", "confidence_interval",
                    "units", "round_estimates", "sample_size"):
            assert serial[key] == restored[key], key

    def test_schema_with_validation(self, capsys):
        payload = run_json(capsys, ESTIMATE_ARGS + ["--validate"])
        validate(payload, ESTIMATE_SCHEMA)
        assert "validation" in payload


class TestSweepJson:
    def test_schema(self, capsys):
        payload = run_json(capsys, [
            "sweep", "--benchmarks", "gzip.syn,mcf.syn", "--scale", "0.05",
            "--epsilon", "0.5", "--checkpoints", "--json"])
        validate(payload, SWEEP_SCHEMA)
        assert len(payload) == 2
        assert [r["spec"]["benchmark"] for r in payload] == [
            "gzip.syn", "mcf.syn"]
        assert all(r["spec"]["checkpoints"] == "auto" for r in payload)


class TestExperimentJson:
    def test_schema(self, capsys):
        payload = run_json(capsys, ["experiment", "table3", "--json"])
        validate(payload, EXPERIMENT_SCHEMA)
        assert payload["experiment"] == "table3"
        assert payload["data"]


class TestCheckpointLsJson:
    def test_schema_empty_store(self, capsys):
        payload = run_json(capsys, ["checkpoint", "ls", "--json"])
        validate(payload, CHECKPOINT_LS_SCHEMA)
        assert payload["sets"] == []

    def test_schema_after_build(self, capsys):
        assert main(["checkpoint", "build", "gzip.syn", "--scale", "0.05",
                     "--unit-size", "25"]) == 0
        capsys.readouterr()
        payload = run_json(capsys, ["checkpoint", "ls", "--json"])
        validate(payload, CHECKPOINT_LS_SCHEMA)
        (entry,) = payload["sets"]
        assert entry["benchmark"] == "gzip.syn"
        assert entry["unit_size"] == 25
        assert entry["snapshots"] > 0

    def test_schema_lists_bbv_profiles(self, capsys):
        from repro.api import CheckpointStore, resolve_benchmark

        store = CheckpointStore()
        store.get_or_profile(resolve_benchmark("gzip.syn", 0.05), 500,
                             max_instructions=20_000)
        payload = run_json(capsys, ["checkpoint", "ls", "--json"])
        validate(payload, CHECKPOINT_LS_SCHEMA)
        (profile,) = payload["bbv_profiles"]
        assert profile["benchmark"] == "gzip.syn"
        assert profile["interval_size"] == 500
        assert profile["limit"] == 20_000
        assert profile["intervals"] > 0
